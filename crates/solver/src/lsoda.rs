//! LSODA-style automatic stiff/non-stiff method switching.
//!
//! Petzold's LSODA (the solver the paper uses, §3.2.1) integrates with an
//! Adams method while the problem is non-stiff and switches to BDF when
//! stiffness makes the Adams step size collapse. This driver reproduces
//! that behaviour with a windowed cost heuristic:
//!
//! * the time span is processed in windows;
//! * each window is integrated with the current method;
//! * the driver tracks the `RHS`-call cost of each method's most recent
//!   window and switches when the current method becomes clearly more
//!   expensive, or when the non-stiff method shows stress symptoms
//!   (rejection storms, step-size collapse).
//!
//! This is a faithful *behavioral* reproduction (same observable policy:
//! cheap Adams on non-stiff stretches, BDF through stiff ones), not a
//! line-by-line port of the LSODA switching test, which relies on
//! method-internal order information.

use crate::adams::abm4;
use crate::bdf::{bdf, BdfOptions};
use crate::ode::{OdeSystem, Solution, SolveError, SolveStats, Tolerances};

/// Which method family is active.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    NonStiff,
    Stiff,
}

/// Options for the switching driver.
#[derive(Clone, Copy, Debug)]
pub struct LsodaOptions {
    pub tol: Tolerances,
    /// Number of windows the span is divided into (more windows = faster
    /// switching response, more overhead).
    pub windows: usize,
    /// Cost ratio that triggers a switch attempt.
    pub switch_ratio: f64,
}

impl Default for LsodaOptions {
    fn default() -> Self {
        LsodaOptions {
            tol: Tolerances::default(),
            windows: 32,
            switch_ratio: 1.5,
        }
    }
}

/// The result of an auto-switching solve: the trajectory plus the phase
/// history.
#[derive(Clone, Debug)]
pub struct LsodaSolution {
    pub solution: Solution,
    /// `(window start time, phase used)` for every window.
    pub phases: Vec<(f64, Phase)>,
}

impl LsodaSolution {
    /// Fraction of windows integrated with BDF.
    pub fn stiff_fraction(&self) -> f64 {
        if self.phases.is_empty() {
            return 0.0;
        }
        self.phases
            .iter()
            .filter(|(_, p)| *p == Phase::Stiff)
            .count() as f64
            / self.phases.len() as f64
    }
}

/// Record a method switch in the observability layer (no-op unless
/// enabled): an instant on the timeline plus a running counter.
fn obs_switch(to: Phase) {
    if !om_obs::is_enabled() {
        return;
    }
    om_obs::instant(
        match to {
            Phase::NonStiff => "lsoda.switch_nonstiff",
            Phase::Stiff => "lsoda.switch_stiff",
        },
        "solver",
    );
    om_obs::metrics().counter("solver.lsoda_switches").inc();
}

/// Integrate with automatic stiff/non-stiff switching.
pub fn lsoda(
    sys: &mut dyn OdeSystem,
    t0: f64,
    y0: &[f64],
    tend: f64,
    opts: &LsodaOptions,
) -> Result<LsodaSolution, SolveError> {
    assert!(tend > t0, "forward integration only");
    assert!(opts.windows >= 1);
    let window = (tend - t0) / opts.windows as f64;
    let mut t = t0;
    let mut y = y0.to_vec();
    let mut phase = Phase::NonStiff;
    let mut phases = Vec::with_capacity(opts.windows);
    let mut total = Solution {
        ts: vec![t0],
        ys: vec![y0.to_vec()],
        stats: SolveStats::default(),
    };
    // Most recent per-window RHS cost of each method (None = not tried).
    let mut cost_nonstiff: Option<usize> = None;
    let mut cost_stiff: Option<usize> = None;

    for w in 0..opts.windows {
        let t_next = if w + 1 == opts.windows {
            tend
        } else {
            t0 + (w + 1) as f64 * window
        };
        phases.push((t, phase));
        let result = match phase {
            Phase::NonStiff => abm4(sys, t, &y, t_next, &opts.tol),
            Phase::Stiff => {
                let bo = BdfOptions {
                    tol: opts.tol,
                    ..BdfOptions::default()
                };
                bdf(sys, t, &y, t_next, &bo)
            }
        };
        let chunk = match result {
            Ok(chunk) => chunk,
            Err(SolveError::StepSizeUnderflow { .. }) | Err(SolveError::TooMuchWork { .. })
                if phase == Phase::NonStiff =>
            {
                // The non-stiff method died: classic stiffness signature.
                // Redo the window with BDF.
                phase = Phase::Stiff;
                obs_switch(phase);
                if let Some(last) = phases.last_mut() {
                    *last = (t, phase);
                }
                let bo = BdfOptions {
                    tol: opts.tol,
                    ..BdfOptions::default()
                };
                bdf(sys, t, &y, t_next, &bo)?
            }
            Err(e) => return Err(e),
        };
        let cost = chunk.stats.rhs_calls;
        // Rejection-heavy windows are the classic signature of an
        // explicit method running at its *stability* limit: the error
        // estimate looks tiny, the step doubles, the doubled step goes
        // unstable and is rejected.
        let rejection_storm =
            chunk.stats.rejected >= 4 && 2 * chunk.stats.rejected >= chunk.stats.steps;
        match phase {
            Phase::NonStiff => cost_nonstiff = Some(cost),
            Phase::Stiff => cost_stiff = Some(cost),
        }
        // Append the chunk (skip its duplicated start point).
        t = chunk.t_end();
        y = chunk.y_end().to_vec();
        total.stats.merge(&chunk.stats);
        for (ts, ys) in chunk.ts.iter().zip(&chunk.ys).skip(1) {
            total.ts.push(*ts);
            total.ys.push(ys.clone());
        }

        // Switching policy for the next window.
        match phase {
            Phase::NonStiff => {
                let stiff_cheaper = match (cost_nonstiff, cost_stiff) {
                    (Some(ns), Some(s)) => ns as f64 > opts.switch_ratio * s as f64,
                    _ => false,
                };
                if rejection_storm || stiff_cheaper {
                    phase = Phase::Stiff;
                    obs_switch(phase);
                } else if cost_stiff.is_none() && chunk.stats.steps > 60 {
                    // Suspiciously many steps for one window and BDF has
                    // never been probed: probe it once. If it is not
                    // actually cheaper, the cost comparison flips back.
                    phase = Phase::Stiff;
                    obs_switch(phase);
                }
            }
            Phase::Stiff => {
                let nonstiff_cheaper = match (cost_nonstiff, cost_stiff) {
                    (Some(ns), Some(s)) => s as f64 > opts.switch_ratio * ns as f64,
                    _ => false,
                };
                // Probe non-stiff again when BDF looks lazy (few Newton
                // iterations per step → problem may have left the stiff
                // region) or when it is measurably cheaper.
                let lazy = chunk.stats.steps > 0
                    && chunk.stats.newton_iters < 2 * chunk.stats.steps
                    && chunk.stats.rejected == 0;
                if nonstiff_cheaper || (lazy && cost_nonstiff.is_none_or(|ns| ns < 4 * cost)) {
                    phase = Phase::NonStiff;
                    obs_switch(phase);
                }
            }
        }
    }
    Ok(LsodaSolution {
        solution: total,
        phases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ode::FnSystem;

    #[test]
    fn nonstiff_problem_stays_nonstiff() {
        let mut sys = FnSystem::new(2, |_t, y: &[f64], d: &mut [f64]| {
            d[0] = y[1];
            d[1] = -y[0];
        });
        let sol = lsoda(&mut sys, 0.0, &[1.0, 0.0], 10.0, &LsodaOptions::default()).unwrap();
        assert!(
            sol.stiff_fraction() < 0.3,
            "stiff fraction {}",
            sol.stiff_fraction()
        );
        let expect = (10.0f64).cos();
        assert!((sol.solution.y_end()[0] - expect).abs() < 1e-3);
    }

    #[test]
    fn stiff_problem_switches_to_bdf() {
        // Strongly stiff linear problem.
        let mut sys = FnSystem::new(1, |t: f64, y: &[f64], d: &mut [f64]| {
            d[0] = -2000.0 * (y[0] - t.cos());
        });
        let sol = lsoda(&mut sys, 0.0, &[0.0], 2.0, &LsodaOptions::default()).unwrap();
        assert!(
            sol.stiff_fraction() > 0.5,
            "stiff fraction {}",
            sol.stiff_fraction()
        );
        assert!((sol.solution.y_end()[0] - (2.0f64).cos()).abs() < 1e-2);
    }

    #[test]
    fn switching_beats_pure_adams_on_stiff_problem() {
        let make = || {
            FnSystem::new(1, |t: f64, y: &[f64], d: &mut [f64]| {
                d[0] = -2000.0 * (y[0] - t.cos());
            })
        };
        let tol = Tolerances::default();
        let mut s1 = make();
        let auto = lsoda(&mut s1, 0.0, &[0.0], 2.0, &LsodaOptions::default()).unwrap();
        let mut s2 = make();
        let adams_cost = match crate::adams::abm4(&mut s2, 0.0, &[0.0], 2.0, &tol) {
            Ok(sol) => sol.stats.rhs_calls,
            // Pure Adams may simply die on this problem.
            Err(_) => usize::MAX,
        };
        assert!(
            auto.solution.stats.rhs_calls < adams_cost,
            "auto {} vs adams {}",
            auto.solution.stats.rhs_calls,
            adams_cost
        );
    }

    #[test]
    fn phase_log_covers_every_window() {
        let mut sys = FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = -y[0]);
        let opts = LsodaOptions {
            windows: 8,
            ..LsodaOptions::default()
        };
        let sol = lsoda(&mut sys, 0.0, &[1.0], 1.0, &opts).unwrap();
        assert_eq!(sol.phases.len(), 8);
        assert!((sol.solution.t_end() - 1.0).abs() < 1e-12);
    }
}
