//! Differential property tests for the batched SoA VM: for random
//! programs, random lane counts, and random scenario packs, every lane
//! of `execute_batch` must be *bitwise* identical (compared as hex f64
//! bit patterns) to a sequential K=1 run of the scalar `execute` oracle.
//!
//! Bitwise — not approximately — because the batched interpreter claims
//! to perform the same scalar f64 operations in the same order per lane;
//! any reassociation, fused operation, or lane mixup shows up as a
//! single differing bit long before it would trip an epsilon test.

use om_codegen::bytecode::{compile_roots, VarRef};
use om_codegen::{execute, execute_batch, CseMode, Dag};
use om_expr::expr::{CmpOp, Expr, Func};
use om_expr::{simplify, Symbol};
use proptest::prelude::*;
use std::collections::HashMap;

const VARS: [&str; 3] = ["x", "y", "z"];

/// Lane widths that exercise the chunking: 1 (degenerate), sub-chunk
/// (2, 3), exactly one chunk (8), and a ragged multi-chunk tail (17).
const LANE_WIDTHS: [usize; 5] = [1, 2, 3, 8, 17];

fn leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (-6i32..=6).prop_map(|n| Expr::Const(f64::from(n) / 2.0)),
        (0usize..VARS.len()).prop_map(|i| Expr::Var(Symbol::intern(VARS[i]))),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    leaf().prop_recursive(4, 40, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Expr::Add),
            prop::collection::vec(inner.clone(), 2..3).prop_map(Expr::Mul),
            (inner.clone(), 1u32..=4).prop_map(|(e, p)| e.powi(p as i32)),
            inner.clone().prop_map(|e| Expr::call1(Func::Sin, e)),
            inner.clone().prop_map(|e| Expr::call1(Func::Exp, e)),
            inner.clone().prop_map(|e| Expr::call1(Func::Abs, e)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::call2(Func::Max, a, b)),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| Expr::ite(
                Expr::cmp(CmpOp::Le, c, Expr::Const(0.25)),
                t,
                e
            )),
        ]
    })
}

/// One lane's state vector: finite values across several magnitudes,
/// including negatives and exact dyadic fractions.
fn arb_state() -> impl Strategy<Value = [f64; 3]> {
    let coord = || {
        prop_oneof![
            (-64i32..=64).prop_map(|n| f64::from(n) / 16.0),
            (-4000i32..=4000).prop_map(|n| f64::from(n) / 1024.0),
        ]
    };
    (coord(), coord(), coord()).prop_map(|(x, y, z)| [x, y, z])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random program × random lane width × random scenario pack: every
    /// lane of one batched call equals its own scalar call, bit for bit,
    /// in every CSE mode.
    #[test]
    fn batch_execution_is_bitwise_equal_to_scalar(
        exprs in prop::collection::vec(arb_expr(), 1..4),
        width_pick in 0usize..LANE_WIDTHS.len(),
        pack in prop::collection::vec(arb_state(), 17),
        t in (-8i32..=8).prop_map(|n| f64::from(n) / 4.0),
    ) {
        let lanes = LANE_WIDTHS[width_pick];
        let pack = &pack[..lanes];
        let simplified: Vec<Expr> = exprs.iter().map(simplify).collect();
        let mut dag = Dag::new();
        let roots: Vec<_> = simplified
            .iter()
            .map(|e| {
                let r = dag.import(e);
                dag.mark_root(r);
                r
            })
            .collect();
        let vars: HashMap<Symbol, VarRef> = VARS
            .iter()
            .enumerate()
            .map(|(i, n)| (Symbol::intern(n), VarRef::State(i as u32)))
            .collect();
        for mode in [CseMode::Off, CseMode::PerTask, CseMode::Global] {
            let program = compile_roots(&dag, &roots, &vars, mode);
            let n_out = roots.len();
            // Scalar oracle: K=1, one call per lane, in lane order.
            let mut oracle = vec![0.0; n_out * lanes];
            for (l, y) in pack.iter().enumerate() {
                let mut out = vec![0.0; n_out];
                execute(&program, t, y, &[], &mut out);
                for (o, v) in out.iter().enumerate() {
                    oracle[o * lanes + l] = *v;
                }
            }
            // Batched: one call over all lanes (SoA gather of the pack).
            let mut ys = vec![0.0; VARS.len() * lanes];
            for (l, y) in pack.iter().enumerate() {
                for (i, v) in y.iter().enumerate() {
                    ys[i * lanes + l] = *v;
                }
            }
            let mut batched = vec![0.0; n_out * lanes];
            execute_batch(&program, t, &ys, &[], &mut batched, lanes);
            for o in 0..n_out {
                for l in 0..lanes {
                    let a = oracle[o * lanes + l];
                    let b = batched[o * lanes + l];
                    prop_assert!(
                        a.to_bits() == b.to_bits(),
                        "mode {mode:?} lanes {lanes} lane {l} output {o}: \
                         scalar {a} ({:016x}) vs batched {b} ({:016x})",
                        a.to_bits(),
                        b.to_bits()
                    );
                }
            }
        }
    }

    /// Lane isolation: batching a pack where one lane carries NaN leaves
    /// every other lane's outputs bitwise unchanged.
    #[test]
    fn poisoned_lane_never_leaks_into_siblings(
        exprs in prop::collection::vec(arb_expr(), 1..3),
        width_pick in 1usize..LANE_WIDTHS.len(),
        pack in prop::collection::vec(arb_state(), 17),
        victim_pick in 0usize..17,
    ) {
        let lanes = LANE_WIDTHS[width_pick];
        let pack = &pack[..lanes];
        let victim = victim_pick % lanes;
        let simplified: Vec<Expr> = exprs.iter().map(simplify).collect();
        let mut dag = Dag::new();
        let roots: Vec<_> = simplified
            .iter()
            .map(|e| {
                let r = dag.import(e);
                dag.mark_root(r);
                r
            })
            .collect();
        let vars: HashMap<Symbol, VarRef> = VARS
            .iter()
            .enumerate()
            .map(|(i, n)| (Symbol::intern(n), VarRef::State(i as u32)))
            .collect();
        let program = compile_roots(&dag, &roots, &vars, CseMode::Global);
        let n_out = roots.len();
        let gather = |pack: &[[f64; 3]]| {
            let mut ys = vec![0.0; VARS.len() * lanes];
            for (l, y) in pack.iter().enumerate() {
                for (i, v) in y.iter().enumerate() {
                    ys[i * lanes + l] = *v;
                }
            }
            ys
        };
        let clean = gather(pack);
        let mut poisoned_pack = pack.to_vec();
        poisoned_pack[victim] = [f64::NAN, f64::NAN, f64::NAN];
        let poisoned = gather(&poisoned_pack);
        let mut out_clean = vec![0.0; n_out * lanes];
        let mut out_poisoned = vec![0.0; n_out * lanes];
        execute_batch(&program, 0.5, &clean, &[], &mut out_clean, lanes);
        execute_batch(&program, 0.5, &poisoned, &[], &mut out_poisoned, lanes);
        for o in 0..n_out {
            for l in 0..lanes {
                if l == victim {
                    continue;
                }
                let a = out_clean[o * lanes + l];
                let b = out_poisoned[o * lanes + l];
                prop_assert!(
                    a.to_bits() == b.to_bits(),
                    "lane {l} output {o} changed when lane {victim} was poisoned: \
                     {a} ({:016x}) vs {b} ({:016x})",
                    a.to_bits(),
                    b.to_bits()
                );
            }
        }
    }
}
