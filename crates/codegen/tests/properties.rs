//! Property tests: bytecode VM vs the tree interpreter, scheduler bounds.

use om_codegen::bytecode::{compile_roots, VarRef};
use om_codegen::{lpt, CseMode, Dag};
use om_expr::expr::{CmpOp, Expr, Func};
use om_expr::{simplify, Symbol};
use proptest::prelude::*;
use std::collections::HashMap;

const VARS: [&str; 3] = ["x", "y", "z"];

fn leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (-6i32..=6).prop_map(|n| Expr::Const(f64::from(n) / 2.0)),
        (0usize..VARS.len()).prop_map(|i| Expr::Var(Symbol::intern(VARS[i]))),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    leaf().prop_recursive(4, 40, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Expr::Add),
            prop::collection::vec(inner.clone(), 2..3).prop_map(Expr::Mul),
            (inner.clone(), 1u32..=4).prop_map(|(e, p)| e.powi(p as i32)),
            inner.clone().prop_map(|e| Expr::call1(Func::Sin, e)),
            inner.clone().prop_map(|e| Expr::call1(Func::Cos, e)),
            inner.clone().prop_map(|e| Expr::call1(Func::Abs, e)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::call2(Func::Max, a, b)),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| Expr::ite(
                Expr::cmp(CmpOp::Le, c, Expr::Const(0.25)),
                t,
                e
            )),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(384))]

    /// The compiled bytecode computes exactly what the tree interpreter
    /// computes, in every CSE mode.
    #[test]
    fn vm_matches_tree_eval(exprs in prop::collection::vec(arb_expr(), 1..4)) {
        let simplified: Vec<Expr> = exprs.iter().map(simplify).collect();
        let mut dag = Dag::new();
        let roots: Vec<_> = simplified
            .iter()
            .map(|e| {
                let r = dag.import(e);
                dag.mark_root(r);
                r
            })
            .collect();
        let vars: HashMap<Symbol, VarRef> = VARS
            .iter()
            .enumerate()
            .map(|(i, n)| (Symbol::intern(n), VarRef::State(i as u32)))
            .collect();
        let points = [
            [0.0, 0.0, 0.0],
            [1.0, -1.0, 0.5],
            [-0.7, 2.0, -1.25],
            [0.3, 0.3, 0.3],
        ];
        for mode in [CseMode::Off, CseMode::PerTask, CseMode::Global] {
            let program = compile_roots(&dag, &roots, &vars, mode);
            for y in &points {
                let env: HashMap<Symbol, f64> = VARS
                    .iter()
                    .zip(y)
                    .map(|(n, v)| (Symbol::intern(n), *v))
                    .collect();
                let mut out = vec![0.0; roots.len()];
                om_codegen::execute(&program, 0.0, y, &[], &mut out);
                for (i, e) in simplified.iter().enumerate() {
                    let expect = om_expr::eval(e, &env).unwrap();
                    let close = if expect.is_nan() {
                        out[i].is_nan()
                    } else {
                        (out[i] - expect).abs() <= 1e-9 * (1.0 + expect.abs())
                    };
                    prop_assert!(
                        close,
                        "mode {mode:?} root {i}: vm={} tree={expect} expr={e:?}",
                        out[i]
                    );
                }
            }
        }
    }

    /// LPT satisfies Graham's greedy guarantee: makespan ≤ total/m +
    /// (1 − 1/m)·max_cost, and never beats the trivial lower bound.
    #[test]
    fn lpt_respects_bound(costs in prop::collection::vec(1u64..1000, 1..60), m in 1usize..9) {
        let s = lpt(&costs, m);
        let total: u64 = costs.iter().sum();
        prop_assert_eq!(s.loads.iter().sum::<u64>(), total);
        let cmax = *costs.iter().max().unwrap();
        let lower = (total.div_ceil(m as u64)).max(cmax);
        let graham = total as f64 / m as f64 + (1.0 - 1.0 / m as f64) * cmax as f64;
        prop_assert!(s.makespan as f64 <= graham + 1e-9);
        prop_assert!(s.makespan >= lower);
    }

    /// List scheduling produces a feasible schedule: no worker overload
    /// (sum of loads equals total) and makespan at least the critical
    /// path and at least the load bound.
    #[test]
    fn list_schedule_is_feasible(
        costs in prop::collection::vec(1u64..100, 1..40),
        m in 1usize..5,
        edges in prop::collection::vec((0usize..40, 0usize..40), 0..60),
    ) {
        let n = costs.len();
        // Build a DAG: only edges from lower to higher index.
        let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (a, b) in edges {
            let (a, b) = (a % n, b % n);
            if a < b && !deps[b].contains(&a) {
                deps[b].push(a);
            }
        }
        let s = om_codegen::list_schedule(&costs, &deps, m);
        let total: u64 = costs.iter().sum();
        prop_assert_eq!(s.loads.iter().sum::<u64>(), total);
        prop_assert!(s.makespan >= total.div_ceil(m as u64));
        // Critical path lower bound.
        let mut cp = vec![0u64; n];
        for i in 0..n {
            cp[i] = costs[i] + deps[i].iter().map(|&d| cp[d]).max().unwrap_or(0);
        }
        prop_assert!(s.makespan >= cp.iter().copied().max().unwrap());
    }
}
