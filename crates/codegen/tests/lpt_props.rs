//! Property tests for the LPT scheduler (paper §3.2.3).
//!
//! Graham's classical result: LPT list scheduling of independent tasks on
//! `m` identical machines has makespan ≤ (4/3 − 1/(3m))·OPT. The bound
//! test compares against the *true* optimum (branch-and-bound over all
//! assignments) — comparing against a lower bound instead would assert a
//! stronger, false property.

use om_codegen::{list_schedule, lpt};
use proptest::prelude::*;

/// Exact minimum makespan by branch-and-bound over all assignments.
/// Exponential, so keep task counts small in the strategies below.
fn opt_makespan(costs: &[u64], m: usize) -> u64 {
    fn rec(costs: &[u64], loads: &mut [u64], i: usize, best: &mut u64) {
        let current = loads.iter().copied().max().unwrap_or(0);
        if current >= *best {
            return; // can only get worse
        }
        if i == costs.len() {
            *best = current;
            return;
        }
        // Workers with equal load are symmetric: trying one is enough.
        let mut seen = Vec::with_capacity(loads.len());
        for w in 0..loads.len() {
            if seen.contains(&loads[w]) {
                continue;
            }
            seen.push(loads[w]);
            loads[w] += costs[i];
            rec(costs, loads, i + 1, best);
            loads[w] -= costs[i];
        }
    }
    let mut best = costs.iter().sum::<u64>().max(1);
    let mut loads = vec![0u64; m];
    rec(costs, &mut loads, 0, &mut best);
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every task is assigned exactly once, to a valid worker, and the
    /// derived metrics are consistent with the assignment.
    #[test]
    fn every_task_assigned_exactly_once(costs in prop::collection::vec(1u64..=100, 1..=9), m in 1usize..=4) {
        let sched = lpt(&costs, m);
        prop_assert_eq!(sched.assignment.len(), costs.len());
        prop_assert!(sched.assignment.iter().all(|&w| w < m));
        // per_worker() partitions 0..n: each task appears exactly once.
        let mut seen = vec![false; costs.len()];
        for (w, tasks) in sched.per_worker().iter().enumerate() {
            for &t in tasks {
                prop_assert!(!seen[t], "task {} assigned twice", t);
                seen[t] = true;
                prop_assert_eq!(sched.assignment[t], w);
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "some task never assigned");
        // Loads are exactly the per-worker cost sums; makespan is the max.
        for w in 0..m {
            let sum: u64 = (0..costs.len())
                .filter(|&t| sched.assignment[t] == w)
                .map(|t| costs[t])
                .sum();
            prop_assert_eq!(sched.loads[w], sum);
        }
        prop_assert_eq!(sched.makespan, sched.loads.iter().copied().max().unwrap());
        prop_assert_eq!(sched.loads.iter().sum::<u64>(), costs.iter().sum::<u64>());
    }

    /// Graham's bound: makespan(LPT) ≤ (4/3 − 1/(3m))·OPT, i.e.
    /// 3·m·LPT ≤ (4m−1)·OPT in exact integer arithmetic.
    #[test]
    fn lpt_within_graham_bound_of_optimum(costs in prop::collection::vec(1u64..=100, 1..=9), m in 1usize..=4) {
        let sched = lpt(&costs, m);
        let opt = opt_makespan(&costs, m);
        prop_assert!(sched.makespan >= opt, "LPT beat the optimum?!");
        prop_assert!(
            3 * m as u64 * sched.makespan <= (4 * m as u64 - 1) * opt,
            "LPT makespan {} vs OPT {} breaks (4/3 - 1/3m) on m={}",
            sched.makespan, opt, m
        );
    }

    /// The scheduler is a pure function: identical inputs give identical
    /// schedules (ties are broken by index, so there is no hidden state).
    #[test]
    fn schedule_is_deterministic(costs in prop::collection::vec(1u64..=100, 1..=9), m in 1usize..=4) {
        let a = lpt(&costs, m);
        let b = lpt(&costs, m);
        prop_assert_eq!(a, b);
    }

    /// List scheduling with no dependencies also assigns every task
    /// exactly once and never beats the dependency-free optimum.
    #[test]
    fn list_schedule_reduces_to_valid_assignment(costs in prop::collection::vec(1u64..=100, 1..=9), m in 1usize..=4) {
        let deps = vec![Vec::new(); costs.len()];
        let sched = list_schedule(&costs, &deps, m);
        prop_assert_eq!(sched.assignment.len(), costs.len());
        prop_assert!(sched.assignment.iter().all(|&w| w < m));
        prop_assert_eq!(sched.loads.iter().sum::<u64>(), costs.iter().sum::<u64>());
        prop_assert!(sched.makespan >= opt_makespan(&costs, m));
    }
}

#[test]
fn opt_makespan_brute_force_is_right_on_known_cases() {
    // 2 workers, {3,3,2,2,2}: OPT = 6 (3+3 / 2+2+2).
    assert_eq!(opt_makespan(&[3, 3, 2, 2, 2], 2), 6);
    // The classic LPT-adversarial case meets the bound exactly at m=2:
    // {3,3,2,2,2} → LPT puts 3,3 apart: loads (3+2+2, 3+2) → makespan 7.
    let sched = lpt(&[3, 3, 2, 2, 2], 2);
    assert_eq!(sched.makespan, 7);
    // 7/6 ≤ (4·2−1)/(3·2) = 7/6 — tight.
    assert_eq!(3 * 2 * 7, (4 * 2 - 1) * 6);
    // One worker: OPT is the total.
    assert_eq!(opt_makespan(&[5, 1, 9], 1), 15);
    // More workers than tasks: OPT is the largest task.
    assert_eq!(opt_makespan(&[4, 7], 4), 7);
}
