//! Bytecode interpreter.
//!
//! Straight-line execution over a register file; no jumps, no allocation
//! in the hot loop when the caller supplies a scratch register file via
//! [`execute_with_regs`].
//!
//! Two execution modes share the instruction set:
//!
//! * **Scalar** ([`execute`]) — one register file, one ensemble member.
//! * **Batched** ([`execute_batch`]) — a structure-of-arrays register
//!   file over K ensemble members (lanes), processed in chunks of
//!   [`LANE_CHUNK`]. Each op becomes a tight loop over lanes, so the
//!   per-instruction dispatch cost is amortized K-fold and the inner
//!   loops auto-vectorize. Every lane performs exactly the scalar
//!   instruction sequence — the same f64 operations in the same order,
//!   with no cross-lane arithmetic — so batched results are bitwise
//!   identical to K scalar executions.

use crate::bytecode::{Instr, Program};

/// Lanes per register-file chunk in batched execution. Chunking keeps
/// the live register working set (`n_regs × LANE_CHUNK × 8` bytes)
/// L1-resident even for wide batches, while the inner loops stay
/// contiguous (stride 1 along lanes) for the auto-vectorizer.
pub const LANE_CHUNK: usize = 8;

/// Execute `p` with time `t`, state vector `y`, shared-values array
/// `shared`; writes one value per program output into `out`.
pub fn execute(p: &Program, t: f64, y: &[f64], shared: &[f64], out: &mut [f64]) {
    let mut regs = vec![0.0f64; p.n_regs as usize];
    execute_with_regs(p, t, y, shared, out, &mut regs);
}

/// Like [`execute`] but reusing a caller-provided register file
/// (`regs.len() >= p.n_regs`).
pub fn execute_with_regs(
    p: &Program,
    t: f64,
    y: &[f64],
    shared: &[f64],
    out: &mut [f64],
    regs: &mut [f64],
) {
    assert!(regs.len() >= p.n_regs as usize, "register file too small");
    assert_eq!(out.len(), p.outputs.len(), "output buffer length mismatch");
    for instr in &p.instrs {
        match *instr {
            Instr::Const { dst, idx } => regs[dst as usize] = p.consts[idx as usize],
            Instr::State { dst, idx } => regs[dst as usize] = y[idx as usize],
            Instr::Shared { dst, idx } => regs[dst as usize] = shared[idx as usize],
            Instr::Time { dst } => regs[dst as usize] = t,
            Instr::Add { dst, a, b } => regs[dst as usize] = regs[a as usize] + regs[b as usize],
            Instr::Mul { dst, a, b } => regs[dst as usize] = regs[a as usize] * regs[b as usize],
            Instr::PowI { dst, a, n } => {
                regs[dst as usize] = powi(regs[a as usize], n);
            }
            Instr::Powf { dst, a, b } => {
                regs[dst as usize] = regs[a as usize].powf(regs[b as usize])
            }
            Instr::Call1 { f, dst, a } => {
                regs[dst as usize] = f.apply(&[regs[a as usize]]);
            }
            Instr::Call2 { f, dst, a, b } => {
                regs[dst as usize] = f.apply(&[regs[a as usize], regs[b as usize]]);
            }
            Instr::Cmp { op, dst, a, b } => {
                regs[dst as usize] = if op.apply(regs[a as usize], regs[b as usize]) {
                    1.0
                } else {
                    0.0
                };
            }
            Instr::BoolAnd { dst, a, b } => {
                regs[dst as usize] = if regs[a as usize] != 0.0 && regs[b as usize] != 0.0 {
                    1.0
                } else {
                    0.0
                };
            }
            Instr::BoolOr { dst, a, b } => {
                regs[dst as usize] = if regs[a as usize] != 0.0 || regs[b as usize] != 0.0 {
                    1.0
                } else {
                    0.0
                };
            }
            Instr::BoolNot { dst, a } => {
                regs[dst as usize] = if regs[a as usize] == 0.0 { 1.0 } else { 0.0 };
            }
            Instr::Select { dst, c, a, b } => {
                regs[dst as usize] = if regs[c as usize] != 0.0 {
                    regs[a as usize]
                } else {
                    regs[b as usize]
                };
            }
        }
    }
    for (o, &reg) in out.iter_mut().zip(&p.outputs) {
        *o = regs[reg as usize];
    }
}

/// Execute `p` over `lanes` ensemble members at once. All batch buffers
/// are structure-of-arrays with the lane index innermost:
/// `y[state * lanes + lane]`, `shared[slot * lanes + lane]`,
/// `out[output * lanes + lane]`.
pub fn execute_batch(
    p: &Program,
    t: f64,
    y: &[f64],
    shared: &[f64],
    out: &mut [f64],
    lanes: usize,
) {
    let mut regs = vec![0.0f64; p.n_regs as usize * LANE_CHUNK.min(lanes.max(1))];
    execute_batch_with_regs(p, t, y, shared, out, &mut regs, lanes);
}

/// Like [`execute_batch`] but reusing a caller-provided register file of
/// at least `p.n_regs * min(LANE_CHUNK, lanes)` values. The register
/// file is chunk-local: lanes are processed [`LANE_CHUNK`] at a time and
/// registers are laid out `regs[reg * chunk_stride + lane_in_chunk]`.
pub fn execute_batch_with_regs(
    p: &Program,
    t: f64,
    y: &[f64],
    shared: &[f64],
    out: &mut [f64],
    regs: &mut [f64],
    lanes: usize,
) {
    assert!(lanes > 0, "batch must have at least one lane");
    let stride = LANE_CHUNK.min(lanes);
    assert!(
        regs.len() >= p.n_regs as usize * stride,
        "register file too small"
    );
    assert_eq!(
        out.len(),
        p.outputs.len() * lanes,
        "output buffer length mismatch"
    );
    let mut c0 = 0;
    while c0 < lanes {
        let cw = (lanes - c0).min(LANE_CHUNK);
        execute_chunk(p, t, y, shared, out, regs, lanes, c0, cw, stride);
        c0 += cw;
    }
}

/// One lane chunk: every instruction loops over `cw ≤ LANE_CHUNK` lanes
/// starting at batch lane `c0`. Per lane this is exactly the scalar
/// interpreter's operation sequence (bitwise identity depends on it).
#[allow(clippy::too_many_arguments)]
fn execute_chunk(
    p: &Program,
    t: f64,
    y: &[f64],
    shared: &[f64],
    out: &mut [f64],
    regs: &mut [f64],
    lanes: usize,
    c0: usize,
    cw: usize,
    stride: usize,
) {
    let at = |r: u32| r as usize * stride;
    for instr in &p.instrs {
        match *instr {
            Instr::Const { dst, idx } => {
                let v = p.consts[idx as usize];
                for l in 0..cw {
                    regs[at(dst) + l] = v;
                }
            }
            Instr::State { dst, idx } => {
                for l in 0..cw {
                    regs[at(dst) + l] = y[idx as usize * lanes + c0 + l];
                }
            }
            Instr::Shared { dst, idx } => {
                for l in 0..cw {
                    regs[at(dst) + l] = shared[idx as usize * lanes + c0 + l];
                }
            }
            Instr::Time { dst } => {
                for l in 0..cw {
                    regs[at(dst) + l] = t;
                }
            }
            Instr::Add { dst, a, b } => {
                for l in 0..cw {
                    regs[at(dst) + l] = regs[at(a) + l] + regs[at(b) + l];
                }
            }
            Instr::Mul { dst, a, b } => {
                for l in 0..cw {
                    regs[at(dst) + l] = regs[at(a) + l] * regs[at(b) + l];
                }
            }
            Instr::PowI { dst, a, n } => {
                for l in 0..cw {
                    regs[at(dst) + l] = powi(regs[at(a) + l], n);
                }
            }
            Instr::Powf { dst, a, b } => {
                for l in 0..cw {
                    regs[at(dst) + l] = regs[at(a) + l].powf(regs[at(b) + l]);
                }
            }
            Instr::Call1 { f, dst, a } => {
                for l in 0..cw {
                    regs[at(dst) + l] = f.apply(&[regs[at(a) + l]]);
                }
            }
            Instr::Call2 { f, dst, a, b } => {
                for l in 0..cw {
                    regs[at(dst) + l] = f.apply(&[regs[at(a) + l], regs[at(b) + l]]);
                }
            }
            Instr::Cmp { op, dst, a, b } => {
                for l in 0..cw {
                    regs[at(dst) + l] = if op.apply(regs[at(a) + l], regs[at(b) + l]) {
                        1.0
                    } else {
                        0.0
                    };
                }
            }
            Instr::BoolAnd { dst, a, b } => {
                for l in 0..cw {
                    regs[at(dst) + l] = if regs[at(a) + l] != 0.0 && regs[at(b) + l] != 0.0 {
                        1.0
                    } else {
                        0.0
                    };
                }
            }
            Instr::BoolOr { dst, a, b } => {
                for l in 0..cw {
                    regs[at(dst) + l] = if regs[at(a) + l] != 0.0 || regs[at(b) + l] != 0.0 {
                        1.0
                    } else {
                        0.0
                    };
                }
            }
            Instr::BoolNot { dst, a } => {
                for l in 0..cw {
                    regs[at(dst) + l] = if regs[at(a) + l] == 0.0 { 1.0 } else { 0.0 };
                }
            }
            Instr::Select { dst, c, a, b } => {
                for l in 0..cw {
                    regs[at(dst) + l] = if regs[at(c) + l] != 0.0 {
                        regs[at(a) + l]
                    } else {
                        regs[at(b) + l]
                    };
                }
            }
        }
    }
    for (o, &reg) in p.outputs.iter().enumerate() {
        for l in 0..cw {
            out[o * lanes + c0 + l] = regs[at(reg) + l];
        }
    }
}

/// Integer power by repeated multiplication, matching
/// [`om_expr::eval::powf_like_codegen`].
#[inline]
fn powi(base: f64, n: i32) -> f64 {
    let mut acc = 1.0;
    for _ in 0..n.unsigned_abs() {
        acc *= base;
    }
    if n < 0 {
        1.0 / acc
    } else {
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{compile_roots, VarRef};
    use crate::cse::CseMode;
    use crate::dag::Dag;
    use om_expr::{num, simplify, var, Symbol};
    use std::collections::HashMap;

    #[test]
    fn powi_matches_reference() {
        assert_eq!(powi(2.0, 10), 1024.0);
        assert_eq!(powi(2.0, -2), 0.25);
        assert_eq!(powi(-3.0, 2), 9.0);
        assert_eq!(powi(5.0, 0), 1.0);
    }

    #[test]
    fn register_file_reuse() {
        let mut dag = Dag::new();
        let root = dag.import(&simplify(&(var("x") * num(3.0))));
        let vars: HashMap<Symbol, VarRef> = [(Symbol::intern("x"), VarRef::State(0))]
            .into_iter()
            .collect();
        let p = compile_roots(&dag, &[root], &vars, CseMode::PerTask);
        let mut regs = vec![0.0; p.n_regs as usize + 8];
        let mut out = vec![0.0];
        execute_with_regs(&p, 0.0, &[7.0], &[], &mut out, &mut regs);
        assert_eq!(out[0], 21.0);
    }

    /// A program exercising every instruction class (arithmetic, powers,
    /// transcendental calls, comparisons, boolean ops, select).
    fn mixed_program() -> crate::bytecode::Program {
        use om_expr::expr::{CmpOp, Expr, Func};
        let e = simplify(
            &(Expr::ite(
                Expr::cmp(CmpOp::Le, var("x"), num(0.25)),
                Expr::call1(Func::Sin, var("x") * var("y")),
                Expr::call2(Func::Max, var("x").powi(3), var("y").powi(-2)),
            ) + var("x") * num(0.5)
                + Expr::call1(Func::Exp, var("y") * num(-1.0))),
        );
        let mut dag = Dag::new();
        let root = dag.import(&e);
        dag.mark_root(root);
        let vars: HashMap<Symbol, VarRef> = [
            (Symbol::intern("x"), VarRef::State(0)),
            (Symbol::intern("y"), VarRef::State(1)),
        ]
        .into_iter()
        .collect();
        compile_roots(&dag, &[root], &vars, CseMode::PerTask)
    }

    /// Batched execution is bitwise-identical to per-lane scalar
    /// execution for every lane count, including ragged tails (3, 17)
    /// and the degenerate single lane.
    #[test]
    fn batch_matches_scalar_bitwise_per_lane() {
        let p = mixed_program();
        for lanes in [1usize, 2, 3, 8, 16, 17] {
            // SoA state: y[state * lanes + lane].
            let mut y = vec![0.0f64; 2 * lanes];
            for l in 0..lanes {
                y[l] = -0.9 + 0.31 * l as f64;
                y[lanes + l] = 1.7 - 0.13 * l as f64;
            }
            let mut batched = vec![0.0f64; lanes];
            execute_batch(&p, 0.4, &y, &[], &mut batched, lanes);
            for l in 0..lanes {
                let mut scalar = vec![0.0f64];
                execute(&p, 0.4, &[y[l], y[lanes + l]], &[], &mut scalar);
                assert_eq!(
                    scalar[0].to_bits(),
                    batched[l].to_bits(),
                    "lanes={lanes} lane={l}: scalar {:016x} vs batched {:016x}",
                    scalar[0].to_bits(),
                    batched[l].to_bits()
                );
            }
        }
    }

    /// A NaN in one lane stays in that lane: ops are elementwise, so a
    /// poisoned batch-mate cannot leak into its siblings.
    #[test]
    fn batch_lanes_are_isolated() {
        let p = mixed_program();
        let lanes = 8;
        let mut y = vec![0.5f64; 2 * lanes];
        y[3] = f64::NAN; // lane 3's x
        let mut out = vec![0.0f64; lanes];
        execute_batch(&p, 0.0, &y, &[], &mut out, lanes);
        for (l, v) in out.iter().enumerate() {
            if l == 3 {
                assert!(v.is_nan(), "poisoned lane must stay NaN");
            } else {
                assert!(v.is_finite(), "lane {l} poisoned by a sibling: {v}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "register file too small")]
    fn undersized_batch_register_file_panics() {
        let p = mixed_program();
        let mut regs = vec![0.0; 1];
        let mut out = vec![0.0; 8];
        execute_batch_with_regs(&p, 0.0, &[0.5; 16], &[], &mut out, &mut regs, 8);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lane_batch_panics() {
        let p = mixed_program();
        execute_batch(&p, 0.0, &[], &[], &mut [], 0);
    }

    #[test]
    #[should_panic(expected = "register file too small")]
    fn undersized_register_file_panics() {
        let mut dag = Dag::new();
        let root = dag.import(&simplify(&(var("x") * num(3.0))));
        let vars: HashMap<Symbol, VarRef> = [(Symbol::intern("x"), VarRef::State(0))]
            .into_iter()
            .collect();
        let p = compile_roots(&dag, &[root], &vars, CseMode::PerTask);
        let mut regs = vec![0.0; 0];
        let mut out = vec![0.0];
        execute_with_regs(&p, 0.0, &[7.0], &[], &mut out, &mut regs);
    }
}
