//! Bytecode interpreter.
//!
//! Straight-line execution over a register file; no jumps, no allocation
//! in the hot loop when the caller supplies a scratch register file via
//! [`execute_with_regs`].

use crate::bytecode::{Instr, Program};

/// Execute `p` with time `t`, state vector `y`, shared-values array
/// `shared`; writes one value per program output into `out`.
pub fn execute(p: &Program, t: f64, y: &[f64], shared: &[f64], out: &mut [f64]) {
    let mut regs = vec![0.0f64; p.n_regs as usize];
    execute_with_regs(p, t, y, shared, out, &mut regs);
}

/// Like [`execute`] but reusing a caller-provided register file
/// (`regs.len() >= p.n_regs`).
pub fn execute_with_regs(
    p: &Program,
    t: f64,
    y: &[f64],
    shared: &[f64],
    out: &mut [f64],
    regs: &mut [f64],
) {
    assert!(regs.len() >= p.n_regs as usize, "register file too small");
    assert_eq!(out.len(), p.outputs.len(), "output buffer length mismatch");
    for instr in &p.instrs {
        match *instr {
            Instr::Const { dst, idx } => regs[dst as usize] = p.consts[idx as usize],
            Instr::State { dst, idx } => regs[dst as usize] = y[idx as usize],
            Instr::Shared { dst, idx } => regs[dst as usize] = shared[idx as usize],
            Instr::Time { dst } => regs[dst as usize] = t,
            Instr::Add { dst, a, b } => regs[dst as usize] = regs[a as usize] + regs[b as usize],
            Instr::Mul { dst, a, b } => regs[dst as usize] = regs[a as usize] * regs[b as usize],
            Instr::PowI { dst, a, n } => {
                regs[dst as usize] = powi(regs[a as usize], n);
            }
            Instr::Powf { dst, a, b } => {
                regs[dst as usize] = regs[a as usize].powf(regs[b as usize])
            }
            Instr::Call1 { f, dst, a } => {
                regs[dst as usize] = f.apply(&[regs[a as usize]]);
            }
            Instr::Call2 { f, dst, a, b } => {
                regs[dst as usize] = f.apply(&[regs[a as usize], regs[b as usize]]);
            }
            Instr::Cmp { op, dst, a, b } => {
                regs[dst as usize] = if op.apply(regs[a as usize], regs[b as usize]) {
                    1.0
                } else {
                    0.0
                };
            }
            Instr::BoolAnd { dst, a, b } => {
                regs[dst as usize] = if regs[a as usize] != 0.0 && regs[b as usize] != 0.0 {
                    1.0
                } else {
                    0.0
                };
            }
            Instr::BoolOr { dst, a, b } => {
                regs[dst as usize] = if regs[a as usize] != 0.0 || regs[b as usize] != 0.0 {
                    1.0
                } else {
                    0.0
                };
            }
            Instr::BoolNot { dst, a } => {
                regs[dst as usize] = if regs[a as usize] == 0.0 { 1.0 } else { 0.0 };
            }
            Instr::Select { dst, c, a, b } => {
                regs[dst as usize] = if regs[c as usize] != 0.0 {
                    regs[a as usize]
                } else {
                    regs[b as usize]
                };
            }
        }
    }
    for (o, &reg) in out.iter_mut().zip(&p.outputs) {
        *o = regs[reg as usize];
    }
}

/// Integer power by repeated multiplication, matching
/// [`om_expr::eval::powf_like_codegen`].
#[inline]
fn powi(base: f64, n: i32) -> f64 {
    let mut acc = 1.0;
    for _ in 0..n.unsigned_abs() {
        acc *= base;
    }
    if n < 0 {
        1.0 / acc
    } else {
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{compile_roots, VarRef};
    use crate::cse::CseMode;
    use crate::dag::Dag;
    use om_expr::{num, simplify, var, Symbol};
    use std::collections::HashMap;

    #[test]
    fn powi_matches_reference() {
        assert_eq!(powi(2.0, 10), 1024.0);
        assert_eq!(powi(2.0, -2), 0.25);
        assert_eq!(powi(-3.0, 2), 9.0);
        assert_eq!(powi(5.0, 0), 1.0);
    }

    #[test]
    fn register_file_reuse() {
        let mut dag = Dag::new();
        let root = dag.import(&simplify(&(var("x") * num(3.0))));
        let vars: HashMap<Symbol, VarRef> = [(Symbol::intern("x"), VarRef::State(0))]
            .into_iter()
            .collect();
        let p = compile_roots(&dag, &[root], &vars, CseMode::PerTask);
        let mut regs = vec![0.0; p.n_regs as usize + 8];
        let mut out = vec![0.0];
        execute_with_regs(&p, 0.0, &[7.0], &[], &mut out, &mut regs);
        assert_eq!(out[0], 21.0);
    }

    #[test]
    #[should_panic(expected = "register file too small")]
    fn undersized_register_file_panics() {
        let mut dag = Dag::new();
        let root = dag.import(&simplify(&(var("x") * num(3.0))));
        let vars: HashMap<Symbol, VarRef> = [(Symbol::intern("x"), VarRef::State(0))]
            .into_iter()
            .collect();
        let p = compile_roots(&dag, &[root], &vars, CseMode::PerTask);
        let mut regs = vec![0.0; 0];
        let mut out = vec![0.0];
        execute_with_regs(&p, 0.0, &[7.0], &[], &mut out, &mut regs);
    }
}
