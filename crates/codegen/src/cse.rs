//! Common-subexpression elimination.
//!
//! With the hash-consed DAG, CSE is a *policy* question, not a search: a
//! node that is referenced more than once and is worth a temporary gets
//! one. The paper reports both flavors for the 2D bearing model (§3.3):
//! per-equation CSE for the parallel code (4 642 common subexpressions)
//! and global CSE for the serial code (1 840, in far fewer lines),
//! because tasks scheduled on different processors cannot share
//! subexpression values.

use crate::dag::{Dag, DagNode, NodeId};
use om_expr::CostModel;

/// Where sharing is allowed to happen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CseMode {
    /// No temporaries; every use re-evaluates the subtree (ablation
    /// baseline).
    Off,
    /// Temporaries shared within one task only — the parallel-code mode.
    PerTask,
    /// Temporaries shared across the whole RHS — the serial-code mode.
    Global,
}

/// The result of CSE over a DAG: which nodes become temporaries, in
/// evaluation (topological) order.
#[derive(Clone, Debug)]
pub struct CseProgram {
    /// Nodes that get a temporary, children-before-parents. The position
    /// in this vector is the temporary's index (`t0, t1, …`).
    pub temps: Vec<NodeId>,
    /// Evaluation order of *all* reachable nodes (children first).
    pub order: Vec<NodeId>,
    /// The output expressions.
    pub roots: Vec<NodeId>,
}

impl CseProgram {
    /// Number of extracted common subexpressions — the statistic of the
    /// paper's §3.3 code-size table.
    pub fn cse_count(&self) -> usize {
        self.temps.len()
    }

    /// Temporary index of `id`, if it was extracted.
    pub fn temp_index(&self, id: NodeId) -> Option<usize> {
        self.temps.iter().position(|&t| t == id)
    }
}

/// Run CSE over the nodes reachable from `roots`.
///
/// A node becomes a temporary when it is used at least twice and its own
/// evaluation is not free (constants and variable loads are never
/// extracted — re-reading them costs nothing).
pub fn eliminate(dag: &Dag, roots: &[NodeId], model: &CostModel) -> CseProgram {
    let order = dag.topo_from(roots);
    let temps: Vec<NodeId> = order
        .iter()
        .copied()
        .filter(|&id| {
            !matches!(dag.node(id), DagNode::Const(_) | DagNode::Var(_))
                && dag.uses(id) >= 2
                && dag.node_cost(id, model) > 0
        })
        .collect();
    CseProgram {
        temps,
        order,
        roots: roots.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_expr::expr::{Expr, Func};
    use om_expr::{num, simplify, var};

    fn program(exprs: &[Expr]) -> (Dag, CseProgram) {
        let mut dag = Dag::new();
        let roots: Vec<NodeId> = exprs
            .iter()
            .map(|e| {
                let r = dag.import(&simplify(e));
                dag.mark_root(r);
                r
            })
            .collect();
        let p = eliminate(&dag, &roots, &CostModel::default());
        (dag, p)
    }

    #[test]
    fn shared_transcendental_becomes_a_temp() {
        let s = Expr::call1(Func::Sin, var("x"));
        let (dag, p) = program(&[s.clone() + num(1.0), s.clone() * num(2.0)]);
        assert_eq!(p.cse_count(), 1);
        let t = p.temps[0];
        assert!(matches!(dag.node(t), DagNode::Call(Func::Sin, _)));
    }

    #[test]
    fn variables_and_constants_are_never_temps() {
        let (_, p) = program(&[var("x") + num(1.0), var("x") + num(2.0)]);
        assert_eq!(p.cse_count(), 0);
    }

    #[test]
    fn unshared_subexpressions_are_not_extracted() {
        let (_, p) = program(&[Expr::call1(Func::Sin, var("x")) + num(1.0)]);
        assert_eq!(p.cse_count(), 0);
    }

    #[test]
    fn temps_are_in_topological_order() {
        // inner = x+y shared; outer = sin(inner) shared.
        let inner = var("x") + var("y");
        let outer = Expr::call1(Func::Sin, inner.clone());
        let (dag, p) = program(&[
            outer.clone() + inner.clone(),
            outer.clone() * num(2.0) + inner.clone() * num(3.0),
        ]);
        assert_eq!(p.cse_count(), 2);
        // inner must be assigned before outer.
        let pos_inner = p
            .temps
            .iter()
            .position(|&t| matches!(dag.node(t), DagNode::Add(_)))
            .unwrap();
        let pos_outer = p
            .temps
            .iter()
            .position(|&t| matches!(dag.node(t), DagNode::Call(_, _)))
            .unwrap();
        assert!(pos_inner < pos_outer);
    }

    #[test]
    fn root_shared_between_outputs_is_extracted() {
        // Two outputs equal to the same nontrivial expression.
        let e = var("x") * var("y") + num(1.0);
        let (_, p) = program(&[e.clone(), e.clone()]);
        assert_eq!(p.roots[0], p.roots[1]);
        assert!(p.cse_count() >= 1);
    }
}
