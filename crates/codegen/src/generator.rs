//! The top-level code generator.
//!
//! Wires the stages of Figure 9 together: expression transformation
//! (derivative removal happened in `om-ir`), task partitioning, CSE,
//! bytecode compilation, and the static LPT schedule; also produces the
//! textual intermediate form and Fortran/C++ renderings plus the
//! statistics the paper reports in §3.3.

use crate::cse::CseMode;
use crate::emit_cpp;
use crate::emit_fortran::{self, SourceStats};
use crate::sched::{list_schedule, lpt, Schedule};
use crate::task::{
    compile_tasks, equation_tasks, extract_shared_cse, merge_small, split_large, SymbolicTask,
    TaskGraph,
};
use om_expr::CostModel;
use om_ir::OdeIr;
use std::fmt::Write as _;

/// Options of the parallel code generator — the knobs the ablation
/// experiment (E10) sweeps.
#[derive(Clone, Debug)]
pub struct GenOptions {
    /// CSE mode for the compiled bytecode.
    pub cse: CseMode,
    /// Inline algebraic variables into consumers (the paper's evaluated
    /// configuration) or keep them as producer tasks.
    pub inline_algebraics: bool,
    /// Group tasks cheaper than this (flops) into one task.
    pub merge_threshold: u64,
    /// Split a task whose top-level sum costs more than this.
    pub split_threshold: Option<u64>,
    /// Extract subexpressions costing at least this that are shared
    /// between tasks (the paper's future-work optimization).
    pub extract_shared_min_cost: Option<u64>,
    /// Cost model used for all static estimates.
    pub cost_model: CostModel,
}

impl Default for GenOptions {
    fn default() -> GenOptions {
        GenOptions {
            cse: CseMode::PerTask,
            inline_algebraics: true,
            merge_threshold: 16,
            split_threshold: None,
            extract_shared_min_cost: None,
            cost_model: CostModel::default(),
        }
    }
}

/// The generated parallel program: symbolic tasks (kept for the textual
/// emitters) and the compiled task graph.
#[derive(Clone, Debug)]
pub struct ParallelProgram {
    pub tasks: Vec<SymbolicTask>,
    pub graph: TaskGraph,
}

impl ParallelProgram {
    /// Static costs of all tasks (scheduler input).
    pub fn costs(&self) -> Vec<u64> {
        self.graph.tasks.iter().map(|t| t.static_cost).collect()
    }

    /// Build the static schedule for `m` workers: plain LPT when tasks
    /// are independent, LPT-priority list scheduling otherwise.
    pub fn schedule(&self, m: usize) -> Schedule {
        let costs = self.costs();
        if self.graph.is_independent() {
            lpt(&costs, m)
        } else {
            list_schedule(&costs, &self.graph.deps, m)
        }
    }
}

/// Code-generation statistics for the §3.3 table (experiment E5).
#[derive(Clone, Debug)]
pub struct GenStats {
    pub model_name: String,
    pub n_states: usize,
    pub n_equations: usize,
    /// Lines of type-annotated prefix intermediate code.
    pub intermediate_lines: usize,
    /// Parallel Fortran 90: lines / declaration lines / CSE count.
    pub parallel_f90: SourceStats,
    /// Serial Fortran 90 with global CSE.
    pub serial_f90: SourceStats,
}

/// The ObjectMath code generator.
#[derive(Clone, Debug, Default)]
pub struct CodeGenerator {
    pub options: GenOptions,
}

impl CodeGenerator {
    pub fn new(options: GenOptions) -> CodeGenerator {
        CodeGenerator { options }
    }

    /// Run the partitioning pipeline on `ir` and compile the task graph.
    pub fn generate(&self, ir: &OdeIr) -> ParallelProgram {
        let o = &self.options;
        let mut tasks = equation_tasks(ir, o.inline_algebraics);
        if let Some(min_cost) = o.extract_shared_min_cost {
            tasks = extract_shared_cse(tasks, min_cost, &o.cost_model);
        }
        if let Some(threshold) = o.split_threshold {
            tasks = split_large(tasks, threshold, &o.cost_model);
        }
        if o.merge_threshold > 0 {
            tasks = merge_small(tasks, o.merge_threshold, &o.cost_model);
        }
        let graph = compile_tasks(&tasks, ir, o.cse, &o.cost_model);
        ParallelProgram { tasks, graph }
    }

    /// The type-annotated prefix intermediate code (paper Figure 11
    /// middle panel): one `Equal[Derivative[1][…]…]` per equation wrapped
    /// in a `List[…]`.
    pub fn intermediate_code(&self, ir: &OdeIr) -> String {
        if ir.has_classes() {
            // The textual forms enumerate every scalar equation.
            return self.intermediate_code(&ir.expand_classes());
        }
        let mut out = String::new();
        let _ = writeln!(out, "List[");
        let _ = writeln!(out, "  List[");
        let n = ir.derivs.len() + ir.algebraics.len();
        let mut k = 0usize;
        for d in &ir.derivs {
            k += 1;
            let lhs = om_expr::full_form_typed(&om_expr::expr::Expr::Der(d.state));
            let rhs = om_expr::full_form_typed(&d.rhs);
            let comma = if k < n { "," } else { "" };
            let _ = writeln!(out, "    Equal[{lhs}, {rhs}]{comma}");
        }
        for a in &ir.algebraics {
            k += 1;
            let lhs = om_expr::full_form_typed(&om_expr::expr::Expr::Var(a.var));
            let rhs = om_expr::full_form_typed(&a.rhs);
            let comma = if k < n { "," } else { "" };
            let _ = writeln!(out, "    Equal[{lhs}, {rhs}]{comma}");
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(
            out,
            "  List[t, om$Type[tstart, om$Real], om$Type[tend, om$Real]]"
        );
        let _ = writeln!(out, "]");
        out
    }

    /// Generate the §3.3 statistics: intermediate code size, parallel vs
    /// serial Fortran with their CSE counts.
    pub fn stats(&self, ir: &OdeIr, m: usize) -> GenStats {
        if ir.has_classes() {
            return self.stats(&ir.expand_classes(), m);
        }
        let program = self.generate(ir);
        let sched = program.schedule(m);
        let parallel_f90 = emit_fortran::emit_parallel(
            &program.tasks,
            &sched.assignment,
            m,
            ir,
            &self.options.cost_model,
        );
        let serial_f90 = emit_fortran::emit_serial(ir, &self.options.cost_model);
        GenStats {
            model_name: ir.name.clone(),
            n_states: ir.dim(),
            n_equations: ir.derivs.len() + ir.algebraics.len(),
            intermediate_lines: self.intermediate_code(ir).lines().count(),
            parallel_f90,
            serial_f90,
        }
    }

    /// Parallel C++ rendering (same schedule as `stats`).
    pub fn emit_cpp(&self, ir: &OdeIr, m: usize) -> SourceStats {
        if ir.has_classes() {
            return self.emit_cpp(&ir.expand_classes(), m);
        }
        let program = self.generate(ir);
        let sched = program.schedule(m);
        emit_cpp::emit_parallel(
            &program.tasks,
            &sched.assignment,
            m,
            ir,
            &self.options.cost_model,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_ir::causalize;

    fn ir(src: &str) -> OdeIr {
        causalize(&om_lang::compile(src).unwrap()).unwrap()
    }

    const MODEL: &str = "model M;
        Real x(start=1.0); Real v; Real f;
        equation
          der(x) = v;
          der(v) = f;
          f = -4.0*x - 0.1*v + sin(time);
        end M;";

    #[test]
    fn default_pipeline_produces_correct_graph() {
        let sys = ir(MODEL);
        let generator = CodeGenerator::default();
        let program = generator.generate(&sys);
        let reference = om_ir::IrEvaluator::new(&sys).unwrap();
        let y = [0.2, -0.5];
        let mut expect = [0.0; 2];
        let mut got = [0.0; 2];
        reference.rhs(1.2, &y, &mut expect);
        program.graph.eval_serial(1.2, &y, &mut got);
        for i in 0..2 {
            assert!((expect[i] - got[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn schedule_uses_lpt_for_independent_tasks() {
        let sys = ir(MODEL);
        let program = CodeGenerator::default().generate(&sys);
        assert!(program.graph.is_independent());
        let s = program.schedule(2);
        assert_eq!(s.loads.len(), 2);
        assert_eq!(s.loads.iter().sum::<u64>(), program.graph.total_cost());
    }

    #[test]
    fn all_option_combinations_preserve_semantics() {
        let sys = ir("model M;
            Real x(start=0.5); Real v(start=-0.2); Real f; Real g;
            equation
              der(x) = v + g;
              der(v) = f - exp(sin(x) + cos(x));
              f = -4.0*x - 0.1*v + exp(sin(x) + cos(x));
              g = 0.5*f;
            end M;");
        let reference = om_ir::IrEvaluator::new(&sys).unwrap();
        let y = [0.5, -0.2];
        let mut expect = [0.0; 2];
        reference.rhs(0.3, &y, &mut expect);

        for cse in [CseMode::Off, CseMode::PerTask, CseMode::Global] {
            for inline in [true, false] {
                for split in [None, Some(40)] {
                    for extract in [None, Some(40)] {
                        for merge in [0, 16] {
                            let generator = CodeGenerator::new(GenOptions {
                                cse,
                                inline_algebraics: inline,
                                merge_threshold: merge,
                                split_threshold: split,
                                extract_shared_min_cost: extract,
                                cost_model: CostModel::default(),
                            });
                            let program = generator.generate(&sys);
                            let mut got = [0.0; 2];
                            program.graph.eval_serial(0.3, &y, &mut got);
                            for i in 0..2 {
                                assert!(
                                    (expect[i] - got[i]).abs() < 1e-10,
                                    "cse={cse:?} inline={inline} split={split:?} \
                                     extract={extract:?} merge={merge}: \
                                     slot {i}: {} vs {}",
                                    expect[i],
                                    got[i]
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn intermediate_code_is_fullform_typed() {
        let sys = ir("model M; Real x; equation der(x) = -x; end M;");
        let text = CodeGenerator::default().intermediate_code(&sys);
        assert!(
            text.contains("Derivative[1][om$Type[x, om$Real]]"),
            "{text}"
        );
        assert!(text.contains("List["));
        assert!(text.contains("om$Type[tstart, om$Real]"));
    }

    #[test]
    fn stats_report_parallel_vs_serial_difference() {
        // Heavy shared subexpression: parallel code must be bigger.
        let sys = ir("model M;
            Real x; Real y; Real z;
            equation
              der(x) = exp(sin(x)+cos(y)) + x;
              der(y) = exp(sin(x)+cos(y)) + y;
              der(z) = exp(sin(x)+cos(y)) + z;
            end M;");
        let generator = CodeGenerator::new(GenOptions {
            merge_threshold: 0,
            ..GenOptions::default()
        });
        let stats = generator.stats(&sys, 3);
        assert_eq!(stats.n_states, 3);
        assert!(stats.intermediate_lines > 4);
        assert!(
            stats.parallel_f90.total_lines > stats.serial_f90.total_lines,
            "parallel {} vs serial {}",
            stats.parallel_f90.total_lines,
            stats.serial_f90.total_lines
        );
        assert!(stats.serial_f90.cse_count >= 1);
    }
}
