//! Content-hashed model registry: compile once, reuse across a batch.
//!
//! The ensemble workload ("millions of users" = parameter sweeps and
//! Monte-Carlo batches over the *same* model) makes compilation a shared,
//! cacheable prefix: N scenarios differ only in their parameter vectors,
//! never in the compiled artifact. [`ModelRegistry`] maps a
//! [`ModelKey`] — an FNV-1a hash of the model source (salted with a
//! registry format version so a pipeline change invalidates old keys) —
//! to an immutable [`CompiledModel`] holding the causalized internal
//! form, the generated task graph + bytecode, and a per-worker-count
//! schedule cache.
//!
//! Every [`CompiledModel`] also exposes a *structural identity*: a hash
//! over the compiled bytecode instructions, task dependence edges, and
//! output slots. The ensemble checkpoint format stores this identity so
//! `omc sweep --resume` can refuse to splice results produced by a
//! different compilation of a same-named model.

use crate::generator::{CodeGenerator, ParallelProgram};
use crate::sched::Schedule;
use crate::task::TaskGraph;
use om_ir::OdeIr;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Bump when the compile pipeline changes in a way that invalidates
/// previously recorded keys/identities (checkpoints store both).
/// v2: array-loop tasks (trip counts + patch tables enter the identity).
const REGISTRY_FORMAT_VERSION: u64 = 2;

/// 64-bit FNV-1a. Tiny, dependency-free, stable across platforms and
/// runs — exactly what an on-disk checkpoint needs (`DefaultHasher`
/// explicitly is not stable across releases).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Content hash of a model source text (the registry lookup key).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ModelKey(pub u64);

impl ModelKey {
    /// Key of a source text: FNV-1a over the bytes, salted with the
    /// registry format version.
    pub fn of_source(source: &str) -> ModelKey {
        let mut h = fnv1a64(source.as_bytes());
        h ^= REGISTRY_FORMAT_VERSION.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        ModelKey(h)
    }
}

impl fmt::Display for ModelKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A registry failure: the model does not compile.
#[derive(Clone, Debug)]
pub struct RegistryError {
    pub message: String,
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "model registry: {}", self.message)
    }
}

impl std::error::Error for RegistryError {}

/// An immutable compiled model: source key, causalized IR, generated
/// task graph + bytecode, structural identity, and a schedule cache.
pub struct CompiledModel {
    key: ModelKey,
    identity: u64,
    ir: OdeIr,
    program: ParallelProgram,
    /// LPT/list schedules per worker count, computed once per `m`.
    schedules: Mutex<HashMap<usize, Arc<Schedule>>>,
}

impl CompiledModel {
    /// Compile `source` through the full pipeline (flatten → causalize →
    /// verify → generate) with the given generator options.
    pub fn compile_with(
        source: &str,
        generator: &CodeGenerator,
    ) -> Result<CompiledModel, RegistryError> {
        let flat = om_lang::compile(source).map_err(|e| RegistryError {
            message: e.to_string(),
        })?;
        let ir = om_ir::causalize(&flat).map_err(|e| RegistryError {
            message: e.to_string(),
        })?;
        om_ir::verify_compilable(&ir).map_err(|e| RegistryError {
            message: e.to_string(),
        })?;
        let program = generator.generate(&ir);
        let identity = graph_identity(&program.graph);
        Ok(CompiledModel {
            key: ModelKey::of_source(source),
            identity,
            ir,
            program,
            schedules: Mutex::new(HashMap::new()),
        })
    }

    /// [`CompiledModel::compile_with`] under default generator options.
    pub fn compile(source: &str) -> Result<CompiledModel, RegistryError> {
        CompiledModel::compile_with(source, &CodeGenerator::default())
    }

    /// The source content key.
    pub fn key(&self) -> ModelKey {
        self.key
    }

    /// Structural identity of the compiled artifact: a stable hash over
    /// bytecode instructions, task writes/reads, and dependence edges.
    /// Two sources compiling to the same graph share an identity; the
    /// same source under a different pipeline does not.
    pub fn identity(&self) -> u64 {
        self.identity
    }

    /// The causalized internal form.
    pub fn ir(&self) -> &OdeIr {
        &self.ir
    }

    /// The generated parallel program (symbolic tasks + compiled graph).
    pub fn program(&self) -> &ParallelProgram {
        &self.program
    }

    /// ODE dimension.
    pub fn dim(&self) -> usize {
        self.ir.dim()
    }

    /// Approximate warm-cache footprint of this artifact, in abstract
    /// units (bytecode words + constants + patch-table slots + state
    /// dims). Not bytes — a stable, platform-independent measure the
    /// registry's eviction accounting and `omc serve` stats can report
    /// without lying about allocator overhead.
    pub fn footprint_units(&self) -> u64 {
        let mut units = self.ir.dim() as u64;
        for task in &self.program.graph.tasks {
            units += task.program.instrs.len() as u64;
            units += task.program.consts.len() as u64;
            if let Some(li) = &task.loop_info {
                units += li.count as u64 * li.patches.len().max(1) as u64;
            }
        }
        units
    }

    /// The static schedule for `m` workers, computed once and cached.
    pub fn schedule(&self, m: usize) -> Arc<Schedule> {
        let mut cache = match self.schedules.lock() {
            Ok(guard) => guard,
            // A panic while holding the lock can only leave a fully
            // written entry or none: recompute through the poison.
            Err(poisoned) => poisoned.into_inner(),
        };
        cache
            .entry(m)
            .or_insert_with(|| Arc::new(self.program.schedule(m)))
            .clone()
    }
}

impl fmt::Debug for CompiledModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledModel")
            .field("key", &self.key)
            .field("identity", &format_args!("{:016x}", self.identity))
            .field("model", &self.ir.name)
            .field("dim", &self.ir.dim())
            .field("tasks", &self.program.graph.tasks.len())
            .finish()
    }
}

/// Stable structural hash of a compiled task graph (bytecode + task
/// graph identity). Uses the `Debug` rendering of instructions — stable
/// within this crate, and any rendering change is a pipeline change that
/// *should* alter identities.
pub fn graph_identity(graph: &TaskGraph) -> u64 {
    let mut text = String::new();
    text.push_str(&format!(
        "v{REGISTRY_FORMAT_VERSION};dim={};shared={};",
        graph.dim, graph.n_shared
    ));
    for task in &graph.tasks {
        text.push_str(&format!(
            "task{}:{:?}:{:?}:{:?}:{:?}:{:?};",
            task.id,
            task.program.consts,
            task.program.instrs,
            task.writes,
            task.reads_states,
            task.reads_shared
        ));
        // Array-loop tasks: the trip count and per-iteration slot patch
        // tables are part of the compiled artifact. Two models differing
        // only in an array dimension produce different patch tables, so
        // their identities never collide.
        if let Some(li) = &task.loop_info {
            text.push_str(&format!("loop:{}:{:?};", li.count, li.patches));
        }
    }
    for (i, deps) in graph.deps.iter().enumerate() {
        text.push_str(&format!("dep{i}:{deps:?};"));
    }
    fnv1a64(text.as_bytes())
}

/// One warm registry entry: the shared artifact plus the bookkeeping
/// the eviction policy needs (recency tick + footprint units).
struct WarmEntry {
    model: Arc<CompiledModel>,
    last_used: u64,
    footprint: u64,
}

/// A process-wide (or per-batch) cache of compiled models.
///
/// Batch drivers (`omc sweep`) use an unbounded registry: the batch
/// names a fixed model set and the process exits when it is done. A
/// *resident* process (`omc serve`) must not grow without bound under
/// adversarial traffic, so it constructs the registry with a capacity:
/// inserting past it evicts the least-recently-used entry. Eviction
/// only drops the registry's `Arc` — in-flight requests holding a clone
/// keep computing on the old artifact; it is freed when the last clone
/// drops.
#[derive(Default)]
pub struct ModelRegistry {
    models: Mutex<HashMap<ModelKey, WarmEntry>>,
    /// Maximum warm entries (0 = unbounded).
    capacity: usize,
    /// Monotonic recency clock for LRU (bumped on every touch).
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ModelRegistry {
    /// Unbounded registry (the batch-driver configuration).
    pub fn new() -> ModelRegistry {
        ModelRegistry::default()
    }

    /// Registry holding at most `capacity` warm models, evicting the
    /// least recently used past that. `capacity == 0` means unbounded.
    pub fn with_capacity(capacity: usize) -> ModelRegistry {
        ModelRegistry {
            capacity,
            ..ModelRegistry::default()
        }
    }

    /// Look up `source` by content hash, compiling (once) on miss.
    /// Concurrent callers of the same source race to compile but the
    /// first registered artifact wins, so every caller shares one `Arc`.
    pub fn get_or_compile(&self, source: &str) -> Result<Arc<CompiledModel>, RegistryError> {
        let key = ModelKey::of_source(source);
        if let Some(found) = self.touch(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(found);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let compiled = Arc::new(CompiledModel::compile(source)?);
        let footprint = compiled.footprint_units();
        let mut models = self.lock();
        let entry = models.entry(key).or_insert(WarmEntry {
            model: compiled,
            last_used: self.clock.fetch_add(1, Ordering::Relaxed),
            footprint,
        });
        let shared = entry.model.clone();
        self.evict_past_capacity(&mut models, key);
        Ok(shared)
    }

    /// Look up an already-compiled model by its content key (the `omc
    /// serve` fast path: clients that learned a key from an earlier
    /// response skip shipping the source again). Counts as a hit/miss
    /// like `get_or_compile`, but never compiles.
    pub fn get_by_key(&self, key: ModelKey) -> Option<Arc<CompiledModel>> {
        match self.touch(key) {
            Some(model) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(model)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<ModelKey, WarmEntry>> {
        match self.models.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Look up and bump recency.
    fn touch(&self, key: ModelKey) -> Option<Arc<CompiledModel>> {
        let mut models = self.lock();
        let entry = models.get_mut(&key)?;
        entry.last_used = self.clock.fetch_add(1, Ordering::Relaxed);
        Some(entry.model.clone())
    }

    /// Drop least-recently-used entries until within capacity. The entry
    /// just touched (`keep`) is never evicted, so a capacity of 1 still
    /// serves the current request from the cache.
    fn evict_past_capacity(&self, models: &mut HashMap<ModelKey, WarmEntry>, keep: ModelKey) {
        if self.capacity == 0 {
            return;
        }
        while models.len() > self.capacity {
            let Some(victim) = models
                .iter()
                .filter(|(k, _)| **k != keep)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            else {
                return;
            };
            models.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of distinct compiled models held.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when nothing has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= compilations attempted) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted by the capacity bound so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Total footprint of the warm entries, in [`CompiledModel::footprint_units`].
    pub fn warm_units(&self) -> u64 {
        self.lock().values().map(|e| e.footprint).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OSC: &str = "model Osc;
        Real x(start=1.0); Real y;
        equation der(x) = y; der(y) = -x; end Osc;";

    #[test]
    fn keys_are_stable_and_content_sensitive() {
        assert_eq!(ModelKey::of_source(OSC), ModelKey::of_source(OSC));
        assert_ne!(
            ModelKey::of_source(OSC),
            ModelKey::of_source("model Osc2; Real x; equation der(x) = -x; end Osc2;")
        );
        // Key renders as fixed-width hex (checkpoint format relies on it).
        assert_eq!(ModelKey(0xff).to_string(), "00000000000000ff");
    }

    #[test]
    fn registry_compiles_once_and_shares() {
        let reg = ModelRegistry::new();
        let a = reg.get_or_compile(OSC).unwrap();
        let b = reg.get_or_compile(OSC).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.misses(), 1);
        assert_eq!(reg.hits(), 1);
        assert_eq!(a.dim(), 2);
    }

    #[test]
    fn registry_surfaces_compile_errors() {
        let reg = ModelRegistry::new();
        let err = reg
            .get_or_compile("model Broken; Real x; equation end")
            .unwrap_err();
        assert!(!err.to_string().is_empty());
        assert!(reg.is_empty());
    }

    #[test]
    fn identity_tracks_compiled_structure_not_text() {
        let a = CompiledModel::compile(OSC).unwrap();
        // Whitespace-only change: same pipeline output, different key.
        let spaced = OSC.replace("equation", "equation\n");
        let b = CompiledModel::compile(&spaced).unwrap();
        assert_ne!(a.key(), b.key());
        assert_eq!(a.identity(), b.identity());
        // A different model has a different identity.
        let c = CompiledModel::compile(
            "model Osc; Real x(start=1.0); Real y;
             equation der(x) = 2.0*y; der(y) = -x; end Osc;",
        )
        .unwrap();
        assert_ne!(a.identity(), c.identity());
    }

    #[test]
    fn array_dimension_changes_the_identity() {
        // Same class structure, different cardinality: the loop tasks'
        // patch tables (and enumerated writes) must keep the identities
        // distinct, and the array-aware graph must not collide with the
        // scalarized oracle graph of the same model.
        fn heat(n: usize) -> String {
            format!(
                "model H; Real[{n}] u; equation
                   der(u[1]) = 3.5*u[2] - 8.0*u[1];
                   for i in 2:{m} loop
                     der(u[i]) = 4.5*u[i-1] - 8.0*u[i] + 3.5*u[i+1];
                   end for;
                   der(u[{n}]) = 4.5*u[{m}] - 8.0*u[{n}];
                 end H;",
                m = n - 1
            )
        }
        let generator = CodeGenerator::default();
        let id_aware = |n: usize| {
            let ir = om_ir::causalize(&om_lang::compile_arrays(&heat(n)).unwrap()).unwrap();
            assert!(ir.has_classes());
            graph_identity(&generator.generate(&ir).graph)
        };
        assert_ne!(id_aware(12), id_aware(13));
        let oracle = om_ir::causalize(&om_lang::compile(&heat(12)).unwrap()).unwrap();
        assert_ne!(
            id_aware(12),
            graph_identity(&generator.generate(&oracle).graph)
        );
    }

    #[test]
    fn schedules_are_cached_per_worker_count() {
        let m = CompiledModel::compile(OSC).unwrap();
        let s2a = m.schedule(2);
        let s2b = m.schedule(2);
        let s4 = m.schedule(4);
        assert!(Arc::ptr_eq(&s2a, &s2b));
        assert_eq!(s2a.assignment.len(), m.program().graph.tasks.len());
        assert_eq!(s4.loads.len(), 4);
    }

    #[test]
    fn fnv_matches_known_vectors() {
        // FNV-1a reference vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    /// Three structurally-distinct one-state models for eviction tests.
    fn variant(coeff: u32) -> String {
        format!("model V{coeff}; Real x(start=1.0); equation der(x) = -{coeff}.0*x; end V{coeff};")
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let reg = ModelRegistry::with_capacity(2);
        let (a, b, c) = (variant(1), variant(2), variant(3));
        reg.get_or_compile(&a).unwrap();
        reg.get_or_compile(&b).unwrap();
        // Touch `a` so `b` becomes the LRU victim when `c` lands.
        reg.get_or_compile(&a).unwrap();
        reg.get_or_compile(&c).unwrap();
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.evictions(), 1);
        assert!(reg.get_by_key(ModelKey::of_source(&a)).is_some());
        assert!(reg.get_by_key(ModelKey::of_source(&b)).is_none());
        assert!(reg.get_by_key(ModelKey::of_source(&c)).is_some());
        // The evicted model recompiles on demand (counted as a miss).
        let misses_before = reg.misses();
        reg.get_or_compile(&b).unwrap();
        assert_eq!(reg.misses(), misses_before + 1);
    }

    #[test]
    fn capacity_one_still_serves_current_request() {
        let reg = ModelRegistry::with_capacity(1);
        let (a, b) = (variant(4), variant(5));
        let first = reg.get_or_compile(&a).unwrap();
        let second = reg.get_or_compile(&b).unwrap();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.evictions(), 1);
        // The in-flight Arc from before the eviction stays valid.
        assert_eq!(first.dim(), 1);
        assert_eq!(second.dim(), 1);
    }

    #[test]
    fn zero_capacity_means_unbounded() {
        let reg = ModelRegistry::with_capacity(0);
        for coeff in 1..=5 {
            reg.get_or_compile(&variant(coeff)).unwrap();
        }
        assert_eq!(reg.len(), 5);
        assert_eq!(reg.evictions(), 0);
    }

    #[test]
    fn get_by_key_counts_hits_and_misses() {
        let reg = ModelRegistry::new();
        let compiled = reg.get_or_compile(OSC).unwrap();
        let (h0, m0) = (reg.hits(), reg.misses());
        let found = reg.get_by_key(compiled.key()).unwrap();
        assert!(Arc::ptr_eq(&found, &compiled));
        assert_eq!(reg.hits(), h0 + 1);
        assert!(reg.get_by_key(ModelKey(0xdead_beef)).is_none());
        assert_eq!(reg.misses(), m0 + 1);
    }

    #[test]
    fn warm_units_track_footprints() {
        let reg = ModelRegistry::new();
        assert_eq!(reg.warm_units(), 0);
        let a = reg.get_or_compile(OSC).unwrap();
        assert_eq!(reg.warm_units(), a.footprint_units());
        assert!(a.footprint_units() > 0);
        let b = reg.get_or_compile(&variant(7)).unwrap();
        assert_eq!(reg.warm_units(), a.footprint_units() + b.footprint_units());
    }
}
