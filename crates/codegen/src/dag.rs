//! Hash-consed expression DAG.
//!
//! Importing an expression tree into a [`Dag`] deduplicates structurally
//! identical subtrees: every distinct subexpression gets exactly one
//! [`NodeId`]. Common-subexpression elimination then reduces to counting
//! node uses, and the bytecode compiler can assign one register per node.
//!
//! Expressions should be simplified (canonicalized) before import —
//! canonical ordering of n-ary operands is what makes mathematically
//! equal subterms structurally equal.

use om_expr::expr::{CmpOp, Expr, Func};
use om_expr::{CostModel, Symbol};
use std::collections::HashMap;

/// Index of a node in a [`Dag`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A DAG node. Children are [`NodeId`]s into the same arena.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum DagNode {
    Const(u64), // f64 bits, so the node is Eq + Hash
    Var(Symbol),
    Add(Vec<NodeId>),
    Mul(Vec<NodeId>),
    Pow(NodeId, NodeId),
    Call(Func, Vec<NodeId>),
    Cmp(CmpOp, NodeId, NodeId),
    And(Vec<NodeId>),
    Or(Vec<NodeId>),
    Not(NodeId),
    If(NodeId, NodeId, NodeId),
}

impl DagNode {
    /// Invoke `f` on every child id.
    pub fn for_each_child(&self, mut f: impl FnMut(NodeId)) {
        match self {
            DagNode::Const(_) | DagNode::Var(_) => {}
            DagNode::Add(xs) | DagNode::Mul(xs) | DagNode::And(xs) | DagNode::Or(xs) => {
                for &x in xs {
                    f(x);
                }
            }
            DagNode::Call(_, xs) => {
                for &x in xs {
                    f(x);
                }
            }
            DagNode::Pow(a, b) | DagNode::Cmp(_, a, b) => {
                f(*a);
                f(*b);
            }
            DagNode::Not(a) => f(*a),
            DagNode::If(c, t, e) => {
                f(*c);
                f(*t);
                f(*e);
            }
        }
    }
}

/// A hash-consing arena of [`DagNode`]s.
#[derive(Clone, Debug, Default)]
pub struct Dag {
    nodes: Vec<DagNode>,
    lookup: HashMap<DagNode, NodeId>,
    /// How many parents reference each node (root references are counted
    /// by [`Dag::mark_root`]).
    use_count: Vec<u32>,
}

impl Dag {
    pub fn new() -> Dag {
        Dag::default()
    }

    /// Number of distinct nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node for `id`.
    pub fn node(&self, id: NodeId) -> &DagNode {
        &self.nodes[id.index()]
    }

    /// Times the node is referenced by parents and roots.
    pub fn uses(&self, id: NodeId) -> u32 {
        self.use_count[id.index()]
    }

    fn intern(&mut self, node: DagNode) -> NodeId {
        if let Some(&id) = self.lookup.get(&node) {
            return id;
        }
        let id = NodeId(u32::try_from(self.nodes.len()).expect("DAG too large"));
        // Count one use per child reference.
        node.for_each_child(|c| self.use_count[c.index()] += 1);
        self.nodes.push(node.clone());
        self.lookup.insert(node, id);
        self.use_count.push(0);
        id
    }

    /// Mark `id` as a root (an equation output); contributes one use.
    pub fn mark_root(&mut self, id: NodeId) {
        self.use_count[id.index()] += 1;
    }

    /// Import a (scalarized, derivative-free) expression tree.
    ///
    /// # Panics
    /// On `Der` or `Tuple` nodes — run the IR verifier first.
    pub fn import(&mut self, e: &Expr) -> NodeId {
        match e {
            Expr::Const(c) => self.intern(DagNode::Const(c.to_bits())),
            Expr::Var(s) => self.intern(DagNode::Var(*s)),
            Expr::Der(s) => panic!("derivative marker der({s}) reached the code generator"),
            Expr::Tuple(_) => panic!("tuple reached the code generator"),
            Expr::Add(xs) => {
                let kids: Vec<NodeId> = xs.iter().map(|x| self.import(x)).collect();
                self.intern(DagNode::Add(kids))
            }
            Expr::Mul(xs) => {
                let kids: Vec<NodeId> = xs.iter().map(|x| self.import(x)).collect();
                self.intern(DagNode::Mul(kids))
            }
            Expr::Pow(a, b) => {
                let (a, b) = (self.import(a), self.import(b));
                self.intern(DagNode::Pow(a, b))
            }
            Expr::Call(f, args) => {
                let kids: Vec<NodeId> = args.iter().map(|x| self.import(x)).collect();
                self.intern(DagNode::Call(*f, kids))
            }
            Expr::Cmp(op, a, b) => {
                let (a, b) = (self.import(a), self.import(b));
                self.intern(DagNode::Cmp(*op, a, b))
            }
            Expr::And(xs) => {
                let kids: Vec<NodeId> = xs.iter().map(|x| self.import(x)).collect();
                self.intern(DagNode::And(kids))
            }
            Expr::Or(xs) => {
                let kids: Vec<NodeId> = xs.iter().map(|x| self.import(x)).collect();
                self.intern(DagNode::Or(kids))
            }
            Expr::Not(a) => {
                let a = self.import(a);
                self.intern(DagNode::Not(a))
            }
            Expr::If(c, t, e2) => {
                let (c, t, e2) = (self.import(c), self.import(t), self.import(e2));
                self.intern(DagNode::If(c, t, e2))
            }
        }
    }

    /// Local (per-node) cost under the model — the cost of computing the
    /// node given its children.
    pub fn node_cost(&self, id: NodeId, m: &CostModel) -> u64 {
        match self.node(id) {
            DagNode::Const(_) | DagNode::Var(_) => 0,
            DagNode::Add(xs) | DagNode::Mul(xs) => (xs.len() as u64 - 1) * m.addmul,
            DagNode::Pow(_, b) => match self.node(*b) {
                DagNode::Const(bits) => {
                    let c = f64::from_bits(*bits);
                    if c.fract() == 0.0 && c.abs() <= 64.0 && c != 0.0 {
                        (c.abs() as u64).saturating_sub(1).max(1) * m.addmul
                            + if c < 0.0 { m.div } else { 0 }
                    } else if c == 0.5 || c == -0.5 {
                        m.sqrt + if c < 0.0 { m.div } else { 0 }
                    } else {
                        m.powf
                    }
                }
                _ => m.powf,
            },
            DagNode::Call(f, _) => match f {
                Func::Sqrt => m.sqrt,
                Func::Abs | Func::Sign | Func::Min | Func::Max => m.cmp,
                Func::Hypot => m.sqrt + 3 * m.addmul,
                _ => m.transcendental,
            },
            DagNode::Cmp(_, _, _) | DagNode::And(_) | DagNode::Or(_) | DagNode::Not(_) => m.cmp,
            DagNode::If(_, _, _) => m.cmp,
        }
    }

    /// Total cost of evaluating all nodes reachable from `roots` *with
    /// sharing* (each node once) — the cost of the CSE'd computation.
    pub fn shared_cost(&self, roots: &[NodeId], m: &CostModel) -> u64 {
        let mut seen = vec![false; self.len()];
        let mut stack: Vec<NodeId> = roots.to_vec();
        let mut total = 0;
        while let Some(id) = stack.pop() {
            if seen[id.index()] {
                continue;
            }
            seen[id.index()] = true;
            total += self.node_cost(id, m);
            self.node(id).for_each_child(|c| stack.push(c));
        }
        total
    }

    /// Total cost of evaluating `roots` as *trees* (no sharing) — the
    /// cost the computation would have without CSE.
    pub fn tree_cost(&self, roots: &[NodeId], m: &CostModel) -> u64 {
        // Memoized per-node tree cost.
        fn cost_of(dag: &Dag, id: NodeId, m: &CostModel, memo: &mut [Option<u64>]) -> u64 {
            if let Some(c) = memo[id.index()] {
                return c;
            }
            let mut c = dag.node_cost(id, m);
            dag.node(id).for_each_child(|ch| {
                c = c.saturating_add(cost_of(dag, ch, m, memo));
            });
            memo[id.index()] = Some(c);
            c
        }
        let mut memo = vec![None; self.len()];
        roots.iter().map(|&r| cost_of(self, r, m, &mut memo)).sum()
    }

    /// Nodes reachable from `roots`, in a topological order (children
    /// before parents).
    pub fn topo_from(&self, roots: &[NodeId]) -> Vec<NodeId> {
        let mut state = vec![0u8; self.len()]; // 0 unseen, 1 open, 2 done
        let mut order = Vec::new();
        let mut stack: Vec<(NodeId, bool)> = roots.iter().map(|&r| (r, false)).collect();
        while let Some((id, processed)) = stack.pop() {
            if processed {
                state[id.index()] = 2;
                order.push(id);
                continue;
            }
            if state[id.index()] != 0 {
                continue;
            }
            state[id.index()] = 1;
            stack.push((id, true));
            self.node(id).for_each_child(|c| {
                if state[c.index()] == 0 {
                    stack.push((c, false));
                }
            });
        }
        order
    }

    /// All free variables reachable from `roots`.
    pub fn free_vars(&self, roots: &[NodeId]) -> Vec<Symbol> {
        let mut out = Vec::new();
        for id in self.topo_from(roots) {
            if let DagNode::Var(s) = self.node(id) {
                if !out.contains(s) {
                    out.push(*s);
                }
            }
        }
        out.sort_by_key(|s| s.name());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_expr::{num, simplify, var};

    #[test]
    fn identical_subtrees_share_one_node() {
        let mut dag = Dag::new();
        // (x+y) * (x+y)  →  canonical: Pow[Add[x,y], 2] after simplify,
        // so test the unsimplified product instead via two imports.
        let sum = var("x") + var("y");
        let a = dag.import(&sum);
        let b = dag.import(&sum);
        assert_eq!(a, b);
        assert_eq!(dag.len(), 3); // x, y, x+y
    }

    #[test]
    fn use_counts_track_sharing() {
        let mut dag = Dag::new();
        let sum = var("x") + var("y");
        let e1 = simplify(&(sum.clone() * num(2.0)));
        let e2 = simplify(&(sum.clone() * num(3.0)));
        let r1 = dag.import(&e1);
        let r2 = dag.import(&e2);
        dag.mark_root(r1);
        dag.mark_root(r2);
        let sum_id = dag.import(&simplify(&sum));
        assert_eq!(dag.uses(sum_id), 2);
    }

    #[test]
    fn shared_vs_tree_cost() {
        let mut dag = Dag::new();
        let m = CostModel::default();
        // s = sin(x); roots: s + 1 and s + 2 — sin computed once shared,
        // twice as trees.
        let s = om_expr::expr::Expr::call1(Func::Sin, var("x"));
        let r1 = dag.import(&simplify(&(s.clone() + num(1.0))));
        let r2 = dag.import(&simplify(&(s.clone() + num(2.0))));
        let shared = dag.shared_cost(&[r1, r2], &m);
        let tree = dag.tree_cost(&[r1, r2], &m);
        assert_eq!(shared, m.transcendental + 2 * m.addmul);
        assert_eq!(tree, 2 * m.transcendental + 2 * m.addmul);
    }

    #[test]
    fn topo_order_puts_children_first() {
        let mut dag = Dag::new();
        let e = simplify(&((var("x") + var("y")) * var("z")));
        let root = dag.import(&e);
        let order = dag.topo_from(&[root]);
        assert_eq!(order.len(), dag.len());
        let mut position = vec![usize::MAX; dag.len()];
        for (i, id) in order.iter().enumerate() {
            position[id.index()] = i;
        }
        for &id in &order {
            dag.node(id).for_each_child(|c| {
                assert!(position[c.index()] < position[id.index()]);
            });
        }
    }

    #[test]
    fn free_vars_are_sorted_and_deduped() {
        let mut dag = Dag::new();
        let r = dag.import(&simplify(&(var("b") * var("a") + var("b"))));
        let vars: Vec<&str> = dag.free_vars(&[r]).iter().map(|s| s.name()).collect();
        assert_eq!(vars, vec!["a", "b"]);
    }

    #[test]
    #[should_panic(expected = "derivative marker")]
    fn der_marker_panics() {
        let mut dag = Dag::new();
        dag.import(&om_expr::der("x"));
    }

    #[test]
    fn integer_pow_costs_less_than_general_pow() {
        let mut dag = Dag::new();
        let m = CostModel::default();
        let p2 = dag.import(&var("x").powi(3));
        let pf = dag.import(&var("x").pow(num(2.7)));
        assert!(dag.node_cost(p2, &m) < dag.node_cost(pf, &m));
    }
}
