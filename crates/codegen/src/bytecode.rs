//! Register bytecode — the executable target of the code generator.
//!
//! The original system emitted Fortran 90 and let the Fortran compiler
//! produce machine code. Here, the same task bodies are compiled to a
//! simple register bytecode executed by [`crate::vm`]; the *task
//! structure, operation counts, and communication pattern* are identical,
//! which is what the scheduling experiments measure (see DESIGN.md).
//!
//! Conditionals compile to `Select` (both branches evaluated, one kept).
//! All expressions in the compilable subset are total, so this is
//! semantics-preserving; it also matches the cost model's
//! worst-case-branch accounting.

use crate::cse::CseMode;
use crate::dag::{Dag, DagNode, NodeId};
use om_expr::expr::{CmpOp, Func};
use om_expr::Symbol;
use std::collections::HashMap;

/// How a variable leaf resolves at execution time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarRef {
    /// Index into the state vector `y`.
    State(u32),
    /// Index into the shared-values array (outputs of other tasks).
    Shared(u32),
    /// The free variable `t`.
    Time,
}

/// One bytecode instruction. `dst`, `a`, `b`, `c` are register indices.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Instr {
    /// `r[dst] = consts[idx]`
    Const {
        dst: u32,
        idx: u32,
    },
    /// `r[dst] = y[idx]`
    State {
        dst: u32,
        idx: u32,
    },
    /// `r[dst] = shared[idx]`
    Shared {
        dst: u32,
        idx: u32,
    },
    /// `r[dst] = t`
    Time {
        dst: u32,
    },
    Add {
        dst: u32,
        a: u32,
        b: u32,
    },
    Mul {
        dst: u32,
        a: u32,
        b: u32,
    },
    /// `r[dst] = r[a] ^ n` by repeated multiplication (n may be negative).
    PowI {
        dst: u32,
        a: u32,
        n: i32,
    },
    /// `r[dst] = r[a] ^ r[b]` via `powf`.
    Powf {
        dst: u32,
        a: u32,
        b: u32,
    },
    Call1 {
        f: Func,
        dst: u32,
        a: u32,
    },
    Call2 {
        f: Func,
        dst: u32,
        a: u32,
        b: u32,
    },
    /// `r[dst] = r[a] <op> r[b] ? 1.0 : 0.0`
    Cmp {
        op: CmpOp,
        dst: u32,
        a: u32,
        b: u32,
    },
    /// Boolean ops over 0/1-normalized operands.
    BoolAnd {
        dst: u32,
        a: u32,
        b: u32,
    },
    BoolOr {
        dst: u32,
        a: u32,
        b: u32,
    },
    BoolNot {
        dst: u32,
        a: u32,
    },
    /// `r[dst] = r[c] != 0 ? r[a] : r[b]`
    Select {
        dst: u32,
        c: u32,
        a: u32,
        b: u32,
    },
}

/// A compiled straight-line program.
#[derive(Clone, Debug, Default)]
pub struct Program {
    pub consts: Vec<f64>,
    pub instrs: Vec<Instr>,
    pub n_regs: u32,
    /// Registers holding the program's outputs, in root order.
    pub outputs: Vec<u32>,
}

impl Program {
    /// Rough size metric for reporting.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Repoint the `State` load at instruction `i` to read state slot
    /// `slot` (array-loop task iteration stepping). Panics if instruction
    /// `i` is not a `State` load.
    pub fn patch_state(&mut self, i: usize, slot: u32) {
        match &mut self.instrs[i] {
            Instr::State { idx, .. } => *idx = slot,
            other => panic!("patch_state on non-State instruction {other:?}"),
        }
    }

    /// Index of the unique `State` load reading `slot`, if any. Leaf
    /// loads are cached per symbol by the compiler in every CSE mode, so
    /// a state slot is loaded by at most one instruction.
    pub fn find_state_load(&self, slot: u32) -> Option<usize> {
        self.instrs
            .iter()
            .position(|i| matches!(i, Instr::State { idx, .. } if *idx == slot))
    }
}

/// Bytecode compiler over a [`Dag`].
pub struct Compiler<'d> {
    dag: &'d Dag,
    vars: &'d HashMap<Symbol, VarRef>,
    program: Program,
    const_index: HashMap<u64, u32>,
    /// Register cache per node (used in sharing modes).
    reg_of: Vec<Option<u32>>,
    mode: CseMode,
}

impl<'d> Compiler<'d> {
    pub fn new(dag: &'d Dag, vars: &'d HashMap<Symbol, VarRef>, mode: CseMode) -> Compiler<'d> {
        Compiler {
            dag,
            vars,
            program: Program::default(),
            const_index: HashMap::new(),
            reg_of: vec![None; dag.len()],
            mode,
        }
    }

    fn fresh(&mut self) -> u32 {
        let r = self.program.n_regs;
        self.program.n_regs += 1;
        r
    }

    fn const_slot(&mut self, bits: u64) -> u32 {
        if let Some(&i) = self.const_index.get(&bits) {
            return i;
        }
        let i = self.program.consts.len() as u32;
        self.program.consts.push(f64::from_bits(bits));
        self.const_index.insert(bits, i);
        i
    }

    /// Compile the subtree rooted at `id`, returning the register holding
    /// its value.
    fn compile_node(&mut self, id: NodeId) -> u32 {
        // In sharing modes, reuse the register of an already-compiled
        // node. In `Off` mode only leaves are cached (reloading a leaf is
        // indistinguishable from re-reading memory, and duplicating the
        // register would not change the instruction count of interest).
        let cacheable = !matches!(self.mode, CseMode::Off)
            || matches!(self.dag.node(id), DagNode::Const(_) | DagNode::Var(_));
        if cacheable {
            if let Some(r) = self.reg_of[id.index()] {
                return r;
            }
        }
        let reg = match self.dag.node(id).clone() {
            DagNode::Const(bits) => {
                let idx = self.const_slot(bits);
                let dst = self.fresh();
                self.program.instrs.push(Instr::Const { dst, idx });
                dst
            }
            DagNode::Var(s) => {
                let dst = self.fresh();
                let vr = *self
                    .vars
                    .get(&s)
                    .unwrap_or_else(|| panic!("unresolved variable `{s}` in codegen"));
                let instr = match vr {
                    VarRef::State(i) => Instr::State { dst, idx: i },
                    VarRef::Shared(i) => Instr::Shared { dst, idx: i },
                    VarRef::Time => Instr::Time { dst },
                };
                self.program.instrs.push(instr);
                dst
            }
            DagNode::Add(kids) => self.reduce(&kids, |dst, a, b| Instr::Add { dst, a, b }),
            DagNode::Mul(kids) => self.reduce(&kids, |dst, a, b| Instr::Mul { dst, a, b }),
            DagNode::Pow(a, b) => {
                let ra = self.compile_node(a);
                // Integer exponents lower to repeated multiplication, like
                // the emitted Fortran (x*x instead of x**2.0d0).
                if let DagNode::Const(bits) = self.dag.node(b) {
                    let c = f64::from_bits(*bits);
                    if c.fract() == 0.0 && c.abs() <= 64.0 && c != 0.0 {
                        let dst = self.fresh();
                        self.program.instrs.push(Instr::PowI {
                            dst,
                            a: ra,
                            n: c as i32,
                        });
                        return self.finish(id, dst, cacheable);
                    }
                }
                let rb = self.compile_node(b);
                let dst = self.fresh();
                self.program.instrs.push(Instr::Powf { dst, a: ra, b: rb });
                dst
            }
            DagNode::Call(f, kids) => {
                let ra = self.compile_node(kids[0]);
                let dst = self.fresh();
                if kids.len() == 1 {
                    self.program.instrs.push(Instr::Call1 { f, dst, a: ra });
                } else {
                    let rb = self.compile_node(kids[1]);
                    self.program.instrs.push(Instr::Call2 {
                        f,
                        dst,
                        a: ra,
                        b: rb,
                    });
                }
                dst
            }
            DagNode::Cmp(op, a, b) => {
                let (ra, rb) = (self.compile_node(a), self.compile_node(b));
                let dst = self.fresh();
                self.program.instrs.push(Instr::Cmp {
                    op,
                    dst,
                    a: ra,
                    b: rb,
                });
                dst
            }
            DagNode::And(kids) => self.reduce(&kids, |dst, a, b| Instr::BoolAnd { dst, a, b }),
            DagNode::Or(kids) => self.reduce(&kids, |dst, a, b| Instr::BoolOr { dst, a, b }),
            DagNode::Not(a) => {
                let ra = self.compile_node(a);
                let dst = self.fresh();
                self.program.instrs.push(Instr::BoolNot { dst, a: ra });
                dst
            }
            DagNode::If(c, t, e) => {
                let rc = self.compile_node(c);
                let rt = self.compile_node(t);
                let re = self.compile_node(e);
                let dst = self.fresh();
                self.program.instrs.push(Instr::Select {
                    dst,
                    c: rc,
                    a: rt,
                    b: re,
                });
                dst
            }
        };
        self.finish(id, reg, cacheable)
    }

    fn finish(&mut self, id: NodeId, reg: u32, cacheable: bool) -> u32 {
        if cacheable {
            self.reg_of[id.index()] = Some(reg);
        }
        reg
    }

    fn reduce(&mut self, kids: &[NodeId], make: impl Fn(u32, u32, u32) -> Instr) -> u32 {
        let mut acc = self.compile_node(kids[0]);
        for &k in &kids[1..] {
            let rk = self.compile_node(k);
            let dst = self.fresh();
            self.program.instrs.push(make(dst, acc, rk));
            acc = dst;
        }
        acc
    }

    /// Compile `roots` and return the finished program.
    pub fn compile(mut self, roots: &[NodeId]) -> Program {
        for &r in roots {
            let reg = self.compile_node(r);
            self.program.outputs.push(reg);
        }
        self.program
    }
}

/// Convenience: compile a set of roots with the given variable resolution.
pub fn compile_roots(
    dag: &Dag,
    roots: &[NodeId],
    vars: &HashMap<Symbol, VarRef>,
    mode: CseMode,
) -> Program {
    Compiler::new(dag, vars, mode).compile(roots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::execute;
    use om_expr::{num, simplify, var};

    fn vars(pairs: &[(&str, VarRef)]) -> HashMap<Symbol, VarRef> {
        pairs.iter().map(|(n, v)| (Symbol::intern(n), *v)).collect()
    }

    fn run1(p: &Program, t: f64, y: &[f64]) -> f64 {
        let mut out = vec![0.0; p.outputs.len()];
        execute(p, t, y, &[], &mut out);
        out[0]
    }

    #[test]
    fn compiles_and_runs_arithmetic() {
        let mut dag = Dag::new();
        let e = simplify(&((var("x") + num(1.0)) * var("y")));
        let root = dag.import(&e);
        let v = vars(&[("x", VarRef::State(0)), ("y", VarRef::State(1))]);
        let p = compile_roots(&dag, &[root], &v, CseMode::PerTask);
        assert_eq!(run1(&p, 0.0, &[2.0, 4.0]), 12.0);
    }

    #[test]
    fn integer_powers_lower_to_powi() {
        let mut dag = Dag::new();
        let root = dag.import(&simplify(&var("x").powi(3)));
        let v = vars(&[("x", VarRef::State(0))]);
        let p = compile_roots(&dag, &[root], &v, CseMode::PerTask);
        assert!(p
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::PowI { n: 3, .. })));
        assert_eq!(run1(&p, 0.0, &[2.0]), 8.0);
        // Negative exponent.
        let mut dag = Dag::new();
        let root = dag.import(&simplify(&var("x").powi(-2)));
        let p = compile_roots(&dag, &[root], &v, CseMode::PerTask);
        assert_eq!(run1(&p, 0.0, &[2.0]), 0.25);
    }

    #[test]
    fn sharing_mode_compiles_shared_nodes_once() {
        let mut dag = Dag::new();
        let s = om_expr::expr::Expr::call1(Func::Sin, var("x"));
        let r1 = dag.import(&simplify(&(s.clone() + num(1.0))));
        let r2 = dag.import(&simplify(&(s.clone() + num(2.0))));
        let v = vars(&[("x", VarRef::State(0))]);
        let shared = compile_roots(&dag, &[r1, r2], &v, CseMode::PerTask);
        let unshared = compile_roots(&dag, &[r1, r2], &v, CseMode::Off);
        let count = |p: &Program| {
            p.instrs
                .iter()
                .filter(|i| matches!(i, Instr::Call1 { f: Func::Sin, .. }))
                .count()
        };
        assert_eq!(count(&shared), 1);
        assert_eq!(count(&unshared), 2);
        // Same results either way.
        let mut o1 = vec![0.0; 2];
        let mut o2 = vec![0.0; 2];
        execute(&shared, 0.0, &[0.5], &[], &mut o1);
        execute(&unshared, 0.0, &[0.5], &[], &mut o2);
        assert_eq!(o1, o2);
    }

    #[test]
    fn conditionals_select() {
        let mut dag = Dag::new();
        let e = om_expr::expr::Expr::ite(
            om_expr::expr::Expr::cmp(CmpOp::Gt, var("x"), num(0.0)),
            var("x") * num(2.0),
            var("x") * num(-3.0),
        );
        let root = dag.import(&simplify(&e));
        let v = vars(&[("x", VarRef::State(0))]);
        let p = compile_roots(&dag, &[root], &v, CseMode::PerTask);
        assert_eq!(run1(&p, 0.0, &[5.0]), 10.0);
        assert_eq!(run1(&p, 0.0, &[-1.0]), 3.0);
    }

    #[test]
    fn time_and_shared_inputs() {
        let mut dag = Dag::new();
        let e = simplify(&(var("t_builtin") + var("g")));
        let root = dag.import(&e);
        let v = vars(&[("t_builtin", VarRef::Time), ("g", VarRef::Shared(0))]);
        let p = compile_roots(&dag, &[root], &v, CseMode::PerTask);
        let mut out = vec![0.0];
        execute(&p, 2.5, &[], &[10.0], &mut out);
        assert_eq!(out[0], 12.5);
    }

    #[test]
    fn constants_are_pooled() {
        let mut dag = Dag::new();
        let e = simplify(&(var("x") * num(2.0) + var("y") * num(2.0) + num(2.0)));
        let root = dag.import(&e);
        let v = vars(&[("x", VarRef::State(0)), ("y", VarRef::State(1))]);
        let p = compile_roots(&dag, &[root], &v, CseMode::PerTask);
        assert_eq!(p.consts.iter().filter(|&&c| c == 2.0).count(), 1);
    }

    #[test]
    #[should_panic(expected = "unresolved variable")]
    fn unresolved_variable_panics() {
        let mut dag = Dag::new();
        let root = dag.import(&var("ghost"));
        let v = vars(&[]);
        compile_roots(&dag, &[root], &v, CseMode::PerTask);
    }
}
