//! C++ emitter.
//!
//! The ObjectMath generator could also produce C++ (paper Figure 8); this
//! emitter renders the same task bodies as `emit_fortran` into a
//! `void rhs(int worker_id, const double* yin, double* yout)` function
//! with a `switch` over workers.

use crate::emit_fortran::{mangle, render_task, target_name, Lang, SourceStats};
use crate::task::{OutTarget, SymbolicTask};
use om_expr::CostModel;
use om_ir::OdeIr;
use std::fmt::Write as _;

fn finish_stats(text: String, cse_count: usize) -> SourceStats {
    let total_lines = text.lines().count();
    let decl_lines = text
        .lines()
        .filter(|l| l.trim_start().starts_with("double "))
        .count();
    SourceStats {
        text,
        total_lines,
        decl_lines,
        cse_count,
    }
}

/// Emit the parallel SPMD RHS as C++.
pub fn emit_parallel(
    tasks: &[SymbolicTask],
    assignment: &[usize],
    m: usize,
    ir: &OdeIr,
    model: &CostModel,
) -> SourceStats {
    assert_eq!(tasks.len(), assignment.len());
    let state_index = ir.state_index();
    let mut out = String::new();
    let _ = writeln!(out, "#include <cmath>");
    let _ = writeln!(out, "namespace om {{ inline double sign(double x) {{ return x > 0.0 ? 1.0 : (x < 0.0 ? -1.0 : 0.0); }} }}");
    let _ = writeln!(
        out,
        "void rhs(int worker_id, const double* yin, double* yout) {{"
    );
    let _ = writeln!(out, "  switch (worker_id) {{");

    let mut cse_total = 0usize;
    let mut per_worker: Vec<Vec<String>> = vec![Vec::new(); m];
    for (t_idx, (task, &w)) in tasks.iter().zip(assignment).enumerate() {
        let rendered = render_task(task, model, Lang::Cpp, &format!("t{t_idx}_"));
        cse_total += rendered.cse_count;
        let mut body = String::new();
        for s in &rendered.read_states {
            if let Some(i) = state_index.get(s) {
                let _ = writeln!(body, "      double {} = yin[{i}];", mangle(*s));
            }
        }
        for (name, def) in &rendered.temps {
            let _ = writeln!(body, "      double {name} = {def};");
        }
        for (target, expr) in &rendered.outputs {
            let name = target_name(target, ir);
            let _ = writeln!(body, "      double {name} = {expr};");
            if let OutTarget::Deriv(i) = target {
                let _ = writeln!(body, "      yout[{i}] = {name};");
            }
        }
        per_worker[w].push(body);
    }
    for (w, bodies) in per_worker.iter().enumerate() {
        let _ = writeln!(out, "    case {w}: {{");
        for b in bodies {
            out.push_str(b);
        }
        let _ = writeln!(out, "      break;");
        let _ = writeln!(out, "    }}");
    }
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    finish_stats(out, cse_total)
}

/// Emit the serial RHS as C++ with global CSE.
pub fn emit_serial(ir: &OdeIr, model: &CostModel) -> SourceStats {
    let all = SymbolicTask {
        label: "serial".to_owned(),
        outputs: ir
            .inlined_rhs()
            .into_iter()
            .enumerate()
            .map(|(i, e)| (OutTarget::Deriv(i), e))
            .collect(),
        array_loop: None,
    };
    let rendered = render_task(&all, model, Lang::Cpp, "t");
    let state_index = ir.state_index();
    let mut out = String::new();
    let _ = writeln!(out, "#include <cmath>");
    let _ = writeln!(out, "namespace om {{ inline double sign(double x) {{ return x > 0.0 ? 1.0 : (x < 0.0 ? -1.0 : 0.0); }} }}");
    let _ = writeln!(out, "void rhs(const double* yin, double* yout) {{");
    for s in &rendered.read_states {
        if let Some(i) = state_index.get(s) {
            let _ = writeln!(out, "  double {} = yin[{i}];", mangle(*s));
        }
    }
    for (name, def) in &rendered.temps {
        let _ = writeln!(out, "  double {name} = {def};");
    }
    for (target, expr) in &rendered.outputs {
        let name = target_name(target, ir);
        let _ = writeln!(out, "  double {name} = {expr};");
        if let OutTarget::Deriv(i) = target {
            let _ = writeln!(out, "  yout[{i}] = {name};");
        }
    }
    let _ = writeln!(out, "}}");
    finish_stats(out, rendered.cse_count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::equation_tasks;
    use om_ir::causalize;

    fn oscillator() -> OdeIr {
        causalize(
            &om_lang::compile(
                "model Osc; Real x(start=1.0); Real y;
                 equation der(x) = y; der(y) = -x; end Osc;",
            )
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn emits_switch_over_workers() {
        let ir = oscillator();
        let model = CostModel::default();
        let tasks = equation_tasks(&ir, true);
        let src = emit_parallel(&tasks, &[0, 1], 2, &ir, &model);
        assert!(src.text.contains("void rhs(int worker_id"), "{}", src.text);
        assert!(src.text.contains("switch (worker_id)"));
        assert!(src.text.contains("case 0:"));
        assert!(src.text.contains("case 1:"));
        assert!(src.text.contains("yout[0] = xdot;"));
        assert!(src.text.contains("yout[1] = ydot;"));
    }

    #[test]
    fn serial_version_has_no_switch() {
        let ir = oscillator();
        let src = emit_serial(&ir, &CostModel::default());
        assert!(!src.text.contains("switch"));
        assert!(src.text.contains("yout[0] = xdot;"));
        assert!(src.decl_lines >= 4, "{}", src.text);
    }

    #[test]
    fn functions_use_std_namespace() {
        let ir = causalize(
            &om_lang::compile("model M; Real x; equation der(x) = sin(x) + x^2.5; end M;").unwrap(),
        )
        .unwrap();
        let src = emit_serial(&ir, &CostModel::default());
        assert!(src.text.contains("std::sin("), "{}", src.text);
        assert!(src.text.contains("std::pow("), "{}", src.text);
    }

    #[test]
    fn conditionals_render_as_ternaries() {
        let ir = causalize(
            &om_lang::compile(
                "model M; Real x;
                 equation der(x) = if x > 0.0 then x*x else 0.0; end M;",
            )
            .unwrap(),
        )
        .unwrap();
        let src = emit_serial(&ir, &CostModel::default());
        assert!(src.text.contains('?'), "{}", src.text);
    }
}
