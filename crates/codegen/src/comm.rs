//! Communication analysis (paper §3.2, Figure 9).
//!
//! "To minimize the amount of sent data, communication analysis is needed
//! to find out which data should be distributed." Given a task graph and
//! a schedule, this module computes per-worker message contents for the
//! supervisor↔worker exchange of each RHS evaluation:
//!
//! * **WholeState** — what the evaluated system actually did: "currently,
//!   every variable that might be used is passed to the worker
//!   processors, i.e. all variables in the state vector" (§3.2.3),
//! * **Composed** — the future-work optimization: send each worker only
//!   the state variables its tasks read.

use crate::task::{OutSlot, TaskGraph};
use std::collections::BTreeSet;

/// Message composition strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MessagePolicy {
    /// Broadcast the full state vector to every worker.
    WholeState,
    /// Send each worker exactly the states its tasks read.
    Composed,
}

/// Per-worker communication volumes for one RHS evaluation.
#[derive(Clone, Debug)]
pub struct CommPlan {
    /// For each worker: number of f64 values sent supervisor → worker.
    pub send_down: Vec<usize>,
    /// For each worker: number of f64 values sent worker → supervisor
    /// (derivative results).
    pub send_up: Vec<usize>,
    /// Number of f64 values exchanged worker ↔ worker for shared slots
    /// crossing worker boundaries.
    pub cross_worker: usize,
}

impl CommPlan {
    /// Total values moved per RHS call.
    pub fn total_values(&self) -> usize {
        self.send_down.iter().sum::<usize>()
            + self.send_up.iter().sum::<usize>()
            + self.cross_worker
    }
}

/// Analyze communication for `graph` under `assignment` (task → worker,
/// from the scheduler) with `m` workers.
pub fn analyze(
    graph: &TaskGraph,
    assignment: &[usize],
    m: usize,
    policy: MessagePolicy,
) -> CommPlan {
    assert_eq!(assignment.len(), graph.tasks.len());
    let mut reads: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); m];
    let mut derivs_out: Vec<usize> = vec![0; m];
    for (task, &w) in graph.tasks.iter().zip(assignment) {
        reads[w].extend(task.reads_states.iter().copied());
        derivs_out[w] += task
            .writes
            .iter()
            .filter(|s| matches!(s, OutSlot::Deriv(_)))
            .count();
    }

    // Shared slots whose writer and a reader live on different workers
    // must be transferred.
    let mut cross_worker = 0usize;
    for (task, &w) in graph.tasks.iter().zip(assignment) {
        for slot in &task.reads_shared {
            let writer = graph
                .tasks
                .iter()
                .position(|t| t.writes.contains(&OutSlot::Shared(*slot as usize)));
            if let Some(writer) = writer {
                if assignment[writer] != w {
                    cross_worker += 1;
                }
            }
        }
    }

    let send_down = match policy {
        MessagePolicy::WholeState => vec![graph.dim; m],
        MessagePolicy::Composed => reads.iter().map(BTreeSet::len).collect(),
    };
    CommPlan {
        send_down,
        send_up: derivs_out,
        cross_worker,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cse::CseMode;
    use crate::task::{compile_tasks, equation_tasks};
    use om_expr::CostModel;
    use om_ir::causalize;

    fn graph(src: &str, inline: bool) -> TaskGraph {
        let ir = causalize(&om_lang::compile(src).unwrap()).unwrap();
        compile_tasks(
            &equation_tasks(&ir, inline),
            &ir,
            CseMode::PerTask,
            &CostModel::default(),
        )
    }

    const SPARSE: &str = "model M;
        Real a; Real b; Real c; Real d;
        equation
          der(a) = -a;
          der(b) = -b;
          der(c) = -c;
          der(d) = -d;
        end M;";

    #[test]
    fn whole_state_broadcasts_dim_to_every_worker() {
        let g = graph(SPARSE, true);
        let assignment = vec![0, 1, 0, 1];
        let plan = analyze(&g, &assignment, 2, MessagePolicy::WholeState);
        assert_eq!(plan.send_down, vec![4, 4]);
        assert_eq!(plan.send_up, vec![2, 2]);
        assert_eq!(plan.cross_worker, 0);
    }

    #[test]
    fn composed_messages_shrink_with_sparsity() {
        let g = graph(SPARSE, true);
        let assignment = vec![0, 1, 0, 1];
        let plan = analyze(&g, &assignment, 2, MessagePolicy::Composed);
        // Each derivative reads exactly its own state.
        assert_eq!(plan.send_down, vec![2, 2]);
        let whole = analyze(&g, &assignment, 2, MessagePolicy::WholeState);
        assert!(plan.total_values() < whole.total_values());
    }

    #[test]
    fn cross_worker_shared_slots_are_counted() {
        let g = graph(
            "model M; Real x; Real v; Real f;
             equation der(x) = v; der(v) = f; f = -x - v;
             end M;",
            false,
        );
        // Put the f-producer and the dv-consumer on different workers.
        let f_id = g.tasks.iter().find(|t| t.label == "f").unwrap().id;
        let dv_id = g.tasks.iter().find(|t| t.label == "dv").unwrap().id;
        let mut assignment = vec![0; g.tasks.len()];
        assignment[f_id] = 0;
        assignment[dv_id] = 1;
        let plan = analyze(&g, &assignment, 2, MessagePolicy::WholeState);
        assert_eq!(plan.cross_worker, 1);
        // Same worker → no cross traffic.
        assignment[dv_id] = 0;
        let plan = analyze(&g, &assignment, 2, MessagePolicy::WholeState);
        assert_eq!(plan.cross_worker, 0);
    }
}
