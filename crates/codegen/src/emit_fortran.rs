//! Fortran 90 emitter.
//!
//! Reproduces the shape of the generated SPMD code in paper Figure 11:
//!
//! ```text
//! subroutine RHS(workerid, yin, yout)
//!   integer workerid
//!   real(double) yin(2), yout(2)
//!   ...
//!   select case (workerid)
//!   case (1)
//!     y = yin(2); xdot = y; yout(1) = xdot
//!   ...
//! ```
//!
//! Two entry points mirror §3.3's comparison: [`emit_parallel`] (per-task
//! CSE — "no subexpressions are shared between the tasks") and
//! [`emit_serial`] (global CSE over all right-hand sides). The returned
//! [`SourceStats`] feed the code-statistics experiment (E5).

use crate::cse::{self, CseProgram};
use crate::dag::{Dag, DagNode, NodeId};
use crate::task::{OutTarget, SymbolicTask};
use om_expr::expr::{CmpOp, Func};
use om_expr::{CostModel, Symbol};
use om_ir::OdeIr;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Emitted source text plus the metrics the paper reports.
#[derive(Clone, Debug)]
pub struct SourceStats {
    pub text: String,
    /// Total line count of the unit.
    pub total_lines: usize,
    /// Lines that are variable declarations (the paper: "4 709 lines are
    /// variable declarations").
    pub decl_lines: usize,
    /// Number of extracted common subexpressions.
    pub cse_count: usize,
}

/// Target language of the shared renderer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Lang {
    F90,
    Cpp,
}

/// Make a symbol printable as a Fortran/C identifier.
pub fn mangle(sym: Symbol) -> String {
    let mut out = String::with_capacity(sym.name().len());
    for ch in sym.name().chars() {
        match ch {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' => out.push(ch),
            '[' | ']' | '.' | '$' => out.push('_'),
            _ => out.push('_'),
        }
    }
    if out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, 'v');
    }
    out
}

pub(crate) fn fmt_const(v: f64, lang: Lang) -> String {
    let body = if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    };
    match lang {
        Lang::F90 => body.replace(['e', 'E'], "d") + if body.contains('d') { "" } else { "d0" },
        Lang::Cpp => body,
    }
}

/// Render a DAG node to source, substituting temporary names for CSE'd
/// children.
pub(crate) struct Renderer<'a> {
    pub dag: &'a Dag,
    pub temp_names: HashMap<NodeId, String>,
    pub lang: Lang,
}

impl Renderer<'_> {
    pub fn expr(&self, id: NodeId) -> String {
        self.render(id, 0, true)
    }

    /// Render ignoring a temp name at the root (used when *defining* the
    /// temp itself).
    pub fn expr_definition(&self, id: NodeId) -> String {
        self.render(id, 0, false)
    }

    fn render(&self, id: NodeId, parent_prec: u8, use_temp: bool) -> String {
        if use_temp {
            if let Some(name) = self.temp_names.get(&id) {
                return name.clone();
            }
        }
        let (text, prec) = self.render_raw(id);
        if prec < parent_prec {
            format!("({text})")
        } else {
            text
        }
    }

    fn render_raw(&self, id: NodeId) -> (String, u8) {
        const ADD: u8 = 1;
        const MUL: u8 = 2;
        const POW: u8 = 3;
        const ATOM: u8 = 4;
        match self.dag.node(id) {
            DagNode::Const(bits) => {
                let v = f64::from_bits(*bits);
                let s = fmt_const(v, self.lang);
                if v < 0.0 {
                    (s, ADD)
                } else {
                    (s, ATOM)
                }
            }
            DagNode::Var(s) => (mangle(*s), ATOM),
            DagNode::Add(kids) => {
                let mut out = String::new();
                for (i, &k) in kids.iter().enumerate() {
                    let piece = self.render(k, ADD, true);
                    if i > 0 {
                        if let Some(stripped) = piece.strip_prefix('-') {
                            let _ = write!(out, " - {stripped}");
                            continue;
                        }
                        out.push_str(" + ");
                    }
                    out.push_str(&piece);
                }
                (out, ADD)
            }
            DagNode::Mul(kids) => {
                // A leading negative constant renders as a prefix minus:
                // `-x`, `-2.0d0*x` — matching hand-written code.
                let mut out = String::new();
                let mut rest = &kids[..];
                if let DagNode::Const(bits) = self.dag.node(kids[0]) {
                    let c = f64::from_bits(*bits);
                    if c < 0.0 && kids.len() > 1 && !self.temp_names.contains_key(&kids[0]) {
                        out.push('-');
                        if c != -1.0 {
                            out.push_str(&fmt_const(-c, self.lang));
                            out.push('*');
                        }
                        rest = &kids[1..];
                    }
                }
                for (i, &k) in rest.iter().enumerate() {
                    if i > 0 {
                        out.push('*');
                    }
                    out.push_str(&self.render(k, MUL + 1, true));
                }
                let prec = if out.starts_with('-') { ADD } else { MUL };
                (out, prec)
            }
            DagNode::Pow(a, b) => {
                let base = self.render(*a, ATOM, true);
                // Small integer powers render as repeated multiplication
                // (both targets), like the real generator.
                if let DagNode::Const(bits) = self.dag.node(*b) {
                    let c = f64::from_bits(*bits);
                    if c.fract() == 0.0 && (2.0..=4.0).contains(&c.abs()) {
                        let reps = vec![base.clone(); c.abs() as usize].join("*");
                        if c < 0.0 {
                            return (format!("{}/({reps})", fmt_const(1.0, self.lang)), MUL);
                        }
                        return (reps, MUL);
                    }
                    if c == -1.0 {
                        return (format!("{}/{base}", fmt_const(1.0, self.lang)), MUL);
                    }
                    if c == 0.5 {
                        let f = if self.lang == Lang::F90 {
                            "sqrt"
                        } else {
                            "std::sqrt"
                        };
                        return (format!("{f}({})", self.render(*a, 0, true)), ATOM);
                    }
                }
                let exp = self.render(*b, POW, true);
                match self.lang {
                    Lang::F90 => (format!("{base}**{exp}"), POW),
                    Lang::Cpp => (
                        format!(
                            "std::pow({}, {})",
                            self.render(*a, 0, true),
                            self.render(*b, 0, true)
                        ),
                        ATOM,
                    ),
                }
            }
            DagNode::Call(f, kids) => {
                let name = match (self.lang, f) {
                    (Lang::F90, Func::Ln) => "log".to_owned(),
                    (Lang::F90, _) => f.name().to_owned(),
                    (Lang::Cpp, Func::Sign) => "om::sign".to_owned(),
                    (Lang::Cpp, Func::Min) => "std::fmin".to_owned(),
                    (Lang::Cpp, Func::Max) => "std::fmax".to_owned(),
                    (Lang::Cpp, _) => format!("std::{}", f.name()),
                };
                let args: Vec<String> = kids.iter().map(|&k| self.render(k, 0, true)).collect();
                (format!("{name}({})", args.join(", ")), ATOM)
            }
            DagNode::Cmp(op, a, b) => {
                let (l, r) = (self.render(*a, ADD, true), self.render(*b, ADD, true));
                let o = match (self.lang, op) {
                    (Lang::F90, CmpOp::Ne) => "/=".to_owned(),
                    (Lang::F90, CmpOp::EqCmp) => "==".to_owned(),
                    (_, op) => op.name().to_owned(),
                };
                (format!("({l} {o} {r})"), ATOM)
            }
            DagNode::And(kids) => (self.join_bool(kids, " .and. ", " && "), ATOM),
            DagNode::Or(kids) => (self.join_bool(kids, " .or. ", " || "), ATOM),
            DagNode::Not(a) => {
                let inner = self.render(*a, ATOM, true);
                match self.lang {
                    Lang::F90 => (format!("(.not. {inner})"), ATOM),
                    Lang::Cpp => (format!("(!{inner})"), ATOM),
                }
            }
            DagNode::If(c, t, e) => {
                let cc = self.render(*c, 0, true);
                let tt = self.render(*t, 0, true);
                let ee = self.render(*e, 0, true);
                match self.lang {
                    Lang::F90 => (format!("merge({tt}, {ee}, {cc})"), ATOM),
                    Lang::Cpp => (format!("({cc} ? {tt} : {ee})"), ATOM),
                }
            }
        }
    }

    fn join_bool(&self, kids: &[NodeId], f90: &str, cpp: &str) -> String {
        let sep = if self.lang == Lang::F90 { f90 } else { cpp };
        let parts: Vec<String> = kids.iter().map(|&k| self.render(k, 0, true)).collect();
        format!("({})", parts.join(sep))
    }
}

/// Build the per-task rendering pieces: CSE temp assignments plus output
/// assignments.
pub(crate) struct RenderedTask {
    /// `(name, definition)` pairs in evaluation order.
    pub temps: Vec<(String, String)>,
    /// `(target name, expression)` assignments.
    pub outputs: Vec<(OutTarget, String)>,
    /// Mangled names of state variables this task reads.
    pub read_states: Vec<Symbol>,
    pub cse_count: usize,
}

pub(crate) fn render_task(
    task: &SymbolicTask,
    model: &CostModel,
    lang: Lang,
    temp_prefix: &str,
) -> RenderedTask {
    let mut dag = Dag::new();
    let roots: Vec<NodeId> = task
        .outputs
        .iter()
        .map(|(_, e)| {
            let r = dag.import(e);
            dag.mark_root(r);
            r
        })
        .collect();
    let cse: CseProgram = cse::eliminate(&dag, &roots, model);
    let temp_names: HashMap<NodeId, String> = cse
        .temps
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, format!("{temp_prefix}{i}")))
        .collect();
    let renderer = Renderer {
        dag: &dag,
        temp_names,
        lang,
    };
    let temps: Vec<(String, String)> = cse
        .temps
        .iter()
        .map(|&id| {
            (
                renderer.temp_names[&id].clone(),
                renderer.expr_definition(id),
            )
        })
        .collect();
    let outputs: Vec<(OutTarget, String)> = task
        .outputs
        .iter()
        .zip(&roots)
        .map(|((target, _), &root)| (target.clone(), renderer.expr(root)))
        .collect();
    let read_states = dag.free_vars(&roots);
    RenderedTask {
        temps,
        outputs,
        read_states,
        cse_count: cse.cse_count(),
    }
}

fn finish_stats(text: String, cse_count: usize) -> SourceStats {
    let total_lines = text.lines().count();
    let decl_lines = text
        .lines()
        .filter(|l| {
            let t = l.trim_start();
            t.starts_with("real(double)") || t.starts_with("integer")
        })
        .count();
    SourceStats {
        text,
        total_lines,
        decl_lines,
        cse_count,
    }
}

/// Emit the parallel `RHS(workerid, yin, yout)` subroutine: one `case`
/// per worker, per-task CSE.
pub fn emit_parallel(
    tasks: &[SymbolicTask],
    assignment: &[usize],
    m: usize,
    ir: &OdeIr,
    model: &CostModel,
) -> SourceStats {
    assert_eq!(tasks.len(), assignment.len());
    let dim = ir.dim();
    let state_index = ir.state_index();
    let mut out = String::new();
    let _ = writeln!(out, "subroutine RHS(workerid, yin, yout)");
    let _ = writeln!(out, "  integer workerid");
    let _ = writeln!(out, "  real(double) yin({dim}), yout({dim})");

    // Render everything first so declarations can be collected.
    let mut per_worker: Vec<Vec<RenderedTask>> = (0..m).map(|_| Vec::new()).collect();
    let mut cse_total = 0usize;
    for (temp_counter, (task, &w)) in tasks.iter().zip(assignment).enumerate() {
        let rendered = render_task(task, model, Lang::F90, &format!("t{temp_counter}_"));
        cse_total += rendered.cse_count;
        per_worker[w].push(rendered);
    }

    // Declarations: all state copies, derivative temporaries, shared
    // values, and CSE temps.
    let mut declared: Vec<String> = Vec::new();
    for worker in &per_worker {
        for t in worker {
            for s in &t.read_states {
                if state_index.contains_key(s) {
                    declared.push(mangle(*s));
                }
            }
            for (name, _) in &t.temps {
                declared.push(name.clone());
            }
            for (target, _) in &t.outputs {
                declared.push(target_name(target, ir));
            }
        }
    }
    declared.sort();
    declared.dedup();
    for name in &declared {
        let _ = writeln!(out, "  real(double) {name}");
    }

    let _ = writeln!(out, "  select case (workerid)");
    for (w, worker_tasks) in per_worker.iter().enumerate() {
        let _ = writeln!(out, "  case ({})", w + 1);
        for t in worker_tasks {
            for s in &t.read_states {
                if let Some(i) = state_index.get(s) {
                    let _ = writeln!(out, "    {} = yin({})", mangle(*s), i + 1);
                }
            }
            for (name, def) in &t.temps {
                let _ = writeln!(out, "    {name} = {def}");
            }
            for (target, expr) in &t.outputs {
                let name = target_name(target, ir);
                let _ = writeln!(out, "    {name} = {expr}");
                if let OutTarget::Deriv(i) = target {
                    let _ = writeln!(out, "    yout({}) = {name}", i + 1);
                }
            }
        }
    }
    let _ = writeln!(out, "  end select");
    let _ = writeln!(out, "end subroutine");
    finish_stats(out, cse_total)
}

/// Emit the serial RHS: a single body with *global* CSE over every
/// right-hand side together ("allowing the CSE-eliminator to optimize all
/// equation right-hand sides together", §3.3).
pub fn emit_serial(ir: &OdeIr, model: &CostModel) -> SourceStats {
    let dim = ir.dim();
    // One synthetic task holding all inlined right-hand sides: global CSE.
    let all = SymbolicTask {
        label: "serial".to_owned(),
        outputs: ir
            .inlined_rhs()
            .into_iter()
            .enumerate()
            .map(|(i, e)| (OutTarget::Deriv(i), e))
            .collect(),
        array_loop: None,
    };
    let rendered = render_task(&all, model, Lang::F90, "t");
    let state_index = ir.state_index();

    let mut out = String::new();
    let _ = writeln!(out, "subroutine RHS(yin, yout)");
    let _ = writeln!(out, "  real(double) yin({dim}), yout({dim})");
    let mut declared: Vec<String> = rendered
        .read_states
        .iter()
        .filter(|s| state_index.contains_key(s))
        .map(|s| mangle(*s))
        .chain(rendered.temps.iter().map(|(n, _)| n.clone()))
        .chain(rendered.outputs.iter().map(|(t, _)| target_name(t, ir)))
        .collect();
    declared.sort();
    declared.dedup();
    for name in &declared {
        let _ = writeln!(out, "  real(double) {name}");
    }
    for s in &rendered.read_states {
        if let Some(i) = state_index.get(s) {
            let _ = writeln!(out, "  {} = yin({})", mangle(*s), i + 1);
        }
    }
    for (name, def) in &rendered.temps {
        let _ = writeln!(out, "  {name} = {def}");
    }
    for (target, expr) in &rendered.outputs {
        let name = target_name(target, ir);
        let _ = writeln!(out, "  {name} = {expr}");
        if let OutTarget::Deriv(i) = target {
            let _ = writeln!(out, "  yout({}) = {name}", i + 1);
        }
    }
    let _ = writeln!(out, "end subroutine");
    finish_stats(out, rendered.cse_count)
}

pub(crate) fn target_name(target: &OutTarget, ir: &OdeIr) -> String {
    match target {
        OutTarget::Deriv(i) => format!("{}dot", mangle(ir.states[*i].sym)),
        OutTarget::Shared(s) => mangle(*s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::lpt;
    use crate::task::equation_tasks;
    use om_ir::causalize;

    fn oscillator() -> OdeIr {
        causalize(
            &om_lang::compile(
                "model Osc; Real x(start=1.0); Real y;
                 equation der(x) = y; der(y) = -x; end Osc;",
            )
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn figure_11_shape() {
        let ir = oscillator();
        let model = CostModel::default();
        let tasks = equation_tasks(&ir, true);
        let costs: Vec<u64> = tasks.iter().map(|t| t.cost(&model)).collect();
        let sched = lpt(&costs, 2);
        let src = emit_parallel(&tasks, &sched.assignment, 2, &ir, &model);
        let text = &src.text;
        assert!(
            text.contains("subroutine RHS(workerid, yin, yout)"),
            "{text}"
        );
        assert!(text.contains("integer workerid"));
        assert!(text.contains("real(double) yin(2), yout(2)"));
        assert!(text.contains("select case (workerid)"));
        assert!(text.contains("case (1)"));
        assert!(text.contains("case (2)"));
        assert!(text.contains("xdot"), "{text}");
        assert!(text.contains("ydot"), "{text}");
        assert!(text.contains("yout(1) = xdot"));
        assert!(text.contains("yout(2) = ydot"));
        assert!(text.contains("end subroutine"));
    }

    #[test]
    fn negated_state_renders_as_minus() {
        let ir = oscillator();
        let model = CostModel::default();
        let tasks = equation_tasks(&ir, true);
        let src = emit_parallel(&tasks, &[0, 1], 2, &ir, &model);
        assert!(
            src.text.contains("ydot = -x") || src.text.contains("ydot = -1.0d0*x"),
            "{}",
            src.text
        );
    }

    #[test]
    fn stats_count_declarations() {
        let ir = oscillator();
        let model = CostModel::default();
        let tasks = equation_tasks(&ir, true);
        let src = emit_parallel(&tasks, &[0, 1], 2, &ir, &model);
        assert!(src.decl_lines >= 4, "{}", src.text); // x, y, xdot, ydot + headers
        assert_eq!(src.total_lines, src.text.lines().count());
    }

    #[test]
    fn serial_emitter_uses_global_cse() {
        // Shared expensive subexpression across two equations: global CSE
        // extracts it once, per-task CSE cannot.
        let ir = causalize(
            &om_lang::compile(
                "model M; Real x; Real y;
                 equation
                   der(x) = exp(sin(x) + cos(x)) * 2.0;
                   der(y) = exp(sin(x) + cos(x)) * 3.0;
                 end M;",
            )
            .unwrap(),
        )
        .unwrap();
        let model = CostModel::default();
        let serial = emit_serial(&ir, &model);
        let tasks = equation_tasks(&ir, true);
        let parallel = emit_parallel(&tasks, &[0, 1], 2, &ir, &model);
        assert!(serial.cse_count >= 1, "{}", serial.text);
        assert_eq!(parallel.cse_count, 0, "{}", parallel.text);
        // The duplicated exp(...) makes the parallel text longer per
        // equation.
        assert_eq!(parallel.text.matches("exp(").count(), 2);
        assert_eq!(serial.text.matches("exp(").count(), 1);
    }

    #[test]
    fn mangle_qualified_names() {
        assert_eq!(mangle(Symbol::intern("w[3].x")), "w_3__x");
        assert_eq!(mangle(Symbol::intern("om$cse$0")), "om_cse_0");
        assert_eq!(mangle(Symbol::intern("x")), "x");
    }

    #[test]
    fn constants_use_d_exponents() {
        assert_eq!(fmt_const(1.0, Lang::F90), "1.0d0");
        assert_eq!(fmt_const(2.5e-3, Lang::F90), "0.0025d0");
        assert_eq!(fmt_const(1.0, Lang::Cpp), "1.0");
    }
}
