//! Static task scheduling.
//!
//! "As the scheduler has the predicted execution time of each task and
//! all tasks are currently independent of each other, it can use the very
//! simple largest-processing-time (LPT) scheduling algorithm to construct
//! an efficient schedule" (paper §3.2.3, citing Coffman & Denning).
//!
//! [`lpt`] implements that algorithm for independent tasks; LPT is a
//! 4/3 − 1/(3m) approximation of the optimal makespan. For task graphs
//! with dependencies (the split/shared extensions), [`list_schedule`]
//! runs LPT-priority list scheduling.

/// A schedule: assignment of tasks to workers plus derived metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct Schedule {
    /// `assignment[task] = worker index`.
    pub assignment: Vec<usize>,
    /// Total load per worker.
    pub loads: Vec<u64>,
    /// Maximum load (predicted parallel time ignoring communication).
    pub makespan: u64,
}

impl Schedule {
    /// Tasks assigned to each worker, preserving priority order.
    pub fn per_worker(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.loads.len()];
        for (task, &w) in self.assignment.iter().enumerate() {
            out[w].push(task);
        }
        out
    }

    /// Load imbalance: makespan / (total / m). 1.0 is perfect.
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.loads.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let ideal = total as f64 / self.loads.len() as f64;
        self.makespan as f64 / ideal
    }
}

/// Largest-processing-time scheduling of independent tasks onto `m`
/// workers: sort by cost descending, place each task on the currently
/// least-loaded worker. Makespan is within (4/3 − 1/3m) of optimal
/// (Graham 1969); `crates/codegen/tests/lpt_props.rs` checks the bound
/// against a brute-force optimum.
///
/// ```
/// let sched = om_codegen::lpt(&[3, 3, 2, 2, 2], 2);
/// assert_eq!(sched.makespan, 7); // OPT is 6: Graham's tight example
/// assert_eq!(sched.loads.iter().sum::<u64>(), 12);
/// ```
pub fn lpt(costs: &[u64], m: usize) -> Schedule {
    assert!(m > 0, "need at least one worker");
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(costs[i]));
    let mut loads = vec![0u64; m];
    let mut assignment = vec![0usize; costs.len()];
    for &task in &order {
        // Least-loaded worker; ties broken by lowest index for
        // determinism. A binary heap would be O(n log m); linear scan is
        // plenty for task counts in the hundreds and keeps ties stable.
        let w = (0..m).min_by_key(|&w| (loads[w], w)).expect("m > 0");
        assignment[task] = w;
        loads[w] += costs[task];
    }
    let makespan = loads.iter().copied().max().unwrap_or(0);
    Schedule {
        assignment,
        loads,
        makespan,
    }
}

/// LPT-priority list scheduling for dependent tasks.
///
/// `deps[i]` lists predecessors of task `i`. Workers become free at their
/// current finish time; among ready tasks, the most expensive is placed
/// on the earliest-free worker. Returns the schedule; `makespan` accounts
/// for idle time caused by dependencies (but not communication — the
/// machine model in `om-runtime` adds that).
pub fn list_schedule(costs: &[u64], deps: &[Vec<usize>], m: usize) -> Schedule {
    assert!(m > 0, "need at least one worker");
    let n = costs.len();
    let mut indegree: Vec<usize> = deps.iter().map(Vec::len).collect();
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, ds) in deps.iter().enumerate() {
        for &d in ds {
            dependents[d].push(i);
        }
    }
    let mut finish_time = vec![0u64; n];
    let mut avail = vec![0u64; n]; // earliest start permitted by deps
    let mut worker_free = vec![0u64; m];
    let mut loads = vec![0u64; m];
    let mut assignment = vec![0usize; n];
    let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut scheduled = 0usize;
    while scheduled < n {
        assert!(!ready.is_empty(), "dependency cycle in task graph");
        // Earliest-free worker.
        let w = (0..m).min_by_key(|&w| (worker_free[w], w)).expect("m > 0");
        // Among ready tasks, pick the one that can start earliest on `w`;
        // break ties by LPT priority (largest cost), then by index.
        let (pos, &task) = ready
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| (worker_free[w].max(avail[t]), std::cmp::Reverse(costs[t]), t))
            .expect("ready nonempty");
        ready.swap_remove(pos);
        let start = worker_free[w].max(avail[task]);
        let end = start + costs[task];
        worker_free[w] = end;
        finish_time[task] = end;
        loads[w] += costs[task];
        assignment[task] = w;
        scheduled += 1;
        for &dep in &dependents[task] {
            indegree[dep] -= 1;
            avail[dep] = avail[dep].max(end);
            if indegree[dep] == 0 {
                ready.push(dep);
            }
        }
    }
    let makespan = finish_time.iter().copied().max().unwrap_or(0);
    Schedule {
        assignment,
        loads,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpt_classic_example() {
        // Costs {7, 6, 5, 4, 3, 2} on 2 workers: LPT gives 14 vs optimal 14.
        let s = lpt(&[7, 6, 5, 4, 3, 2], 2);
        assert_eq!(s.loads.iter().sum::<u64>(), 27);
        assert_eq!(s.makespan, 14);
    }

    #[test]
    fn lpt_single_worker_serializes() {
        let s = lpt(&[5, 3, 2], 1);
        assert_eq!(s.makespan, 10);
        assert!(s.assignment.iter().all(|&w| w == 0));
    }

    #[test]
    fn lpt_more_workers_than_tasks() {
        let s = lpt(&[5, 3], 4);
        assert_eq!(s.makespan, 5);
        assert_eq!(s.loads.iter().filter(|&&l| l > 0).count(), 2);
    }

    #[test]
    fn lpt_is_deterministic() {
        let costs = [3, 3, 3, 3];
        assert_eq!(lpt(&costs, 2), lpt(&costs, 2));
    }

    #[test]
    fn lpt_approximation_bound() {
        // Graham's greedy bound: makespan ≤ total/m + (1 − 1/m)·max_cost;
        // LPT's 4/3 guarantee is relative to (unknown) OPT, so the
        // provable check here is the greedy bound plus the trivial lower
        // bound.
        let cases: Vec<(Vec<u64>, usize)> = vec![
            (vec![10, 9, 8, 7, 6, 5, 4, 3, 2, 1], 3),
            (vec![100, 1, 1, 1, 1, 1], 2),
            (vec![5, 5, 4, 4, 3, 3], 2),
            (vec![2, 2, 2], 5),
        ];
        for (costs, m) in cases {
            let s = lpt(&costs, m);
            let total: u64 = costs.iter().sum();
            let cmax = costs.iter().copied().max().unwrap();
            let lower = (total.div_ceil(m as u64)).max(cmax);
            let graham = total as f64 / m as f64 + (1.0 - 1.0 / m as f64) * cmax as f64;
            assert!(
                s.makespan as f64 <= graham + 1e-9,
                "makespan {} exceeds Graham bound {graham}",
                s.makespan
            );
            assert!(s.makespan >= lower);
        }
    }

    #[test]
    fn list_schedule_without_deps_matches_lpt_makespan_class() {
        let costs = [7, 6, 5, 4, 3, 2];
        let deps: Vec<Vec<usize>> = vec![Vec::new(); costs.len()];
        let s = list_schedule(&costs, &deps, 2);
        assert_eq!(s.makespan, 14);
    }

    #[test]
    fn list_schedule_respects_dependencies() {
        // chain 0 → 1 → 2 (1 depends on 0, 2 on 1): strictly serial even
        // with many workers.
        let costs = [4, 4, 4];
        let deps = vec![vec![], vec![0], vec![1]];
        let s = list_schedule(&costs, &deps, 4);
        assert_eq!(s.makespan, 12);
    }

    #[test]
    fn list_schedule_overlaps_independent_chains() {
        // Two independent 2-chains on 2 workers: makespan 8, not 16.
        let costs = [4, 4, 4, 4];
        let deps = vec![vec![], vec![0], vec![], vec![2]];
        let s = list_schedule(&costs, &deps, 2);
        assert_eq!(s.makespan, 8);
    }

    #[test]
    fn diamond_dependency() {
        //   0
        //  / \
        // 1   2
        //  \ /
        //   3
        let costs = [2, 3, 3, 2];
        let deps = vec![vec![], vec![0], vec![0], vec![1, 2]];
        let s = list_schedule(&costs, &deps, 2);
        // 0 (2) then 1∥2 (3) then 3 (2) = 7.
        assert_eq!(s.makespan, 7);
    }

    #[test]
    fn imbalance_metric() {
        let s = lpt(&[4, 4], 2);
        assert!((s.imbalance() - 1.0).abs() < 1e-12);
        let s = lpt(&[8, 1], 2);
        assert!(s.imbalance() > 1.5);
    }

    #[test]
    #[should_panic(expected = "dependency cycle")]
    fn cyclic_deps_panic() {
        let costs = [1, 1];
        let deps = vec![vec![1], vec![0]];
        list_schedule(&costs, &deps, 1);
    }
}
