//! Task partitioning (paper §3.2).
//!
//! "The parallelization stage of the code generator groups all small
//! assignments into one task and splits large assignments obtained from
//! the equations into several tasks for computation. The dependence
//! relation between the tasks determines the communication between them.
//! This forms a directed acyclic graph which is the input to the
//! scheduler."
//!
//! Pipeline implemented here:
//!
//! 1. [`equation_tasks`] — one task per derivative equation. In *inline*
//!    mode every algebraic variable is substituted into its consumers, so
//!    tasks are fully independent (the configuration the paper evaluates).
//!    In *shared* mode algebraic assignments become tasks of their own
//!    whose results flow to consumers, introducing dependencies.
//! 2. [`split_large`] — a task whose right-hand side is a big top-level
//!    sum is split into partial-sum producer tasks plus a cheap combine
//!    task.
//! 3. [`merge_small`] — independent tasks cheaper than the merge
//!    threshold are grouped ("groups all small assignments into one
//!    task").
//! 4. [`extract_shared_cse`] — the paper's future-work optimization
//!    (§3.3): large subexpressions common to *different* tasks are
//!    extracted into producer tasks so the work is done once and
//!    communicated, instead of re-done per task.
//! 5. [`compile_tasks`] — compile every task body to bytecode, resolve
//!    reads/writes, and derive the dependence edges.

use crate::bytecode::{compile_roots, Program, VarRef};
use crate::cse::{self, CseMode};
use crate::dag::Dag;
use om_expr::expr::Expr;
use om_expr::{simplify, substitute_map, CostModel, Symbol};
use om_ir::OdeIr;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Where a task output lands.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OutSlot {
    /// Derivative slot `i` of the state vector.
    Deriv(usize),
    /// Shared intermediate value slot (consumed by other tasks).
    Shared(usize),
}

/// A task before compilation: labeled outputs with symbolic bodies.
#[derive(Clone, Debug)]
pub struct SymbolicTask {
    pub label: String,
    pub outputs: Vec<(OutTarget, Expr)>,
    /// When set, this is an *array-loop task*: `outputs` holds the single
    /// class-representative body, executed once per iteration with the
    /// varying state reads and the output slot renumbered per
    /// [`SymLoop`]. The partitioning passes leave loop tasks untouched.
    pub array_loop: Option<SymLoop>,
}

/// Symbolic loop payload of an array-loop task (one chunk of an
/// [`om_lang::EqClass`]'s index range).
#[derive(Clone, Debug)]
pub struct SymLoop {
    /// Derivative slot written per iteration.
    pub out_slots: Vec<u32>,
    /// For each varying symbol of the representative body: the state slot
    /// it reads per iteration (each `Vec<u32>` is parallel to
    /// `out_slots`).
    pub rows: Vec<(Symbol, Vec<u32>)>,
}

impl SymLoop {
    /// Trip count of the loop.
    pub fn count(&self) -> usize {
        self.out_slots.len()
    }
}

/// Symbolic output target (shared slots are still symbols here; they are
/// numbered by [`compile_tasks`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OutTarget {
    Deriv(usize),
    Shared(Symbol),
}

impl SymbolicTask {
    /// Static cost of the task body (with intra-task sharing).
    pub fn cost(&self, model: &CostModel) -> u64 {
        let mut dag = Dag::new();
        let roots: Vec<_> = self
            .outputs
            .iter()
            .map(|(_, e)| {
                let r = dag.import(e);
                dag.mark_root(r);
                r
            })
            .collect();
        dag.shared_cost(&roots, model)
    }
}

/// Compiled loop payload: the task's single program runs `count()` times,
/// with the listed `State` load instructions repointed before each
/// iteration.
#[derive(Clone, Debug)]
pub struct LoopInfo {
    /// For each patched instruction: its index in `program.instrs` and
    /// the state slot it must load at each iteration.
    pub patches: Vec<(u32, Vec<u32>)>,
    /// Trip count (equals `writes.len() / program.outputs.len()`).
    pub count: u32,
    /// Symbolic summary of the derivative slots written per iteration
    /// (`base + stride·k` for affine rows), recognized from the
    /// enumerated write vector at compile time so analyses can reason
    /// about the loop in O(1) instead of O(count).
    pub out_pattern: om_analysis::Pattern,
    /// Symbolic summaries of the per-iteration state reads, one per
    /// patched load, parallel to `patches`.
    pub read_patterns: Vec<om_analysis::Pattern>,
}

/// A compiled task ready for the runtime.
#[derive(Clone, Debug)]
pub struct CompiledTask {
    pub id: usize,
    pub label: String,
    pub program: Program,
    /// One slot per produced value, in order. For loop tasks this is
    /// fully enumerated iteration-major (`count × program outputs`), so
    /// dependence, race, and coverage analyses stay exact without
    /// understanding loops.
    pub writes: Vec<OutSlot>,
    /// Loop payload for array-loop tasks; `None` for plain tasks.
    pub loop_info: Option<LoopInfo>,
    /// State indices the task reads.
    pub reads_states: Vec<u32>,
    /// Shared slots the task reads.
    pub reads_shared: Vec<u32>,
    /// Whether the task reads the free variable `t`.
    pub reads_time: bool,
    /// Static cost estimate (flops) used to seed the LPT schedule.
    pub static_cost: u64,
    /// Common subexpressions extracted within this task (statistics).
    pub cse_count: usize,
}

impl CompiledTask {
    /// Number of values the task produces (loop tasks produce one set of
    /// program outputs per iteration).
    pub fn n_out(&self) -> usize {
        self.writes.len()
    }

    /// Symbolic access summary of an array-loop task, e.g.
    /// `writes deriv[8 + 1·k (k < 2048)]; reads y[7 + 1·k (k < 2048)], …`.
    /// `None` for plain tasks (their access sets are already explicit).
    pub fn access_summary(&self) -> Option<String> {
        let li = self.loop_info.as_ref()?;
        let reads: Vec<String> = li
            .read_patterns
            .iter()
            .map(|p| format!("y[{}]", p.render()))
            .collect();
        Some(format!(
            "writes deriv[{}]{}{}",
            li.out_pattern.render(),
            if reads.is_empty() { "" } else { "; reads " },
            reads.join(", ")
        ))
    }

    /// Execute the task into `out` (length `n_out()`), reusing a
    /// caller-provided register file and a program scratch buffer. Plain
    /// tasks run their program once; loop tasks clone the program into
    /// `prog_scratch`, then repoint the patched `State` loads and run it
    /// once per iteration. Each iteration performs exactly the operation
    /// sequence the fully scalarized oracle would, so results are bitwise
    /// identical to per-element tasks.
    pub fn run_with_regs(
        &self,
        t: f64,
        y: &[f64],
        shared: &[f64],
        out: &mut [f64],
        regs: &mut [f64],
        prog_scratch: &mut Program,
    ) {
        match &self.loop_info {
            None => crate::vm::execute_with_regs(&self.program, t, y, shared, out, regs),
            Some(li) => {
                prog_scratch.clone_from(&self.program);
                let n = self.program.outputs.len();
                for k in 0..li.count as usize {
                    for (instr, slots) in &li.patches {
                        prog_scratch.patch_state(*instr as usize, slots[k]);
                    }
                    crate::vm::execute_with_regs(
                        prog_scratch,
                        t,
                        y,
                        shared,
                        &mut out[k * n..(k + 1) * n],
                        regs,
                    );
                }
            }
        }
    }

    /// Batched (structure-of-arrays) counterpart of
    /// [`CompiledTask::run_with_regs`]: `out` holds `n_out() × lanes`
    /// values, lane index innermost.
    #[allow(clippy::too_many_arguments)]
    pub fn run_batch_with_regs(
        &self,
        t: f64,
        ys: &[f64],
        shared: &[f64],
        out: &mut [f64],
        regs: &mut [f64],
        lanes: usize,
        prog_scratch: &mut Program,
    ) {
        match &self.loop_info {
            None => {
                crate::vm::execute_batch_with_regs(&self.program, t, ys, shared, out, regs, lanes)
            }
            Some(li) => {
                prog_scratch.clone_from(&self.program);
                let n = self.program.outputs.len();
                for k in 0..li.count as usize {
                    for (instr, slots) in &li.patches {
                        prog_scratch.patch_state(*instr as usize, slots[k]);
                    }
                    crate::vm::execute_batch_with_regs(
                        prog_scratch,
                        t,
                        ys,
                        shared,
                        &mut out[k * n * lanes..(k + 1) * n * lanes],
                        regs,
                        lanes,
                    );
                }
            }
        }
    }
}

/// The compiled task graph: tasks plus dependence edges.
#[derive(Clone, Debug)]
pub struct TaskGraph {
    /// ODE dimension (number of derivative slots).
    pub dim: usize,
    /// Number of shared intermediate slots.
    pub n_shared: usize,
    pub tasks: Vec<CompiledTask>,
    /// `deps[i]` — tasks that must complete before task `i` runs.
    pub deps: Vec<Vec<usize>>,
}

impl TaskGraph {
    /// True when no task depends on another (the paper's evaluated
    /// configuration: "all tasks are currently independent of each
    /// other").
    pub fn is_independent(&self) -> bool {
        self.deps.iter().all(Vec::is_empty)
    }

    /// Total static cost of all tasks.
    pub fn total_cost(&self) -> u64 {
        self.tasks.iter().map(|t| t.static_cost).sum()
    }

    /// Group task ids by dependency level: a task's level is the longest
    /// dependency path below it, so level 0 tasks have no deps and every
    /// task's deps live in strictly earlier levels.
    ///
    /// These are exactly the barrier-separated waves the parallel runtime
    /// executes, and the granularity at which the lint race detector
    /// checks for conflicts — tasks in the same level may run
    /// concurrently.
    pub fn levels(&self) -> Vec<Vec<usize>> {
        let n = self.tasks.len();
        let mut level = vec![0usize; n];
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                for &d in &self.deps[i] {
                    if level[i] < level[d] + 1 {
                        level[i] = level[d] + 1;
                        changed = true;
                    }
                }
            }
        }
        let n_levels = level.iter().copied().max().unwrap_or(0) + 1;
        let mut out = vec![Vec::new(); n_levels];
        for (i, &l) in level.iter().enumerate() {
            out[l].push(i);
        }
        out
    }

    /// Edge-granularity successor lists: `successors()[i]` are the tasks
    /// that directly depend on task `i` (the inverse of [`TaskGraph::deps`],
    /// sorted). This is the view the dependency-driven work-stealing
    /// executor consumes: completing task `i` decrements the predecessor
    /// counter of every successor instead of waiting for a level barrier.
    pub fn successors(&self) -> Vec<Vec<usize>> {
        let mut succ = vec![Vec::new(); self.tasks.len()];
        for (i, deps) in self.deps.iter().enumerate() {
            for &d in deps {
                succ[d].push(i);
            }
        }
        for s in &mut succ {
            s.sort_unstable();
        }
        succ
    }

    /// Number of direct predecessors per task (the initial values of the
    /// work-stealing executor's atomic dependency counters). Tasks with a
    /// count of zero are ready immediately.
    pub fn pred_counts(&self) -> Vec<u32> {
        self.deps.iter().map(|d| d.len() as u32).collect()
    }

    /// Evaluate the whole task graph sequentially (reference semantics,
    /// also the serial baseline of the benchmarks).
    pub fn eval_serial(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        let mut shared = vec![0.0f64; self.n_shared];
        let mut out_buf: Vec<f64> = Vec::new();
        let mut regs: Vec<f64> = Vec::new();
        let mut prog_scratch = Program::default();
        // Tasks are emitted in dependency order by construction; verify in
        // debug builds.
        for task in &self.tasks {
            out_buf.resize(task.n_out(), 0.0);
            regs.resize(task.program.n_regs as usize, 0.0);
            task.run_with_regs(t, y, &shared, &mut out_buf, &mut regs, &mut prog_scratch);
            for (val, slot) in out_buf.iter().zip(&task.writes) {
                match slot {
                    OutSlot::Deriv(i) => dydt[*i] = *val,
                    OutSlot::Shared(i) => shared[*i] = *val,
                }
            }
        }
    }

    /// Evaluate the whole task graph over `scratch.lanes()` ensemble
    /// members at once. `ys` and `dydt` are structure-of-arrays with the
    /// lane index innermost (`ys[state * lanes + lane]`). Tasks run in
    /// the same emission order as [`TaskGraph::eval_serial`] and each
    /// lane performs exactly the serial operation sequence, so every
    /// lane's derivatives are bitwise identical to a serial evaluation
    /// of that lane alone.
    pub fn eval_batch(&self, t: f64, ys: &[f64], dydt: &mut [f64], scratch: &mut BatchScratch) {
        let lanes = scratch.lanes;
        assert_eq!(ys.len(), self.dim * lanes, "state batch length mismatch");
        assert_eq!(
            dydt.len(),
            self.dim * lanes,
            "derivative batch length mismatch"
        );
        for task in &self.tasks {
            let n_out = task.n_out();
            task.run_batch_with_regs(
                t,
                ys,
                &scratch.shared,
                &mut scratch.out[..n_out * lanes],
                &mut scratch.regs,
                lanes,
                &mut scratch.prog,
            );
            for (o, slot) in task.writes.iter().enumerate() {
                let src = &scratch.out[o * lanes..(o + 1) * lanes];
                match slot {
                    OutSlot::Deriv(i) => dydt[i * lanes..(i + 1) * lanes].copy_from_slice(src),
                    OutSlot::Shared(i) => {
                        scratch.shared[i * lanes..(i + 1) * lanes].copy_from_slice(src)
                    }
                }
            }
        }
    }
}

/// Reusable buffers for [`TaskGraph::eval_batch`]: the SoA shared-slot
/// array, the per-task SoA output staging buffer, and the chunk-local
/// register file. Allocated once per batch integration, reused across
/// every RHS call.
#[derive(Clone, Debug)]
pub struct BatchScratch {
    shared: Vec<f64>,
    out: Vec<f64>,
    regs: Vec<f64>,
    prog: Program,
    lanes: usize,
}

impl BatchScratch {
    /// Scratch sized for evaluating `graph` over `lanes` members.
    pub fn new(graph: &TaskGraph, lanes: usize) -> BatchScratch {
        assert!(lanes > 0, "batch must have at least one lane");
        let stride = crate::vm::LANE_CHUNK.min(lanes);
        let max_regs = graph
            .tasks
            .iter()
            .map(|t| t.program.n_regs as usize)
            .max()
            .unwrap_or(0);
        let max_outs = graph.tasks.iter().map(|t| t.n_out()).max().unwrap_or(0);
        BatchScratch {
            shared: vec![0.0; graph.n_shared * lanes],
            out: vec![0.0; max_outs * lanes],
            regs: vec![0.0; max_regs * stride],
            prog: Program::default(),
            lanes,
        }
    }

    /// The lane count this scratch was sized for.
    pub fn lanes(&self) -> usize {
        self.lanes
    }
}

/// Create one task per derivative equation.
///
/// `inline = true` reproduces the paper's configuration: algebraic
/// variables are substituted into consumers so that "the right hand sides
/// … are independent of each other and can therefore be evaluated in
/// parallel" (§2.3). `inline = false` keeps algebraic assignments as
/// separate producer tasks (dependencies appear).
pub fn equation_tasks(ir: &OdeIr, inline: bool) -> Vec<SymbolicTask> {
    if ir.has_classes() {
        return equation_tasks_classes(ir, inline);
    }
    if inline {
        ir.inlined_rhs()
            .into_iter()
            .enumerate()
            .map(|(i, rhs)| SymbolicTask {
                label: format!("d{}", ir.states[i].sym.name()),
                outputs: vec![(OutTarget::Deriv(i), rhs)],
                array_loop: None,
            })
            .collect()
    } else {
        let mut tasks: Vec<SymbolicTask> = ir
            .algebraics
            .iter()
            .map(|a| SymbolicTask {
                label: a.var.name().to_owned(),
                outputs: vec![(OutTarget::Shared(a.var), a.rhs.clone())],
                array_loop: None,
            })
            .collect();
        tasks.extend(ir.derivs.iter().enumerate().map(|(i, d)| SymbolicTask {
            label: format!("d{}", d.state.name()),
            outputs: vec![(OutTarget::Deriv(i), d.rhs.clone())],
            array_loop: None,
        }));
        tasks
    }
}

/// Target number of loop tasks an array class is chunked into, so the
/// scheduler has parallelism to distribute across workers.
const LOOP_TASK_CHUNKS: usize = 8;

/// Class-aware task creation: one chunked set of array-loop tasks per
/// class whose representative survives the fixed-point guards, and plain
/// scalar tasks for everything else (boundary equations, algebraics, and
/// classes that fail a guard — those expand element-by-element, bitwise
/// equal to the oracle).
fn equation_tasks_classes(ir: &OdeIr, inline: bool) -> Vec<SymbolicTask> {
    let index = ir.state_index();
    // Grounded algebraic definitions (same construction as
    // `OdeIr::inlined_rhs`), used both for inlining scalar equations and
    // for inlining class representatives.
    let defs: HashMap<Symbol, Expr> = if inline {
        let mut defs: HashMap<Symbol, Expr> = HashMap::new();
        for alg in &ir.algebraics {
            let grounded = substitute_map(&alg.rhs, &defs);
            defs.insert(alg.var, grounded);
        }
        defs
    } else {
        HashMap::new()
    };
    let inline_one = |rhs: &Expr| -> Expr {
        if inline {
            simplify(&substitute_map(rhs, &defs))
        } else {
            rhs.clone()
        }
    };

    let mut tasks: Vec<SymbolicTask> = Vec::new();
    if !inline {
        tasks.extend(ir.algebraics.iter().map(|a| SymbolicTask {
            label: a.var.name().to_owned(),
            outputs: vec![(OutTarget::Shared(a.var), a.rhs.clone())],
            array_loop: None,
        }));
    }
    for d in &ir.derivs {
        tasks.push(SymbolicTask {
            label: format!("d{}", d.state.name()),
            outputs: vec![(OutTarget::Deriv(index[&d.state]), inline_one(&d.rhs))],
            array_loop: None,
        });
    }
    for class in &ir.classes {
        match class_loop_tasks(class, &index, inline, &defs) {
            Some(mut loop_tasks) => tasks.append(&mut loop_tasks),
            None => {
                // Element-wise expansion, identical to what the oracle
                // pipeline builds for these states.
                for (k, &state) in class.states.iter().enumerate() {
                    tasks.push(SymbolicTask {
                        label: format!("d{}", state.name()),
                        outputs: vec![(
                            OutTarget::Deriv(index[&state]),
                            inline_one(&class.rhs_at(k)),
                        )],
                        array_loop: None,
                    });
                }
            }
        }
    }
    tasks
}

/// Try to turn one class into chunked array-loop tasks. Returns `None`
/// when a guard fails and the class must be expanded element-wise:
///
/// 1. every varying symbol (and everything it renames to) must be a
///    state — per-element *algebraic* references cannot be stepped by
///    state-slot patching;
/// 2. when inlining, no substituted algebraic definition may mention a
///    varying symbol (renaming the inlined representative would capture
///    it);
/// 3. renaming the (re-simplified) representative must still be a
///    simplify fixed point for every iteration: injective rows and
///    iteration-invariant canonical operand order. Flatten established
///    this for the raw representative; inlining can disturb it, so it is
///    re-checked on the inlined body.
fn class_loop_tasks(
    class: &om_lang::EqClass,
    index: &om_expr::SymbolMap<usize>,
    inline: bool,
    defs: &HashMap<Symbol, Expr>,
) -> Option<Vec<SymbolicTask>> {
    // Guard 1: rows are state-to-state renamings.
    for (rep, elems) in &class.rows {
        if !index.contains_key(rep) || elems.iter().any(|e| !index.contains_key(e)) {
            return None;
        }
    }
    let rep = if inline {
        // Guard 2: substituted definitions are iteration-invariant.
        let row_syms: HashSet<Symbol> = class.rows.iter().map(|(r, _)| *r).collect();
        for v in class.rhs.free_vars() {
            if let Some(body) = defs.get(&v) {
                if body.free_vars().iter().any(|s| row_syms.contains(s)) {
                    return None;
                }
            }
        }
        simplify(&substitute_map(&class.rhs, defs))
    } else {
        class.rhs.clone()
    };
    // Rows still present in the body (the derivative target, for one,
    // often only appears on the left-hand side; cancelled terms can drop
    // others).
    let free = rep.free_vars();
    let rows: Vec<(Symbol, Vec<Symbol>)> = class
        .rows
        .iter()
        .filter(|(r, _)| free.contains(r))
        .cloned()
        .collect();
    // Guard 3: renaming stays a simplify fixed point.
    let reps: HashSet<Symbol> = rows.iter().map(|(r, _)| *r).collect();
    let invariant: HashSet<Symbol> = free.iter().copied().filter(|s| !reps.contains(s)).collect();
    if !om_expr::rows_injective(&invariant, &rows) || !om_expr::stable_under_rows(&rep, &rows) {
        return None;
    }

    let card = class.cardinality();
    let n_chunks = (card / 4).clamp(1, LOOP_TASK_CHUNKS);
    let mut out = Vec::with_capacity(n_chunks);
    for c in 0..n_chunks {
        let lo = card * c / n_chunks;
        let hi = card * (c + 1) / n_chunks;
        let out_slots: Vec<u32> = class.states[lo..hi]
            .iter()
            .map(|s| index[s] as u32)
            .collect();
        let slot_rows: Vec<(Symbol, Vec<u32>)> = rows
            .iter()
            .map(|(r, elems)| (*r, elems[lo..hi].iter().map(|e| index[e] as u32).collect()))
            .collect();
        out.push(SymbolicTask {
            label: format!("loop:{}[{lo}..{hi}]", class.origin),
            outputs: vec![(OutTarget::Deriv(index[&class.states[lo]]), rep.clone())],
            array_loop: Some(SymLoop {
                out_slots,
                rows: slot_rows,
            }),
        });
    }
    Some(out)
}

/// Split tasks whose single output is a top-level sum more expensive than
/// `threshold` into partial-sum producers plus a combine task.
pub fn split_large(
    tasks: Vec<SymbolicTask>,
    threshold: u64,
    model: &CostModel,
) -> Vec<SymbolicTask> {
    let mut out = Vec::with_capacity(tasks.len());
    let mut split_counter = 0usize;
    for task in tasks {
        if task.array_loop.is_some() || task.outputs.len() != 1 || task.cost(model) <= threshold {
            out.push(task);
            continue;
        }
        let (target, expr) = task.outputs.into_iter().next().expect("one output");
        // A splittable body is a top-level sum, possibly wrapped in a
        // product with exactly one sum factor (canonical form of e.g.
        // `-(Σ …)/M`): the sum is split and the wrapper factors stay in
        // the combine task.
        let (wrapper, terms): (Vec<Expr>, &Vec<Expr>) = match &expr {
            Expr::Add(terms) => (Vec::new(), terms),
            Expr::Mul(factors) => {
                let sums: Vec<usize> = factors
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| matches!(f, Expr::Add(_)))
                    .map(|(i, _)| i)
                    .collect();
                if sums.len() == 1 {
                    let rest: Vec<Expr> = factors
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != sums[0])
                        .map(|(_, f)| f.clone())
                        .collect();
                    let Expr::Add(terms) = &factors[sums[0]] else {
                        unreachable!("filtered on Add")
                    };
                    (rest, terms)
                } else {
                    out.push(SymbolicTask {
                        label: task.label,
                        outputs: vec![(target, expr.clone())],
                        array_loop: None,
                    });
                    continue;
                }
            }
            _ => {
                out.push(SymbolicTask {
                    label: task.label,
                    outputs: vec![(target, expr)],
                    array_loop: None,
                });
                continue;
            }
        };
        // Expand nested sums with cheap multiplicative wrappers so e.g.
        // `-1·(t₁ + … + tₙ)` contributes n separate terms — the canonical
        // form the flattener produces for summed contact forces.
        let expanded = expand_sum_terms(terms, threshold / 4, model);
        // Greedily pack top-level terms into chunks of ≈ threshold cost.
        let mut chunks: Vec<Vec<Expr>> = vec![Vec::new()];
        let mut chunk_cost = 0u64;
        for term in &expanded {
            let c = model.cost(term);
            if chunk_cost + c > threshold && !chunks.last().expect("nonempty").is_empty() {
                chunks.push(Vec::new());
                chunk_cost = 0;
            }
            chunks.last_mut().expect("nonempty").push(term.clone());
            chunk_cost += c;
        }
        if chunks.len() < 2 {
            out.push(SymbolicTask {
                label: task.label,
                outputs: vec![(target, expr.clone())],
                array_loop: None,
            });
            continue;
        }
        let mut combine_terms = Vec::with_capacity(chunks.len());
        for (k, chunk) in chunks.into_iter().enumerate() {
            let part_sym = Symbol::intern(&format!("om$part${split_counter}${k}"));
            let body = simplify(&Expr::Add(chunk));
            out.push(SymbolicTask {
                label: format!("{}#part{k}", task.label),
                outputs: vec![(OutTarget::Shared(part_sym), body)],
                array_loop: None,
            });
            combine_terms.push(Expr::Var(part_sym));
        }
        let mut combined = Expr::Add(combine_terms);
        if !wrapper.is_empty() {
            let mut factors = wrapper;
            factors.push(combined);
            combined = Expr::Mul(factors);
        }
        out.push(SymbolicTask {
            label: format!("{}#combine", task.label),
            outputs: vec![(target, combined)],
            array_loop: None,
        });
        split_counter += 1;
    }
    out
}

/// Merge independent tasks (deriv-only outputs, no shared reads) cheaper
/// than `threshold` into grouped tasks of ≈ `threshold` cost.
pub fn merge_small(
    tasks: Vec<SymbolicTask>,
    threshold: u64,
    model: &CostModel,
) -> Vec<SymbolicTask> {
    let mut out: Vec<SymbolicTask> = Vec::new();
    let mut bucket: Vec<SymbolicTask> = Vec::new();
    let mut bucket_cost = 0u64;
    let is_mergeable = |t: &SymbolicTask| {
        t.array_loop.is_none()
            && t.outputs.iter().all(|(target, e)| {
                matches!(target, OutTarget::Deriv(_))
                    && !e.free_vars().iter().any(|s| s.name().starts_with("om$"))
            })
    };
    let flush = |bucket: &mut Vec<SymbolicTask>, out: &mut Vec<SymbolicTask>| {
        if bucket.is_empty() {
            return;
        }
        if bucket.len() == 1 {
            out.push(bucket.pop().expect("len 1"));
            return;
        }
        let label = format!(
            "group({})",
            bucket
                .iter()
                .map(|t| t.label.as_str())
                .collect::<Vec<_>>()
                .join(",")
        );
        let outputs = bucket.drain(..).flat_map(|t| t.outputs).collect::<Vec<_>>();
        out.push(SymbolicTask {
            label,
            outputs,
            array_loop: None,
        });
    };
    for task in tasks {
        let c = task.cost(model);
        if c >= threshold || !is_mergeable(&task) {
            out.push(task);
            continue;
        }
        if bucket_cost + c > threshold && !bucket.is_empty() {
            flush(&mut bucket, &mut out);
            bucket_cost = 0;
        }
        bucket_cost += c;
        bucket.push(task);
    }
    flush(&mut bucket, &mut out);
    out
}

/// Extract subexpressions shared between *different* tasks into producer
/// tasks (paper §3.3: "we will have to extract some of the larger common
/// subexpressions and compute them in parallel").
///
/// Candidates are subexpressions costing at least `min_cost` that occur
/// in two or more tasks; the most expensive are extracted first.
pub fn extract_shared_cse(
    tasks: Vec<SymbolicTask>,
    min_cost: u64,
    model: &CostModel,
) -> Vec<SymbolicTask> {
    // Count, for each candidate subexpression, the set of tasks it
    // appears in.
    let mut seen_in: BTreeMap<u64, Vec<(Expr, Vec<usize>)>> = BTreeMap::new();
    {
        let mut occurrences: HashMap<Expr, Vec<usize>> = HashMap::new();
        for (ti, task) in tasks.iter().enumerate() {
            // A loop task's body is re-evaluated per iteration with
            // varying state reads; its subexpressions are not shareable.
            if task.array_loop.is_some() {
                continue;
            }
            for (_, e) in &task.outputs {
                e.walk(&mut |sub| {
                    if model.cost(sub) >= min_cost {
                        let entry = occurrences.entry(sub.clone()).or_default();
                        if entry.last() != Some(&ti) {
                            entry.push(ti);
                        }
                    }
                });
            }
        }
        for (e, ts) in occurrences {
            if ts.len() >= 2 {
                seen_in.entry(model.cost(&e)).or_default().push((e, ts));
            }
        }
    }

    let mut producers: Vec<SymbolicTask> = Vec::new();
    let mut consumers = tasks;
    let mut counter = 0usize;
    // Most expensive candidates first.
    for (_, group) in seen_in.into_iter().rev() {
        for (candidate, _) in group {
            // Re-check occurrence after earlier replacements.
            let holders: Vec<usize> = consumers
                .iter()
                .enumerate()
                .filter(|(_, t)| {
                    t.array_loop.is_none()
                        && t.outputs
                            .iter()
                            .any(|(_, e)| contains_subexpr(e, &candidate))
                })
                .map(|(i, _)| i)
                .collect();
            let in_producers = producers
                .iter()
                .filter(|t| {
                    t.outputs
                        .iter()
                        .any(|(_, e)| contains_subexpr(e, &candidate))
                })
                .count();
            if holders.len() + in_producers < 2 {
                continue;
            }
            let sym = Symbol::intern(&format!("om$cse${counter}"));
            counter += 1;
            let replacement = Expr::Var(sym);
            for &h in &holders {
                for (_, e) in &mut consumers[h].outputs {
                    *e = replace_subexpr(e, &candidate, &replacement);
                }
            }
            for p in &mut producers {
                for (_, e) in &mut p.outputs {
                    *e = replace_subexpr(e, &candidate, &replacement);
                }
            }
            producers.push(SymbolicTask {
                label: format!("cse${}", sym.name()),
                outputs: vec![(OutTarget::Shared(sym), candidate)],
                array_loop: None,
            });
        }
    }
    // Producers must be evaluated before consumers; order producers so
    // later-extracted (smaller, referenced by earlier producers) come
    // first.
    producers.reverse();
    producers.extend(consumers);
    producers
}

/// Flatten sum terms for splitting: a term `Mul[f…, Add[t…]]` whose
/// non-sum factors are cheap (≤ `max_factor_cost`) is distributed into
/// one term per addend. Recursion catches `-1·(a + (-1)·(b + c))` chains.
fn expand_sum_terms(terms: &[Expr], max_factor_cost: u64, model: &CostModel) -> Vec<Expr> {
    let mut out = Vec::with_capacity(terms.len());
    for term in terms {
        match term {
            Expr::Add(inner) => out.extend(expand_sum_terms(inner, max_factor_cost, model)),
            Expr::Mul(factors) => {
                let sums: Vec<usize> = factors
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| matches!(f, Expr::Add(_)))
                    .map(|(i, _)| i)
                    .collect();
                let rest_cost: u64 = factors
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !sums.contains(i))
                    .map(|(_, f)| model.cost(f))
                    .sum();
                if sums.len() == 1 && rest_cost <= max_factor_cost {
                    let rest: Vec<Expr> = factors
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != sums[0])
                        .map(|(_, f)| f.clone())
                        .collect();
                    let Expr::Add(inner) = &factors[sums[0]] else {
                        unreachable!("filtered on Add")
                    };
                    for t in expand_sum_terms(inner, max_factor_cost, model) {
                        let mut fs = rest.clone();
                        fs.push(t);
                        out.push(Expr::Mul(fs));
                    }
                } else {
                    out.push(term.clone());
                }
            }
            other => out.push(other.clone()),
        }
    }
    out
}

fn contains_subexpr(e: &Expr, sub: &Expr) -> bool {
    let mut found = false;
    e.walk(&mut |n| {
        if n == sub {
            found = true;
        }
    });
    found
}

fn replace_subexpr(e: &Expr, from: &Expr, to: &Expr) -> Expr {
    if e == from {
        return to.clone();
    }
    e.map_children(|c| replace_subexpr(c, from, to))
}

/// Compile symbolic tasks into the executable task graph.
///
/// Panics if a task body references a symbol that is neither a state, the
/// time variable, nor a shared intermediate produced by another task.
pub fn compile_tasks(
    tasks: &[SymbolicTask],
    ir: &OdeIr,
    mode: CseMode,
    model: &CostModel,
) -> TaskGraph {
    // Allocate shared slots in deterministic (first-write) order.
    let mut shared_slot: HashMap<Symbol, usize> = HashMap::new();
    let mut writer_of_shared: HashMap<usize, usize> = HashMap::new();
    for task in tasks {
        for (target, _) in &task.outputs {
            if let OutTarget::Shared(s) = target {
                let next = shared_slot.len();
                shared_slot.entry(*s).or_insert(next);
            }
        }
    }

    let mut vars: HashMap<Symbol, VarRef> = HashMap::new();
    for (i, s) in ir.states.iter().enumerate() {
        vars.insert(s.sym, VarRef::State(i as u32));
    }
    for (s, slot) in &shared_slot {
        vars.insert(*s, VarRef::Shared(*slot as u32));
    }
    vars.insert(om_lang::flatten::time_symbol(), VarRef::Time);

    let mut compiled: Vec<CompiledTask> = Vec::with_capacity(tasks.len());
    for (id, task) in tasks.iter().enumerate() {
        let mut dag = Dag::new();
        let roots: Vec<_> = task
            .outputs
            .iter()
            .map(|(_, e)| {
                let r = dag.import(e);
                dag.mark_root(r);
                r
            })
            .collect();
        let cse_program = cse::eliminate(&dag, &roots, model);
        let program = compile_roots(&dag, &roots, &vars, mode);
        let body_cost = match mode {
            CseMode::Off => dag.tree_cost(&roots, model),
            _ => dag.shared_cost(&roots, model),
        };

        let mut reads_states = Vec::new();
        let mut reads_shared = Vec::new();
        let mut reads_time = false;
        for sym in dag.free_vars(&roots) {
            match vars.get(&sym) {
                Some(VarRef::State(i)) => reads_states.push(*i),
                Some(VarRef::Shared(i)) => reads_shared.push(*i),
                Some(VarRef::Time) => reads_time = true,
                None => panic!("task `{}` reads unresolved symbol `{sym}`", task.label),
            }
        }

        let (writes, loop_info, static_cost, cse_count) = match &task.array_loop {
            None => {
                let writes: Vec<OutSlot> = task
                    .outputs
                    .iter()
                    .map(|(target, _)| match target {
                        OutTarget::Deriv(i) => OutSlot::Deriv(*i),
                        OutTarget::Shared(s) => OutSlot::Shared(shared_slot[s]),
                    })
                    .collect();
                (writes, None, body_cost, cse_program.cse_count())
            }
            Some(sl) => {
                let count = sl.count();
                // The patched reads are the row slots, enumerated over
                // every iteration; the representative's own slots are
                // repointed before the first iteration ever runs, so only
                // invariant loads stay from the body's free variables.
                let rep_slots: HashSet<u32> = sl
                    .rows
                    .iter()
                    .map(|(sym, _)| match vars.get(sym) {
                        Some(VarRef::State(i)) => *i,
                        _ => panic!(
                            "loop task `{}` row symbol `{sym}` is not a state",
                            task.label
                        ),
                    })
                    .collect();
                let mut enumerated: BTreeSet<u32> = reads_states
                    .iter()
                    .copied()
                    .filter(|s| !rep_slots.contains(s))
                    .collect();
                let patches: Vec<(u32, Vec<u32>)> = sl
                    .rows
                    .iter()
                    .map(|(sym, slots)| {
                        let rep_slot = match vars.get(sym) {
                            Some(VarRef::State(i)) => *i,
                            _ => unreachable!("checked above"),
                        };
                        let instr = program.find_state_load(rep_slot).unwrap_or_else(|| {
                            panic!(
                                "loop task `{}` has no State load for row `{sym}`",
                                task.label
                            )
                        }) as u32;
                        enumerated.extend(slots.iter().copied());
                        (instr, slots.clone())
                    })
                    .collect();
                reads_states = enumerated.into_iter().collect();
                let writes: Vec<OutSlot> = sl
                    .out_slots
                    .iter()
                    .map(|&s| OutSlot::Deriv(s as usize))
                    .collect();
                let out_pattern = om_analysis::Pattern::from_slots(&sl.out_slots);
                let read_patterns = patches
                    .iter()
                    .map(|(_, slots)| om_analysis::Pattern::from_slots(slots))
                    .collect();
                (
                    writes,
                    Some(LoopInfo {
                        patches,
                        count: count as u32,
                        out_pattern,
                        read_patterns,
                    }),
                    body_cost * count as u64,
                    cse_program.cse_count() * count,
                )
            }
        };
        reads_states.sort_unstable();
        reads_shared.sort_unstable();

        for w in &writes {
            if let OutSlot::Shared(slot) = w {
                writer_of_shared.insert(*slot, id);
            }
        }

        compiled.push(CompiledTask {
            id,
            label: task.label.clone(),
            program,
            writes,
            loop_info,
            reads_states,
            reads_shared,
            reads_time,
            static_cost,
            cse_count,
        });
    }

    // Dependence edges: a task depends on the writer of every shared slot
    // it reads.
    let deps: Vec<Vec<usize>> = compiled
        .iter()
        .map(|t| {
            let mut d: Vec<usize> = t
                .reads_shared
                .iter()
                .map(|slot| {
                    *writer_of_shared
                        .get(&(*slot as usize))
                        .unwrap_or_else(|| panic!("shared slot {slot} has no writer"))
                })
                .collect();
            d.sort_unstable();
            d.dedup();
            d
        })
        .collect();

    TaskGraph {
        dim: ir.dim(),
        n_shared: shared_slot.len(),
        tasks: compiled,
        deps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_ir::causalize;

    fn ir(src: &str) -> OdeIr {
        causalize(&om_lang::compile(src).unwrap()).unwrap()
    }

    fn model() -> CostModel {
        CostModel::default()
    }

    const COUPLED: &str = "model M;
        Real x(start=1.0); Real v; Real f;
        equation
          der(x) = v;
          der(v) = f;
          f = -sin(x) - 0.2*v;
        end M;";

    #[test]
    fn inline_tasks_are_independent() {
        let sys = ir(COUPLED);
        let tasks = equation_tasks(&sys, true);
        assert_eq!(tasks.len(), 2);
        let tg = compile_tasks(&tasks, &sys, CseMode::PerTask, &model());
        assert!(tg.is_independent());
        assert_eq!(tg.n_shared, 0);
    }

    #[test]
    fn shared_tasks_have_dependencies() {
        let sys = ir(COUPLED);
        let tasks = equation_tasks(&sys, false);
        assert_eq!(tasks.len(), 3);
        let tg = compile_tasks(&tasks, &sys, CseMode::PerTask, &model());
        assert!(!tg.is_independent());
        assert_eq!(tg.n_shared, 1);
        // dv depends on the f task.
        let dv = tg.tasks.iter().find(|t| t.label == "dv").unwrap();
        let f = tg.tasks.iter().find(|t| t.label == "f").unwrap();
        assert_eq!(tg.deps[dv.id], vec![f.id]);
    }

    #[test]
    fn serial_eval_matches_ir_evaluator() {
        let sys = ir(COUPLED);
        let reference = om_ir::IrEvaluator::new(&sys).unwrap();
        for inline in [true, false] {
            let tasks = equation_tasks(&sys, inline);
            let tg = compile_tasks(&tasks, &sys, CseMode::PerTask, &model());
            let y = [0.4, -1.1];
            let mut expect = [0.0; 2];
            let mut got = [0.0; 2];
            reference.rhs(0.7, &y, &mut expect);
            tg.eval_serial(0.7, &y, &mut got);
            for i in 0..2 {
                assert!(
                    (expect[i] - got[i]).abs() < 1e-12,
                    "inline={inline} slot {i}: {} vs {}",
                    expect[i],
                    got[i]
                );
            }
        }
    }

    #[test]
    fn split_large_produces_partials_and_combine() {
        let sys = ir("model M;
            Real x;
            equation der(x) = sin(x) + cos(x) + exp(x) + tanh(x) + sinh(x) + x*x;
            end M;");
        let tasks = equation_tasks(&sys, true);
        let m = model();
        let split = split_large(tasks, 60, &m);
        assert!(split.len() > 2, "expected a split, got {}", split.len());
        assert!(split.iter().any(|t| t.label.contains("#combine")));
        // Semantics preserved.
        let tg = compile_tasks(&split, &sys, CseMode::PerTask, &m);
        let reference = om_ir::IrEvaluator::new(&sys).unwrap();
        let y = [0.35];
        let mut expect = [0.0];
        let mut got = [0.0];
        reference.rhs(0.0, &y, &mut expect);
        tg.eval_serial(0.0, &y, &mut got);
        assert!((expect[0] - got[0]).abs() < 1e-12);
    }

    #[test]
    fn merge_small_groups_cheap_tasks() {
        let sys = ir("model M;
            Real a; Real b; Real c; Real d;
            equation
              der(a) = -a; der(b) = -b; der(c) = -c; der(d) = -d;
            end M;");
        let tasks = equation_tasks(&sys, true);
        let merged = merge_small(tasks, 1000, &model());
        assert_eq!(merged.len(), 1);
        assert!(merged[0].label.starts_with("group("));
        assert_eq!(merged[0].outputs.len(), 4);
        // Execution still correct.
        let tg = compile_tasks(&merged, &sys, CseMode::PerTask, &model());
        let mut got = [0.0; 4];
        tg.eval_serial(0.0, &[1.0, 2.0, 3.0, 4.0], &mut got);
        assert_eq!(got, [-1.0, -2.0, -3.0, -4.0]);
    }

    #[test]
    fn merge_respects_threshold() {
        let sys = ir("model M;
            Real a; Real b;
            equation der(a) = sin(a); der(b) = cos(b);
            end M;");
        let tasks = equation_tasks(&sys, true);
        // Threshold below one sin() keeps tasks separate.
        let merged = merge_small(tasks, 10, &model());
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn extract_shared_cse_creates_producer() {
        // Both derivatives contain the expensive common factor
        // exp(sin(x) + cos(x)).
        let sys = ir("model M;
            Real x; Real y;
            equation
              der(x) = exp(sin(x) + cos(x)) * 2.0 + y;
              der(y) = exp(sin(x) + cos(x)) * 3.0 - y;
            end M;");
        let tasks = equation_tasks(&sys, true);
        let m = model();
        let extracted = extract_shared_cse(tasks, 50, &m);
        assert!(extracted.iter().any(|t| t.label.starts_with("cse$")));
        let tg = compile_tasks(&extracted, &sys, CseMode::PerTask, &m);
        assert!(!tg.is_independent());
        // Semantics preserved.
        let reference = om_ir::IrEvaluator::new(&sys).unwrap();
        let y = [0.3, 0.8];
        let mut expect = [0.0; 2];
        let mut got = [0.0; 2];
        reference.rhs(0.0, &y, &mut expect);
        tg.eval_serial(0.0, &y, &mut got);
        for i in 0..2 {
            assert!((expect[i] - got[i]).abs() < 1e-12);
        }
        // The producer count: extraction reduced total task cost versus
        // the plain inline tasks.
        let plain = compile_tasks(&equation_tasks(&sys, true), &sys, CseMode::PerTask, &m);
        assert!(tg.total_cost() < plain.total_cost());
    }

    /// Batched graph evaluation (including shared-slot producer tasks)
    /// is bitwise-identical to per-lane serial evaluation, for ragged
    /// and exact lane counts.
    #[test]
    fn eval_batch_matches_eval_serial_bitwise() {
        let sys = ir(COUPLED);
        for inline in [true, false] {
            let tasks = equation_tasks(&sys, inline);
            let tg = compile_tasks(&tasks, &sys, CseMode::PerTask, &model());
            for lanes in [1usize, 3, 8, 13] {
                let mut ys = vec![0.0; 2 * lanes];
                for l in 0..lanes {
                    ys[l] = 0.4 + 0.05 * l as f64;
                    ys[lanes + l] = -1.1 + 0.07 * l as f64;
                }
                let mut batched = vec![0.0; 2 * lanes];
                let mut scratch = BatchScratch::new(&tg, lanes);
                tg.eval_batch(0.7, &ys, &mut batched, &mut scratch);
                for l in 0..lanes {
                    let mut serial = [0.0; 2];
                    tg.eval_serial(0.7, &[ys[l], ys[lanes + l]], &mut serial);
                    for i in 0..2 {
                        assert_eq!(
                            serial[i].to_bits(),
                            batched[i * lanes + l].to_bits(),
                            "inline={inline} lanes={lanes} lane={l} slot={i}"
                        );
                    }
                }
            }
        }
    }

    /// Scratch reuse across calls must not leak state between RHS
    /// evaluations (shared slots are rewritten every call).
    #[test]
    fn batch_scratch_is_reusable_across_calls() {
        let sys = ir(COUPLED);
        let tg = compile_tasks(
            &equation_tasks(&sys, false),
            &sys,
            CseMode::PerTask,
            &model(),
        );
        let lanes = 4;
        let mut scratch = BatchScratch::new(&tg, lanes);
        assert_eq!(scratch.lanes(), lanes);
        let ys: Vec<f64> = (0..2 * lanes).map(|i| 0.1 * i as f64).collect();
        let mut first = vec![0.0; 2 * lanes];
        tg.eval_batch(0.3, &ys, &mut first, &mut scratch);
        // A second call with different inputs, then the original again.
        let mut other = vec![0.0; 2 * lanes];
        tg.eval_batch(0.9, &first, &mut other, &mut scratch);
        let mut second = vec![0.0; 2 * lanes];
        tg.eval_batch(0.3, &ys, &mut second, &mut scratch);
        assert_eq!(first, second, "scratch reuse changed results");
    }

    /// Parameterized advection-diffusion stencil. Every indexed term has
    /// a distinct constant coefficient so n-ary sibling ordering is
    /// decided by constants, never by `u[k]` names (whose lexicographic
    /// order flips at digit boundaries and would force scalarization).
    fn heat_src(n: usize) -> String {
        format!(
            "model H; Real[{n}] u; Real k;
             equation
               k = 0.5*time;
               der(u[1]) = 3.5*u[2] - 8.0*u[1] + k;
               for i in 2:{m} loop
                 der(u[i]) = 4.5*u[i-1] - 8.0*u[i] + 3.5*u[i+1] + k;
               end for;
               der(u[{n}]) = 4.5*u[{m}] - 8.0*u[{n}] + k;
             end H;",
            m = n - 1
        )
    }

    fn heat_y0(n: usize) -> Vec<f64> {
        (0..n).map(|i| (0.3 * i as f64).sin() + 0.1).collect()
    }

    /// The class-carrying task graph (with loop tasks) is bitwise equal
    /// to the fully scalarized oracle graph, serially and batched, in
    /// both inline modes.
    #[test]
    fn class_graph_is_bitwise_equal_to_oracle() {
        let n = 32;
        let src = heat_src(n);
        let aware = causalize(&om_lang::compile_arrays(&src).unwrap()).unwrap();
        let oracle = causalize(&om_lang::compile(&src).unwrap()).unwrap();
        assert!(aware.has_classes());
        let y = heat_y0(n);
        for inline in [true, false] {
            let ta = compile_tasks(
                &equation_tasks(&aware, inline),
                &aware,
                CseMode::PerTask,
                &model(),
            );
            let to = compile_tasks(
                &equation_tasks(&oracle, inline),
                &oracle,
                CseMode::PerTask,
                &model(),
            );
            assert!(
                ta.tasks.iter().any(|t| t.loop_info.is_some()),
                "inline={inline}: expected at least one loop task"
            );
            assert!(ta.tasks.len() < to.tasks.len());
            let mut got = vec![0.0; n];
            let mut expect = vec![0.0; n];
            ta.eval_serial(0.7, &y, &mut got);
            to.eval_serial(0.7, &y, &mut expect);
            for i in 0..n {
                assert_eq!(
                    expect[i].to_bits(),
                    got[i].to_bits(),
                    "inline={inline} slot {i}: {} vs {}",
                    expect[i],
                    got[i]
                );
            }
            // Batched path with a ragged lane count.
            let lanes = 5;
            let mut ys = vec![0.0; n * lanes];
            for l in 0..lanes {
                for i in 0..n {
                    ys[i * lanes + l] = y[i] + 0.01 * l as f64;
                }
            }
            let mut ba = vec![0.0; n * lanes];
            let mut bo = vec![0.0; n * lanes];
            let mut sa = BatchScratch::new(&ta, lanes);
            let mut so = BatchScratch::new(&to, lanes);
            ta.eval_batch(0.7, &ys, &mut ba, &mut sa);
            to.eval_batch(0.7, &ys, &mut bo, &mut so);
            for (i, (a, o)) in ba.iter().zip(&bo).enumerate() {
                assert_eq!(o.to_bits(), a.to_bits(), "inline={inline} batch elem {i}");
            }
        }
    }

    /// Loop tasks carry enumerated reads/writes and trip-count-scaled
    /// static costs, and the class is chunked for parallelism.
    #[test]
    fn loop_tasks_are_chunked_and_costed() {
        let n = 32; // interior class cardinality 30 -> 7 chunks
        let aware = causalize(&om_lang::compile_arrays(&heat_src(n)).unwrap()).unwrap();
        let tg = compile_tasks(
            &equation_tasks(&aware, true),
            &aware,
            CseMode::PerTask,
            &model(),
        );
        let loops: Vec<_> = tg.tasks.iter().filter(|t| t.loop_info.is_some()).collect();
        assert_eq!(loops.len(), 7, "expected (30/4).clamp(1,8) chunks");
        let mut total = 0usize;
        for t in &loops {
            let li = t.loop_info.as_ref().unwrap();
            let per_iter = t.program.outputs.len();
            assert_eq!(t.writes.len(), per_iter * li.count as usize);
            assert!(!li.patches.is_empty());
            for (_, slots) in &li.patches {
                assert_eq!(slots.len(), li.count as usize);
            }
            // Static cost scales with the trip count.
            assert_eq!(t.static_cost % li.count as u64, 0);
            total += li.count as usize;
        }
        assert_eq!(total, 30);
        // Every state slot is written exactly once across the graph.
        let mut seen = vec![0usize; n];
        for t in &tg.tasks {
            for w in &t.writes {
                if let OutSlot::Deriv(i) = w {
                    seen[*i] += 1;
                }
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "coverage: {seen:?}");
    }

    /// The partitioning passes must pass loop tasks through untouched
    /// (they are already cost-balanced by chunking).
    #[test]
    fn partition_passes_skip_loop_tasks() {
        let aware = causalize(&om_lang::compile_arrays(&heat_src(16)).unwrap()).unwrap();
        let tasks = equation_tasks(&aware, true);
        let n_loops = tasks.iter().filter(|t| t.array_loop.is_some()).count();
        assert!(n_loops >= 1);
        let m = model();
        let after = merge_small(
            split_large(extract_shared_cse(tasks, 1, &m), 1, &m),
            1_000_000,
            &m,
        );
        let still: Vec<_> = after.iter().filter(|t| t.array_loop.is_some()).collect();
        assert_eq!(still.len(), n_loops);
        // And the surviving graph still evaluates correctly.
        let oracle = causalize(&om_lang::compile(&heat_src(16)).unwrap()).unwrap();
        let tg = compile_tasks(&after, &aware, CseMode::PerTask, &m);
        let to = compile_tasks(
            &equation_tasks(&oracle, true),
            &oracle,
            CseMode::PerTask,
            &m,
        );
        let y = heat_y0(16);
        let mut got = vec![0.0; 16];
        let mut expect = vec![0.0; 16];
        tg.eval_serial(1.3, &y, &mut got);
        to.eval_serial(1.3, &y, &mut expect);
        for i in 0..16 {
            assert_eq!(expect[i].to_bits(), got[i].to_bits(), "slot {i}");
        }
    }

    #[test]
    fn reads_and_writes_are_tracked() {
        let sys = ir(COUPLED);
        let tg = compile_tasks(
            &equation_tasks(&sys, true),
            &sys,
            CseMode::PerTask,
            &model(),
        );
        let dx = tg.tasks.iter().find(|t| t.label == "dx").unwrap();
        // der(x) = v reads only state 1 (v).
        assert_eq!(dx.reads_states, vec![1]);
        assert_eq!(dx.writes, vec![OutSlot::Deriv(0)]);
        let dv = tg.tasks.iter().find(|t| t.label == "dv").unwrap();
        assert_eq!(dv.reads_states, vec![0, 1]);
    }
}
