//! # om-codegen — the parallelizing code generator
//!
//! The reproduction of ObjectMath 4.0's code generator (paper §3, Figure
//! 9). From the ODE internal form it produces a *task graph* ready for
//! the parallel runtime, plus textual Fortran 90 and C++ renderings of
//! the same computation:
//!
//! * [`dag`] — hash-consed expression DAG; structural sharing is what
//!   makes common-subexpression elimination a lookup rather than a
//!   search,
//! * [`cse`] — common-subexpression elimination with per-task and global
//!   modes (the two modes whose code-size difference §3.3 reports),
//! * [`task`] — task partitioning: one task per equation right-hand
//!   side, merging of small tasks, splitting of large ones, and optional
//!   extraction of shared subexpressions into their own tasks (the
//!   paper's future-work item),
//! * [`sched`] — largest-processing-time (LPT) static scheduling and
//!   dependency-aware list scheduling,
//! * [`comm`] — communication analysis: which state variables each
//!   worker needs, message sizes for whole-state vs composed messages,
//! * [`bytecode`] / [`vm`] — a register bytecode and its interpreter;
//!   this is the executable target standing in for compiled Fortran (see
//!   DESIGN.md substitutions),
//! * [`emit_fortran`] / [`emit_cpp`] — textual emitters reproducing the
//!   `RHS(workerid, yin, yout)` SPMD code of Figure 11,
//! * [`generator`] — the orchestrating [`generator::CodeGenerator`] with
//!   the options table the experiments ablate.

pub mod bytecode;
pub mod comm;
pub mod cse;
pub mod dag;
pub mod emit_cpp;
pub mod emit_fortran;
pub mod generator;
pub mod registry;
pub mod sched;
pub mod task;
pub mod vm;

pub use bytecode::{Instr, Program};
pub use cse::{CseMode, CseProgram};
pub use dag::{Dag, NodeId};
pub use generator::{CodeGenerator, GenOptions, GenStats, ParallelProgram};
pub use registry::{fnv1a64, CompiledModel, ModelKey, ModelRegistry, RegistryError};
pub use sched::{list_schedule, lpt, Schedule};
pub use task::{BatchScratch, CompiledTask, OutSlot, TaskGraph};
pub use vm::{execute, execute_batch, LANE_CHUNK};
