//! Every shipped model and example must lint clean at `--deny warnings`
//! level: no errors, no warnings (info diagnostics are advisory and
//! allowed).

use om_lint::{lint_source, Severity};

fn assert_clean(name: &str, source: &str) {
    let report = lint_source(source);
    let noisy: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity >= Severity::Warn)
        .collect();
    assert!(
        noisy.is_empty(),
        "{name} should lint clean, got:\n{}",
        report.render_text(name)
    );
}

#[test]
fn builtin_models_lint_clean() {
    assert_clean("oscillator", &om_models::oscillator::source());
    assert_clean("servo", &om_models::servo::source());
    assert_clean("hydro", &om_models::hydro::source());
    assert_clean(
        "bearing2d",
        &om_models::bearing2d::source(&om_models::bearing2d::BearingConfig::default()),
    );
    assert_clean(
        "heat1d",
        &om_models::heat1d::source(&om_models::heat1d::HeatConfig::default()),
    );
    assert_clean(
        "bearing3d",
        &om_models::bearing3d::source(&om_models::bearing3d::Bearing3dConfig::default()),
    );
}

#[test]
fn shipped_examples_lint_clean() {
    for entry in std::fs::read_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples")).unwrap()
    {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) == Some("om") {
            let src = std::fs::read_to_string(&path).unwrap();
            assert_clean(path.to_str().unwrap(), &src);
        }
    }
}
