//! Every shipped model and example must lint clean at `--deny warnings`
//! level: no errors, no warnings (info diagnostics are advisory and
//! allowed).

use om_lint::{lint_source, Severity};

fn assert_clean(name: &str, source: &str) {
    let report = lint_source(source);
    let noisy: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity >= Severity::Warn)
        .collect();
    assert!(
        noisy.is_empty(),
        "{name} should lint clean, got:\n{}",
        report.render_text(name)
    );
}

#[test]
fn builtin_models_lint_clean() {
    assert_clean("oscillator", &om_models::oscillator::source());
    assert_clean("servo", &om_models::servo::source());
    assert_clean("hydro", &om_models::hydro::source());
    assert_clean(
        "bearing2d",
        &om_models::bearing2d::source(&om_models::bearing2d::BearingConfig::default()),
    );
    assert_clean(
        "heat1d",
        &om_models::heat1d::source(&om_models::heat1d::HeatConfig::default()),
    );
    assert_clean(
        "bearing3d",
        &om_models::bearing3d::source(&om_models::bearing3d::Bearing3dConfig::default()),
    );
}

/// Acceptance gate for the work-stealing executor: every built-in
/// model's generated schedule must pass OM040–OM043 at *edge*
/// granularity — i.e. the race-free verdict holds without the level
/// barrier, in both algebraic-inlining modes (inline = independent
/// graphs, no-inline = multi-level producer/consumer graphs).
#[test]
fn builtin_schedules_are_race_free_at_edge_granularity() {
    use om_codegen::{CodeGenerator, GenOptions};
    use om_lint::{check_schedule_at, Granularity, Report, ScheduleView};

    let sources = [
        ("oscillator", om_models::oscillator::source()),
        ("servo", om_models::servo::source()),
        ("hydro", om_models::hydro::source()),
        (
            "bearing2d",
            om_models::bearing2d::source(&om_models::bearing2d::BearingConfig::default()),
        ),
        (
            "heat1d",
            om_models::heat1d::source(&om_models::heat1d::HeatConfig::default()),
        ),
        (
            "bearing3d",
            om_models::bearing3d::source(&om_models::bearing3d::Bearing3dConfig::default()),
        ),
    ];
    for (name, src) in sources {
        for inline in [true, false] {
            let ir = om_models::compile_to_ir(&src).unwrap();
            let graph = CodeGenerator::new(GenOptions {
                inline_algebraics: inline,
                ..GenOptions::default()
            })
            .generate(&ir)
            .graph;
            let view = ScheduleView::from_graph(&graph);
            let mut report = Report::default();
            check_schedule_at(&view, Granularity::Edge, &mut report);
            assert!(
                report.is_empty(),
                "{name} (inline={inline}) has edge-granularity schedule findings:\n{}",
                report.render_text(name)
            );
        }
    }
}

#[test]
fn shipped_examples_lint_clean() {
    for entry in std::fs::read_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples")).unwrap()
    {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) == Some("om") {
            let src = std::fs::read_to_string(&path).unwrap();
            assert_clean(path.to_str().unwrap(), &src);
        }
    }
}
