//! Differential property suite for the symbolic schedule engine.
//!
//! Ground truth is a concrete slot vector per task; the symbolic view is
//! built from `Pattern::from_slots` of the same vectors and the concrete
//! view from the vectors themselves. For every random schedule the
//! symbolic verdict set must be byte-identical to the concrete
//! detector's — same codes, same positions, same messages, same order.
//! (OM070 is filtered out of the comparison: it is symbolic-only by
//! design — expansion flattens the iteration structure it talks about.)

use om_analysis::Pattern;
use om_codegen::task::OutSlot;
use om_lint::{
    check_schedule_at, check_schedule_sym, Granularity, Report, ScheduleView, Space, SymOutcome,
    SymScheduleView, SymTaskAccess, TaskAccess,
};
use proptest::prelude::*;

/// Build both views from the same per-task write-slot vectors, run both
/// engines at edge granularity, and return the two reports.
fn run_case(
    n: u32,
    stencils: &[Vec<u32>],
    with_producer: bool,
    readers: bool,
) -> (Report, Report, SymOutcome) {
    let mut sym_tasks: Vec<SymTaskAccess> = Vec::new();
    let mut conc_tasks: Vec<TaskAccess> = Vec::new();
    let mut deps: Vec<Vec<usize>> = Vec::new();
    if with_producer {
        sym_tasks.push(SymTaskAccess {
            label: "p".into(),
            writes: vec![(Space::Shared, Pattern::singleton(0))],
            reads_shared: vec![],
            loop_maps: None,
        });
        conc_tasks.push(TaskAccess {
            label: "p".into(),
            writes: vec![OutSlot::Shared(0)],
            reads_shared: vec![],
        });
        deps.push(vec![]);
    }
    for (i, slots) in stencils.iter().enumerate() {
        let label = format!("chunk{i}");
        let reads: Vec<u32> = if with_producer && readers {
            vec![0]
        } else {
            vec![]
        };
        sym_tasks.push(SymTaskAccess {
            label: label.clone(),
            writes: vec![(Space::Deriv, Pattern::from_slots(slots))],
            reads_shared: reads.iter().map(|&s| Pattern::singleton(s)).collect(),
            loop_maps: None,
        });
        conc_tasks.push(TaskAccess {
            label,
            writes: slots.iter().map(|&s| OutSlot::Deriv(s as usize)).collect(),
            reads_shared: reads.iter().map(|&s| s as usize).collect(),
        });
        // An edge to the producer even when the task reads nothing from
        // it: the unjustified-edge screen (OM043) must agree too.
        deps.push(if with_producer { vec![0] } else { vec![] });
    }
    let mut sv = SymScheduleView::from_parts(sym_tasks, deps.clone());
    sv.dim = n as usize;
    sv.n_shared = usize::from(with_producer);
    let mut cv = ScheduleView::from_parts(conc_tasks, deps);
    cv.dim = n as usize;
    cv.n_shared = sv.n_shared;

    let mut sym_r = Report::default();
    let outcome = check_schedule_sym(&sv, Granularity::Edge, &mut sym_r);
    let mut conc_r = Report::default();
    check_schedule_at(&cv, Granularity::Edge, &mut conc_r);
    (sym_r, conc_r, outcome)
}

type Key = (&'static str, om_lint::Severity, om_lang::SourcePos, String);

fn keys(r: &Report, drop_om070: bool) -> Vec<Key> {
    r.diagnostics
        .iter()
        .filter(|d| !(drop_om070 && d.code == "OM070"))
        .map(|d| (d.code, d.severity, d.pos, d.message.clone()))
        .collect()
}

/// Affine stencil with every slot < n: `base + stride·k` for k < count.
fn stencil_slots(n: u32, base: u32, stride: u32, count: u32) -> Vec<u32> {
    let base = base % n;
    let max_count = 1 + (n - 1 - base) / stride;
    (0..count.min(max_count))
        .map(|k| base + stride * k)
        .collect()
}

/// Contiguous k-way partition of [0, n): the canonical clean schedule.
fn chunked_partition(n: u32, k: u32) -> Vec<Vec<u32>> {
    (0..k)
        .map(|i| (n * i / k..n * (i + 1) / k).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Random affine stencils over N ∈ {2..64}: overlaps, gaps, and
    /// double-writes occur constantly, and the symbolic verdict set must
    /// be byte-equal to the concrete detector's every single time.
    #[test]
    fn random_affine_stencils_agree_with_the_concrete_detector(
        n in 2u32..=64,
        specs in proptest::collection::vec((0u32..64, 1u32..4, 1u32..=64), 1..5),
        with_producer in prop::bool::ANY,
        readers in prop::bool::ANY,
    ) {
        let stencils: Vec<Vec<u32>> = specs
            .iter()
            .map(|&(b, s, c)| stencil_slots(n, b, s, c))
            .collect();
        let (sym_r, conc_r, _) = run_case(n, &stencils, with_producer, readers);
        prop_assert_eq!(keys(&sym_r, true), keys(&conc_r, false));
    }

    /// Clean contiguous partitions (with a justified producer edge when
    /// present) must verify symbolically — zero diagnostics AND zero
    /// expansions, or the O(1)-per-pair claim is broken.
    #[test]
    fn clean_chunked_partitions_verify_without_expansion(
        n in 2u32..=64,
        k in 1u32..5,
        with_producer in prop::bool::ANY,
    ) {
        let chunks = chunked_partition(n, k);
        let (sym_r, conc_r, outcome) = run_case(n, &chunks, with_producer, true);
        prop_assert_eq!(keys(&sym_r, true), keys(&conc_r, false));
        prop_assert!(conc_r.is_empty(), "{:?}", conc_r.diagnostics);
        prop_assert!(!outcome.expanded, "clean schedule expanded: {outcome:?}");
    }

    /// Interleaved strided writes (disjoint by residue class, overlapping
    /// by range): the lattice must prove them apart without expansion.
    #[test]
    fn interleaved_strides_stay_symbolic(n in 1u32..=32) {
        let evens: Vec<u32> = (0..n).map(|k| 2 * k).collect();
        let odds: Vec<u32> = (0..n).map(|k| 2 * k + 1).collect();
        let (sym_r, conc_r, outcome) = run_case(2 * n, &[evens, odds], false, false);
        prop_assert_eq!(keys(&sym_r, true), keys(&conc_r, false));
        prop_assert!(conc_r.is_empty(), "{:?}", conc_r.diagnostics);
        prop_assert!(!outcome.expanded, "disjoint strides expanded: {outcome:?}");
    }
}

/// Exhaustive small-N sweep: every (shift, chunk) pair over N ≤ 16.
/// Deterministic companion to the proptest above, so a parity break is
/// reproducible without a seed.
#[test]
fn exhaustive_shifted_chunk_pairs_agree() {
    for n in 2u32..=16 {
        for shift in 0..n {
            let a: Vec<u32> = (0..n / 2).collect();
            let b: Vec<u32> = (0..n - n / 2).map(|k| (k + shift).min(n - 1)).collect();
            let (sym_r, conc_r, _) = run_case(n, &[a, b], false, false);
            assert_eq!(
                keys(&sym_r, true),
                keys(&conc_r, false),
                "parity break at n={n} shift={shift}"
            );
        }
    }
}
