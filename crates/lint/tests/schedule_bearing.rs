//! Acceptance: the race detector verifies the generated schedule of the
//! bearing model — exactly-once coverage and no intra-level read/write
//! conflicts — and a mutated schedule fails it.

use om_codegen::{CodeGenerator, GenOptions};
use om_lint::{check_schedule, Report, ScheduleView};

fn bearing_view() -> ScheduleView {
    let src = om_models::bearing2d::source(&om_models::bearing2d::BearingConfig::default());
    let ir = om_models::compile_to_ir(&src).unwrap();
    // Keep algebraics as producer tasks so the graph has real
    // dependencies and more than one barrier level — the interesting
    // configuration for a race detector.
    let options = GenOptions {
        inline_algebraics: false,
        ..GenOptions::default()
    };
    let program = CodeGenerator::new(options).generate(&ir);
    // The LPT-priority schedule must cover every task.
    let sched = program.schedule(4);
    assert_eq!(sched.assignment.len(), program.graph.tasks.len());
    ScheduleView::from_graph(&program.graph)
}

#[test]
fn bearing_schedule_is_race_free_and_covered() {
    let view = bearing_view();
    assert!(
        view.levels.len() >= 2,
        "expected a multi-level graph, got {} level(s)",
        view.levels.len()
    );
    let mut report = Report::default();
    check_schedule(&view, &mut report);
    assert!(
        report.is_empty(),
        "bearing schedule should verify clean:\n{}",
        report.render_text("bearing2d")
    );
}

#[test]
fn mutated_bearing_schedule_fails_verification() {
    let view = bearing_view();
    // Merge the first two barrier levels: every level-1 task has a
    // dependency in level 0 whose shared output it reads, so running
    // them concurrently is a read-write race.
    let mut levels = view.levels.clone();
    let second = levels.remove(1);
    levels[0].extend(second);
    let mutated = view.with_levels(levels);
    let mut report = Report::default();
    check_schedule(&mutated, &mut report);
    assert!(
        report.has_code("OM041"),
        "merged levels should race:\n{}",
        report.render_text("bearing2d")
    );
}
