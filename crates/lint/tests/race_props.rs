//! Property tests for the schedule race detector (ISSUE satellite):
//!
//! * **Soundness** — every schedule the pipeline's scheduler emits on a
//!   random dataflow DAG verifies clean: the levels derived from
//!   dataflow-justified dependencies can never race.
//! * **Sensitivity** — artificially merging one barrier level into its
//!   predecessor always produces a detectable read-write conflict
//!   (every level-L+1 task has a level-L dependency it reads, by the
//!   longest-path construction).

use om_codegen::list_schedule;
use om_codegen::task::OutSlot;
use om_lint::{check_schedule, check_schedule_at, Granularity, Report, ScheduleView, TaskAccess};
use proptest::prelude::*;

/// Build a random dataflow DAG: task `k` writes `Deriv(k)` and
/// `Shared(k)`; each encoded edge `i → j` (i < j) makes task `j` read
/// `shared[i]` and depend on task `i`. Dependencies are therefore
/// exactly the dataflow — the invariant the code generator maintains.
fn random_view(n: usize, raw_edges: &[usize], force_edge: bool) -> ScheduleView {
    let mut tasks: Vec<TaskAccess> = (0..n)
        .map(|k| TaskAccess {
            label: format!("t{k}"),
            writes: vec![OutSlot::Deriv(k), OutSlot::Shared(k)],
            reads_shared: Vec::new(),
        })
        .collect();
    let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut any = false;
    for &e in raw_edges {
        let i = (e / n) % n;
        let j = e % n;
        let (i, j) = (i.min(j), i.max(j));
        if i != j && !deps[j].contains(&i) {
            deps[j].push(i);
            tasks[j].reads_shared.push(i);
            any = true;
        }
    }
    if force_edge && !any && n >= 2 {
        deps[1].push(0);
        tasks[1].reads_shared.push(0);
    }
    ScheduleView::from_parts(tasks, deps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Soundness: the schedule the pipeline emits for a random dataflow
    /// DAG — list scheduling over the dependency structure, executed at
    /// the barrier levels the runtime derives — always verifies clean.
    #[test]
    fn detector_accepts_every_pipeline_schedule(
        n in 2usize..=10,
        raw_edges in prop::collection::vec(0usize..10_000, 0..=25),
        m in 1usize..=4,
    ) {
        let view = random_view(n, &raw_edges, false);
        // The scheduler must produce a complete assignment for it…
        let costs = vec![1u64; n];
        let sched = list_schedule(&costs, &view.deps, m);
        prop_assert_eq!(sched.assignment.len(), n);
        prop_assert!(sched.assignment.iter().all(|&w| w < m));
        // …and the race detector must accept the level structure.
        let mut report = Report::default();
        check_schedule(&view, &mut report);
        prop_assert!(report.is_empty(), "spurious findings: {:?}", report.diagnostics);
    }

    /// Edge-granularity soundness: because dependencies derive exactly
    /// from dataflow, every unordered pair is access-disjoint — the
    /// race-free verdict holds even with the barrier removed, which is
    /// what licenses the work-stealing executor on generated schedules.
    #[test]
    fn detector_accepts_every_pipeline_schedule_at_edge_granularity(
        n in 2usize..=10,
        raw_edges in prop::collection::vec(0usize..10_000, 0..=25),
    ) {
        let view = random_view(n, &raw_edges, false);
        let mut report = Report::default();
        check_schedule_at(&view, Granularity::Edge, &mut report);
        prop_assert!(report.is_empty(), "spurious findings: {:?}", report.diagnostics);
    }

    /// Edge-granularity sensitivity: erase *all* dependency edges of one
    /// consumer (keeping its shared-slot reads). The consumer becomes a
    /// root with no path from its former producer, so the pair is
    /// unordered and the read-write hazard must surface as OM041 — even
    /// though the barrier schedule may hide it across levels.
    #[test]
    fn detector_rejects_dropped_dependency_edges(
        n in 2usize..=10,
        raw_edges in prop::collection::vec(0usize..10_000, 0..=25),
    ) {
        let view = random_view(n, &raw_edges, true);
        let j = (0..n).find(|&j| !view.deps[j].is_empty()).expect("forced edge");
        let mut deps = view.deps.clone();
        deps[j].clear();
        let mutated = ScheduleView::from_parts(view.tasks.clone(), deps);
        let mut report = Report::default();
        check_schedule_at(&mutated, Granularity::Edge, &mut report);
        prop_assert!(
            report.has_code("OM041"),
            "dropped deps of t{} not detected: {:?}",
            j,
            report.diagnostics
        );
    }

    /// Sensitivity: merging one level into its predecessor always
    /// produces a read-write conflict the detector reports.
    #[test]
    fn detector_rejects_one_merged_level(
        n in 2usize..=10,
        raw_edges in prop::collection::vec(0usize..10_000, 0..=25),
        merge_at in 0usize..8,
    ) {
        let view = random_view(n, &raw_edges, true);
        prop_assert!(view.levels.len() >= 2);
        let at = merge_at % (view.levels.len() - 1);
        let mut levels = view.levels.clone();
        let merged = levels.remove(at + 1);
        levels[at].extend(merged);
        let mutated = view.with_levels(levels);
        let mut report = Report::default();
        check_schedule(&mutated, &mut report);
        prop_assert!(
            report.has_code("OM041"),
            "merged level at {} not detected: {:?}",
            at,
            report.diagnostics
        );
    }
}
