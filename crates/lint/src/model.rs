//! Model passes: symbol analysis on the AST, expression hazards, and
//! structural analysis (balance, bipartite matching, duplicate
//! derivatives, uninitialized states) on the flattened system.
//!
//! Unlike `scope::check`, which stops at the first problem, these passes
//! collect every finding so one lint run shows the whole picture.

use crate::diag::{Diagnostic, Report};
use om_expr::expr::{Expr, Func};
use om_expr::Symbol;
use om_lang::ast::{BinOp, ClassDef, Equation, Member, RefPath, SExpr, Unit};
use om_lang::scope::ClassTable;
use om_lang::{FlatModel, SourcePos};
use std::collections::{HashMap, HashSet};

// ---------------------------------------------------------------------------
// AST symbol passes: OM010 (unresolved), OM011 (duplicate), OM012 (shadowed)
// ---------------------------------------------------------------------------

/// Run all AST-level passes over the unit.
pub fn ast_passes(unit: &Unit, out: &mut Report) {
    let table = match ClassTable::build(unit) {
        Ok(t) => t,
        Err(e) => {
            // Duplicate class names / cycles: report and stop the symbol
            // passes (member resolution needs a well-formed table).
            out.push(Diagnostic::new(
                "OM010",
                e.pos.unwrap_or_default(),
                e.message,
            ));
            hazard_passes(unit, out);
            return;
        }
    };

    for class in unit.classes.iter().chain(std::iter::once(&unit.model)) {
        member_passes(&table, class, out);
        let mut resolver = Resolver {
            table: &table,
            class,
            loop_indices: Vec::new(),
            out: &mut *out,
        };
        resolver.check_class();
    }
    hazard_passes(unit, out);
}

/// OM011/OM012: duplicate members within one class, and members that
/// shadow an inherited member of the same name.
fn member_passes(table: &ClassTable<'_>, class: &ClassDef, out: &mut Report) {
    // Own-class duplicates.
    let mut own: HashMap<&str, SourcePos> = HashMap::new();
    for m in &class.members {
        if let Some(first) = own.get(m.name()) {
            out.push(Diagnostic::new(
                "OM011",
                m.pos(),
                format!(
                    "duplicate member `{}` in class `{}` (first declared at {})",
                    m.name(),
                    class.name,
                    first
                ),
            ));
        } else {
            own.insert(m.name(), m.pos());
        }
    }
    // Shadowing: an own member with the same name as an inherited one.
    // `effective_members` lists base-class members first.
    for (m, owner) in table.effective_members(class) {
        if *owner == *class.name {
            continue;
        }
        if own.contains_key(m.name()) {
            let own_pos = own[m.name()];
            out.push(Diagnostic::new(
                "OM012",
                own_pos,
                format!(
                    "member `{}` of `{}` shadows the inherited member declared in `{}`",
                    m.name(),
                    class.name,
                    owner
                ),
            ));
        }
    }
}

/// Collecting reference resolver (the lint twin of `scope::check_ref`):
/// reports every unresolved reference and bad call instead of stopping at
/// the first.
struct Resolver<'a, 'u> {
    table: &'a ClassTable<'u>,
    class: &'u ClassDef,
    loop_indices: Vec<String>,
    out: &'a mut Report,
}

impl Resolver<'_, '_> {
    fn check_class(&mut self) {
        for m in &self.class.members {
            match m {
                Member::Parameter {
                    default: Some(e), ..
                } => self.check_expr(e),
                Member::Variable { start: Some(e), .. } => self.check_expr(e),
                _ => {}
            }
        }
        // Only the class's *own* equations: inherited ones are linted in
        // their defining class, so each problem is reported once.
        for eq in self
            .class
            .equations
            .iter()
            .chain(&self.class.initial_equations)
        {
            self.check_equation(eq);
        }
    }

    fn check_equation(&mut self, eq: &Equation) {
        match eq {
            Equation::Simple { lhs, rhs, .. } => {
                self.check_expr(lhs);
                self.check_expr(rhs);
            }
            Equation::For { index, body, .. } => {
                self.loop_indices.push(index.clone());
                for e in body {
                    self.check_equation(e);
                }
                self.loop_indices.pop();
            }
        }
    }

    fn check_expr(&mut self, e: &SExpr) {
        match e {
            SExpr::Num(_) | SExpr::Time => {}
            SExpr::Ref(path) | SExpr::Der(path) => self.check_ref(path),
            SExpr::Call(name, args, pos) => {
                match Func::from_name(name) {
                    None => self.out.push(Diagnostic::new(
                        "OM010",
                        *pos,
                        format!("unknown function `{name}`"),
                    )),
                    Some(f) if args.len() != f.arity() => self.out.push(Diagnostic::new(
                        "OM010",
                        *pos,
                        format!(
                            "function `{name}` takes {} argument(s), got {}",
                            f.arity(),
                            args.len()
                        ),
                    )),
                    Some(_) => {}
                }
                for a in args {
                    self.check_expr(a);
                }
            }
            SExpr::Bin(_, a, b) | SExpr::Rel(_, a, b) | SExpr::And(a, b) | SExpr::Or(a, b) => {
                self.check_expr(a);
                self.check_expr(b);
            }
            SExpr::Neg(a) | SExpr::Not(a) => self.check_expr(a),
            SExpr::If(c, t, e2) => {
                self.check_expr(c);
                self.check_expr(t);
                self.check_expr(e2);
            }
            SExpr::Tuple(xs) => {
                for x in xs {
                    self.check_expr(x);
                }
            }
        }
    }

    /// Walk a dotted path through the member structure; any failure is
    /// OM010 at the path's position.
    fn check_ref(&mut self, path: &RefPath) {
        let first = &path.segs[0];
        if self.loop_indices.contains(&first.name) {
            return; // loop index; shape errors are scope::check's business
        }
        let mut current = self.class;
        for (i, seg) in path.segs.iter().enumerate() {
            for idx in &seg.indices {
                self.check_expr(idx);
            }
            let members = self.table.effective_members(current);
            let Some((member, _)) = members.iter().find(|(m, _)| m.name() == seg.name) else {
                self.out.push(Diagnostic::new(
                    "OM010",
                    path.pos,
                    format!(
                        "`{}` is not a member of class `{}` (in reference `{}`)",
                        seg.name,
                        current.name,
                        path.display()
                    ),
                ));
                return;
            };
            let is_last = i + 1 == path.segs.len();
            match member {
                Member::Parameter { .. } | Member::Variable { .. } => {
                    if !is_last {
                        self.out.push(Diagnostic::new(
                            "OM010",
                            path.pos,
                            format!(
                                "cannot select into scalar/vector `{}` in `{}`",
                                seg.name,
                                path.display()
                            ),
                        ));
                        return;
                    }
                }
                Member::Part { class, .. } => {
                    if is_last {
                        self.out.push(Diagnostic::new(
                            "OM010",
                            path.pos,
                            format!(
                                "reference `{}` names a part, not a variable",
                                path.display()
                            ),
                        ));
                        return;
                    }
                    match self.table.get(class) {
                        Some(c) => current = c,
                        None => return, // unknown part class: reported by table build
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Expression hazards: OM030 (div by 0), OM031 (sqrt/log < 0), OM032 (foldable)
// ---------------------------------------------------------------------------

/// Walk every equation of every class looking for syntactic hazards.
fn hazard_passes(unit: &Unit, out: &mut Report) {
    for class in unit.classes.iter().chain(std::iter::once(&unit.model)) {
        for eq in &class.equations {
            hazard_equation(eq, false, out);
        }
        // Initial equations assign constants by design: the
        // constant-foldable pass (OM032) would flag every one of them,
        // so only the genuine hazards run there.
        for eq in &class.initial_equations {
            hazard_equation(eq, true, out);
        }
    }
}

fn hazard_equation(eq: &Equation, in_initial: bool, out: &mut Report) {
    match eq {
        Equation::Simple { lhs, rhs, pos } => {
            hazard_expr(lhs, *pos, in_initial, out);
            hazard_expr(rhs, *pos, in_initial, out);
        }
        Equation::For { body, .. } => {
            for e in body {
                hazard_equation(e, in_initial, out);
            }
        }
    }
}

/// `pos` is the nearest enclosing position (the equation, or an inner
/// call) — `SExpr::Bin` nodes carry none of their own.
fn hazard_expr(e: &SExpr, pos: SourcePos, in_initial: bool, out: &mut Report) {
    // Topmost constant-foldable operation: flag once, don't descend.
    if !in_initial && is_foldable_op(e) {
        if let Some(v) = const_eval(e) {
            out.push(Diagnostic::new(
                "OM032",
                pos,
                format!(
                    "subexpression is constant (folds to {v}); consider writing the value directly"
                ),
            ));
            return;
        }
    }
    match e {
        SExpr::Bin(BinOp::Div, a, b) => {
            if const_eval(b) == Some(0.0) {
                out.push(Diagnostic::new(
                    "OM030",
                    pos,
                    "division by zero: denominator is the constant 0".to_string(),
                ));
            }
            hazard_expr(a, pos, in_initial, out);
            hazard_expr(b, pos, in_initial, out);
        }
        SExpr::Call(name, args, cpos) => {
            if let Some(arg) = args.first() {
                if let Some(v) = const_eval(arg) {
                    match name.as_str() {
                        "sqrt" if v < 0.0 => out.push(Diagnostic::new(
                            "OM031",
                            *cpos,
                            format!("sqrt of the negative constant {v}"),
                        )),
                        "log" | "ln" if v <= 0.0 => out.push(Diagnostic::new(
                            "OM031",
                            *cpos,
                            format!("log of the non-positive constant {v}"),
                        )),
                        _ => {}
                    }
                }
            }
            for a in args {
                hazard_expr(a, *cpos, in_initial, out);
            }
        }
        SExpr::Num(_) | SExpr::Ref(_) | SExpr::Der(_) | SExpr::Time => {}
        SExpr::Bin(_, a, b) | SExpr::Rel(_, a, b) | SExpr::And(a, b) | SExpr::Or(a, b) => {
            hazard_expr(a, pos, in_initial, out);
            hazard_expr(b, pos, in_initial, out);
        }
        SExpr::Neg(a) | SExpr::Not(a) => hazard_expr(a, pos, in_initial, out),
        SExpr::If(c, t, e2) => {
            hazard_expr(c, pos, in_initial, out);
            hazard_expr(t, pos, in_initial, out);
            hazard_expr(e2, pos, in_initial, out);
        }
        SExpr::Tuple(xs) => {
            for x in xs {
                hazard_expr(x, pos, in_initial, out);
            }
        }
    }
}

/// An *operation* node, not a bare literal or a negated literal — those
/// are how constants are written, not foldable work.
fn is_foldable_op(e: &SExpr) -> bool {
    matches!(e, SExpr::Bin(..))
}

/// Literal constant folding over `Num`/`Neg`/`Bin`. No parameter
/// resolution: only what is provably constant from the source text alone.
fn const_eval(e: &SExpr) -> Option<f64> {
    match e {
        SExpr::Num(v) => Some(*v),
        SExpr::Neg(a) => const_eval(a).map(|v| -v),
        SExpr::Bin(op, a, b) => {
            let (a, b) = (const_eval(a)?, const_eval(b)?);
            Some(match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return None; // leave it to OM030
                    }
                    a / b
                }
                BinOp::Pow => a.powf(b),
            })
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Flat-system passes: OM013, OM014, OM015, OM022
// ---------------------------------------------------------------------------

/// Structural passes on the flattened scalar system.
pub fn flat_passes(flat: &FlatModel, out: &mut Report) {
    // Distinct states whose derivative occurs in an equation.
    let der_targets = |lhs: &Expr, rhs: &Expr| -> Vec<Symbol> {
        let mut found = Vec::new();
        let mut push = |e: &Expr| {
            e.walk(&mut |n| {
                if let Expr::Der(s) = n {
                    if !found.contains(s) {
                        found.push(*s);
                    }
                }
            });
        };
        push(lhs);
        push(rhs);
        found
    };

    // OM015: two equations defining der of the same state.
    let mut deriv_def: HashMap<Symbol, SourcePos> = HashMap::new();
    let mut states: HashSet<Symbol> = HashSet::new();
    for eq in &flat.equations {
        let ders = der_targets(&eq.lhs, &eq.rhs);
        if ders.len() == 1 {
            let s = ders[0];
            states.insert(s);
            if let Some(first) = deriv_def.get(&s) {
                out.push(Diagnostic::new(
                    "OM015",
                    eq.pos,
                    format!(
                        "der({}) is already defined by the equation at {}",
                        s.name(),
                        first
                    ),
                ));
            } else {
                deriv_def.insert(s, eq.pos);
            }
        }
    }

    // Array-aware flattening keeps uniform equation groups as symbolic
    // classes; their write rows never appear as scalar der() equations,
    // so the exactly-once rule must be checked on the rows themselves.
    for (ci, class) in flat.classes.iter().enumerate() {
        // OM015 (between classes): two classes whose write rows share a
        // state — decided on the symbolic row vectors, one diagnostic
        // per offending pair, at the later class's position.
        for prev in &flat.classes[..ci] {
            if let Some(s) = om_expr::arrays::targets_overlap(&prev.states, &class.states) {
                out.push(Diagnostic::new(
                    "OM015",
                    class.pos,
                    format!(
                        "array class overlaps the one at {}: both define der({})",
                        prev.pos,
                        s.name()
                    ),
                ));
            }
        }
        // OM015 (class vs scalar equation) + state recording for OM022.
        for &s in &class.states {
            states.insert(s);
            if let Some(first) = deriv_def.get(&s) {
                out.push(Diagnostic::new(
                    "OM015",
                    class.pos,
                    format!(
                        "der({}) from array class `{}` is already defined by the equation at {}",
                        s.name(),
                        class.origin,
                        first
                    ),
                ));
            }
        }
    }

    // OM022: states without an explicit start value.
    for v in &flat.variables {
        if states.contains(&v.sym) && !v.explicit_start {
            out.push(Diagnostic::new(
                "OM022",
                v.pos,
                format!(
                    "state `{}` has no explicit start value (defaults to 0)",
                    v.sym.name()
                ),
            ));
        }
    }

    // OM014: equation/unknown balance over the whole flat system. A
    // symbolic class stands for `cardinality()` scalar equations.
    let n_eq = flat.equations.len() + flat.classes.iter().map(|c| c.cardinality()).sum::<usize>();
    let n_var = flat.variables.len();
    if n_eq != n_var {
        let mut detail = String::new();
        if n_eq < n_var {
            // Variables occurring in no equation are certainly undefined.
            let mut occurring: HashSet<Symbol> = HashSet::new();
            for eq in &flat.equations {
                eq.lhs.walk(&mut |n| collect_syms(n, &mut occurring));
                eq.rhs.walk(&mut |n| collect_syms(n, &mut occurring));
            }
            let missing: Vec<&str> = flat
                .variables
                .iter()
                .filter(|v| !occurring.contains(&v.sym))
                .map(|v| v.sym.name())
                .take(5)
                .collect();
            if !missing.is_empty() {
                detail = format!("; variable(s) in no equation: {}", missing.join(", "));
            }
        }
        out.push(Diagnostic::new(
            "OM014",
            SourcePos::default(),
            format!("system is unbalanced: {n_eq} equation(s) for {n_var} unknown(s){detail}"),
        ));
        return; // matching over an unbalanced system would double-report
    }

    // OM013: bipartite maximum matching equations ↔ unknowns on the
    // occurrence graph (Kuhn's augmenting paths). A deficiency means the
    // system is structurally singular even though it is balanced; report
    // the unmatched equations *and* the unmatched unknowns.
    //
    // With symbolic classes present the scalar occurrence graph is
    // incomplete (a class's occurrences live in its row set), and
    // expanding the rows here would defeat O(classes) linting — so the
    // matching is skipped; causalization performs the per-element
    // assignment and reports genuine singularity as OM051.
    if !flat.classes.is_empty() {
        return;
    }
    let var_index: HashMap<Symbol, usize> = flat
        .variables
        .iter()
        .enumerate()
        .map(|(i, v)| (v.sym, i))
        .collect();
    let n = n_eq;
    let mut edges: Vec<Vec<usize>> = Vec::with_capacity(n);
    for eq in &flat.equations {
        let mut occurring: HashSet<Symbol> = HashSet::new();
        eq.lhs.walk(&mut |e| collect_syms(e, &mut occurring));
        eq.rhs.walk(&mut |e| collect_syms(e, &mut occurring));
        let mut row: Vec<usize> = occurring
            .iter()
            .filter_map(|s| var_index.get(s).copied())
            .collect();
        row.sort_unstable();
        edges.push(row);
    }
    let mut match_of_var: Vec<Option<usize>> = vec![None; n];
    fn try_augment(
        eq: usize,
        edges: &[Vec<usize>],
        visited: &mut [bool],
        match_of_var: &mut [Option<usize>],
    ) -> bool {
        for &j in &edges[eq] {
            if visited[j] {
                continue;
            }
            visited[j] = true;
            match match_of_var[j] {
                None => {
                    match_of_var[j] = Some(eq);
                    return true;
                }
                Some(other) => {
                    if try_augment(other, edges, visited, match_of_var) {
                        match_of_var[j] = Some(eq);
                        return true;
                    }
                }
            }
        }
        false
    }
    let mut unmatched_eqs: Vec<usize> = Vec::new();
    for eq in 0..n {
        let mut visited = vec![false; n];
        if !try_augment(eq, &edges, &mut visited, &mut match_of_var) {
            unmatched_eqs.push(eq);
        }
    }
    if !unmatched_eqs.is_empty() {
        let unmatched_vars: Vec<&str> = match_of_var
            .iter()
            .enumerate()
            .filter(|(_, m)| m.is_none())
            .map(|(j, _)| flat.variables[j].sym.name())
            .collect();
        for &i in &unmatched_eqs {
            let eq = &flat.equations[i];
            out.push(Diagnostic::new(
                "OM013",
                eq.pos,
                format!(
                    "structurally singular: equation from `{}` cannot be assigned an unknown; unmatched unknown(s): {}",
                    eq.origin,
                    unmatched_vars.join(", ")
                ),
            ));
        }
    }
}

/// Collect variable symbols (`Var` and `Der` targets) into `set`.
fn collect_syms(e: &Expr, set: &mut HashSet<Symbol>) {
    match e {
        Expr::Var(s) | Expr::Der(s) => {
            set.insert(*s);
        }
        _ => {}
    }
}

// ---------------------------------------------------------------------------
// IR liveness passes: OM020 (unused variable), OM021 (dead equation)
// ---------------------------------------------------------------------------

/// Variables that do not (transitively) feed any derivative.
pub fn liveness_passes(ir: &om_ir::OdeIr, flat: &FlatModel, out: &mut Report) {
    let mut live: HashSet<Symbol> = ir.states.iter().map(|s| s.sym).collect();
    for d in &ir.derivs {
        for v in d.rhs.free_vars() {
            live.insert(v);
        }
    }
    // Symbolic classes: everything the template rhs or any substitution
    // row mentions feeds a derivative by construction.
    for c in &ir.classes {
        for v in c.rhs.free_vars() {
            live.insert(v);
        }
        for (row_sym, row) in &c.rows {
            live.insert(*row_sym);
            for v in row {
                live.insert(*v);
            }
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for a in &ir.algebraics {
            if live.contains(&a.var) {
                for v in a.rhs.free_vars() {
                    if live.insert(v) {
                        changed = true;
                    }
                }
            }
        }
    }
    for a in &ir.algebraics {
        if !live.contains(&a.var) {
            let pos = flat
                .variable(a.var.name())
                .map(|v| v.pos)
                .unwrap_or_default();
            out.push(Diagnostic::new(
                "OM020",
                pos,
                format!("variable `{}` does not affect any derivative", a.var.name()),
            ));
            out.push(Diagnostic::new(
                "OM021",
                a.pos,
                format!(
                    "dead equation: defines `{}`, which is never used",
                    a.var.name()
                ),
            ));
        }
    }
}
