//! Span-carrying diagnostics: stable codes, severities, and the text and
//! JSON renderers.
//!
//! Every diagnostic carries a stable `OM0xx` code so fixtures, CI greps,
//! and downstream tooling can match on them; the human-readable message
//! is free to improve without breaking anything.

use om_lang::SourcePos;
use std::fmt;

/// Diagnostic severity, ordered `Info < Warn < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Info,
    Warn,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Registry entry for one diagnostic code.
#[derive(Clone, Copy, Debug)]
pub struct CodeInfo {
    pub code: &'static str,
    pub severity: Severity,
    pub summary: &'static str,
    /// One-paragraph explanation for `omc lint --explain`.
    pub explain: &'static str,
    /// Minimal triggering example. When it starts with `model` or
    /// `class` it is lintable source that fires the code (cross-checked
    /// by a test); schedule-level codes, which well-formed source cannot
    /// trigger, describe the synthetic schedule instead.
    pub example: &'static str,
}

/// The full table of diagnostic codes. The default severity here is what
/// [`Diagnostic::new`] assigns; it is part of the stable interface
/// documented in DESIGN.md.
pub const CODES: &[CodeInfo] = &[
    CodeInfo {
        code: "OM001",
        severity: Severity::Error,
        summary: "parse error",
        explain: "The source text could not be lexed or parsed. Nothing downstream \
                  of the parser runs; fix the syntax error first.",
        example: "model P;\n  Real x\nequation\n  der(x) = -x;\nend P;",
    },
    CodeInfo {
        code: "OM002",
        severity: Severity::Error,
        summary: "flattening failed",
        explain: "The class tree could not be flattened into a scalar equation \
                  system — most commonly a constant array index outside the \
                  declared dimension, or an unsupported binding. The position \
                  points at the defining class.",
        example: "model O; Real[3] u(start=0.1);\nequation\n  der(u[1]) = -u[1];\n  der(u[2]) = -u[2];\n  der(u[3]) = -u[4];\nend O;",
    },
    CodeInfo {
        code: "OM010",
        severity: Severity::Error,
        summary: "unresolved reference or unknown function",
        explain: "An equation references a name that is not a member of the class \
                  (or of the part it selects into), or calls a function the \
                  expression language does not define. Every unresolved reference \
                  in the model is reported, not just the first.",
        example: "model U; Real x(start=1.0);\nequation\n  der(x) = -x + missing;\nend U;",
    },
    CodeInfo {
        code: "OM011",
        severity: Severity::Error,
        summary: "duplicate member in one class",
        explain: "The same member name is declared twice in one class body. The \
                  diagnostic points at the second declaration and names the first.",
        example: "model D;\n  Real x(start=1.0);\n  Real x;\nequation\n  der(x) = -x;\nend D;",
    },
    CodeInfo {
        code: "OM012",
        severity: Severity::Error,
        summary: "member shadows an inherited member",
        explain: "A derived class re-declares a member it already inherits via \
                  `extends`. Shadowing silently splits what reads as one variable \
                  into two; rename one of them.",
        example: "class Base;\n  Real x(start=1.0);\nequation\n  der(x) = -x;\nend Base;\n\nmodel Sh extends Base;\n  Real x(start=2.0);\nend Sh;",
    },
    CodeInfo {
        code: "OM013",
        severity: Severity::Error,
        summary: "structurally singular (unmatched equations/unknowns)",
        explain: "The system is balanced but no perfect matching exists between \
                  equations and unknowns on the occurrence graph — some unknown is \
                  over-determined and another never determined. The diagnostic \
                  lists the unmatched equations and unknowns from the bipartite \
                  matching.",
        example: "model S;\n  Real x(start=1.0);\n  Real a;\n  Real b;\nequation\n  der(x) = -x + a;\n  a = x + 1.0;\n  a = x - 1.0;\nend S;",
    },
    CodeInfo {
        code: "OM014",
        severity: Severity::Error,
        summary: "unbalanced system (equations vs unknowns)",
        explain: "The flattened system has a different number of equations and \
                  unknowns (array classes count once per iteration). When \
                  equations are missing, variables occurring in no equation are \
                  listed as the likely culprits.",
        example: "model B;\n  Real x(start=1.0);\n  Real extra;\nequation\n  der(x) = -x;\nend B;",
    },
    CodeInfo {
        code: "OM015",
        severity: Severity::Error,
        summary: "duplicate derivative definition",
        explain: "Two equations (or two array-equation classes, or a class and a \
                  scalar equation) both define der(x) for the same state. Each \
                  state's derivative must be written exactly once.",
        example: "model DD;\n  Real x(start=1.0);\n  Real y(start=0.0);\nequation\n  der(x) = -x;\n  der(x) = x + y;\nend DD;",
    },
    CodeInfo {
        code: "OM020",
        severity: Severity::Warn,
        summary: "unused variable (affects no derivative)",
        explain: "The variable is computed but feeds no derivative, directly or \
                  transitively — it cannot influence the simulation result.",
        example: "model UV;\n  Real x(start=1.0);\n  Real dead;\nequation\n  der(x) = -x;\n  dead = x * 2.0;\nend UV;",
    },
    CodeInfo {
        code: "OM021",
        severity: Severity::Warn,
        summary: "dead equation (defines an unused variable)",
        explain: "The equation defines a variable that OM020 found unused; the \
                  equation is dead work evaluated on every right-hand side call.",
        example: "model UV;\n  Real x(start=1.0);\n  Real dead;\nequation\n  der(x) = -x;\n  dead = x * 2.0;\nend UV;",
    },
    CodeInfo {
        code: "OM022",
        severity: Severity::Info,
        summary: "state has no explicit start value",
        explain: "A state variable has no `start` attribute and silently \
                  integrates from 0. Make the initial condition explicit.",
        example: "model UI;\n  Real x;\n  Real v(start=0.5);\nequation\n  der(x) = v;\n  der(v) = -x;\nend UI;",
    },
    CodeInfo {
        code: "OM030",
        severity: Severity::Warn,
        summary: "division by a constant zero",
        explain: "A denominator is syntactically the constant 0 — the expression \
                  is non-finite at every evaluation.",
        example: "model DZ;\n  Real x(start=1.0);\nequation\n  der(x) = -x / 0.0;\nend DZ;",
    },
    CodeInfo {
        code: "OM031",
        severity: Severity::Warn,
        summary: "sqrt/log of a provably negative constant",
        explain: "sqrt or log is applied to a constant that folds to a value \
                  outside the function's domain, producing NaN at every \
                  evaluation.",
        example: "model SN;\n  Real x(start=1.0);\nequation\n  der(x) = -x + sqrt(-4.0);\nend SN;",
    },
    CodeInfo {
        code: "OM032",
        severity: Severity::Info,
        summary: "constant-foldable subexpression",
        explain: "A subexpression is constant and folds at compile time; writing \
                  the value directly states intent and avoids repeated work in \
                  interpreters that do not fold.",
        example: "model CF;\n  Real x(start=1.0);\nequation\n  der(x) = -(2.0 + 3.0) * x;\nend CF;",
    },
    CodeInfo {
        code: "OM040",
        severity: Severity::Error,
        summary: "write-write race between same-level tasks",
        explain: "Two tasks the executor may run concurrently (same barrier \
                  level, or no dependency path at edge granularity) write the \
                  same output slot — the final value depends on scheduling. The \
                  array-aware pipeline decides this symbolically via the \
                  dependence-test lattice (exact Diophantine, Banerjee, GCD) \
                  without expanding loop tasks.",
        example: "(synthetic schedule) tasks `a` and `b` in one parallel level, both writing deriv[0];\nor two loop tasks with overlapping affine write maps 0+1·k and 15+1·k.",
    },
    CodeInfo {
        code: "OM041",
        severity: Severity::Error,
        summary: "read-write race between same-level tasks",
        explain: "A concurrency-eligible pair writes and reads the same shared \
                  intermediate slot; the reader may observe the value before or \
                  after the write depending on scheduling. State reads never \
                  conflict — the state vector is frozen during a right-hand-side \
                  evaluation.",
        example: "(synthetic schedule) task `p` writes shared[0] in the same parallel level\nas task `c`, which reads shared[0] — with no dependency edge ordering them.",
    },
    CodeInfo {
        code: "OM042",
        severity: Severity::Error,
        summary: "coverage violation (slot not written exactly once)",
        explain: "Across the whole task graph, some derivative or shared slot is \
                  written zero times or more than once — the schedule does not \
                  implement the equation system (every equation must live in \
                  exactly one task). Checked symbolically on loop-task write \
                  patterns: injectivity, pairwise disjointness, and pigeonhole \
                  coverage of the slot range.",
        example: "(synthetic schedule) dim = 9 but the only loop task writes the affine\nrange 0+1·k (k < 8): deriv[8] has no writer.",
    },
    CodeInfo {
        code: "OM043",
        severity: Severity::Warn,
        summary: "false dependency (edge not justified by dataflow)",
        explain: "A dependency edge orders two tasks although the dependent task \
                  reads nothing its predecessor writes. The schedule is still \
                  correct, but the edge throttles parallelism for no gain.",
        example: "(synthetic schedule) task `b` depends on task `a`, but `a` writes only\nderiv slots and `b` reads no shared slot `a` produces.",
    },
    CodeInfo {
        code: "OM050",
        severity: Severity::Error,
        summary: "compilable-subset violation",
        explain: "The causalized system falls outside the subset the code \
                  generator can translate: a leftover derivative marker or tuple, \
                  a non-finite constant, an unknown symbol, or a broken \
                  states/derivs layout (including array-class row invariants).",
        example: "model NF;\n  Real x(start=1.0);\n  parameter Real k = 1.0 / 0.0;\nequation\n  der(x) = -k * x;\nend NF;",
    },
    CodeInfo {
        code: "OM051",
        severity: Severity::Error,
        summary: "causalization failed",
        explain: "Equation sorting failed in a way the structural passes did not \
                  already explain — typically an algebraic loop (mutually \
                  dependent algebraic equations), which the paper's pipeline \
                  does not solve.",
        example: "model AL;\n  Real x(start=1.0);\n  Real a;\n  Real b;\nequation\n  der(x) = a;\n  a = b + x;\n  b = a - x;\nend AL;",
    },
    CodeInfo {
        code: "OM060",
        severity: Severity::Info,
        summary: "array equation scalarized (no uniform class)",
        explain: "An array equation group could not be kept symbolic under \
                  array-aware flattening (non-uniform index pattern, row \
                  conflict, or unstable ordering) and fell back to element-wise \
                  scalarization. Results are bitwise identical; only compile \
                  scaling is lost.",
        example: "model N; Real[6] u(start=0.2);\nequation\n  der(u[1]) = -u[1];\n  for i in 2:5 loop\n    der(u[i]) = 4.5*u[i-1] - 8.0*u[i] + 3.5*u[1] * i;\n  end for;\n  der(u[6]) = -u[6];\nend N;",
    },
    CodeInfo {
        code: "OM070",
        severity: Severity::Error,
        summary: "loop-carried dependence in a parallel loop task",
        explain: "Inside a single array-loop task, iteration k reads a slot that \
                  iteration k−d writes (decided on the symbolic per-iteration \
                  affine maps). The task's iterations are executed in parallel \
                  chunks, so the read may observe the old value. Only the \
                  symbolic engine can express this: expansion flattens the \
                  iteration structure away.",
        example: "(synthetic schedule) one loop task whose write map is 8+1·k and whose\nread map over the same space is 7+1·k: iteration k reads what k-1 wrote.",
    },
    CodeInfo {
        code: "OM071",
        severity: Severity::Error,
        summary: "array index out of bounds for some loop iteration",
        explain: "Interval abstract interpretation of an affine index over the \
                  loop's trip range proves the index escapes the declared array \
                  dimension at some iteration (the diagnostic names it). \
                  Relational if-guards on the loop variable refine the interval, \
                  so guarded boundary stencils lint clean.",
        example: "model O; Real[8] u(start=0.1);\nequation\n  der(u[1]) = -u[1];\n  for i in 2:8 loop der(u[i]) = u[i-1] + u[i+1]; end for;\nend O;",
    },
    CodeInfo {
        code: "OM072",
        severity: Severity::Warn,
        summary: "loop-carried recurrence serializes a for-equation group",
        explain: "An algebraic for-equation defines w[i] from w[i±d] of the same \
                  group: each iteration depends on another one's result, so the \
                  group can never become a parallel array class — it serializes \
                  or scalarizes. Derivative stencils (der(u[i]) from u[i−1]) are \
                  exempt: state reads see the frozen state vector.",
        example: "model R; Real x(start=1.0); Real[4] w;\nequation\n  der(x) = -x;\n  w[1] = x;\n  for i in 2:4 loop w[i] = 0.5*w[i-1]; end for;\nend R;",
    },
];

/// Look up the registry entry for a code.
pub fn code_info(code: &str) -> Option<&'static CodeInfo> {
    CODES.iter().find(|c| c.code == code)
}

/// One finding: stable code, severity, position, message.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    pub code: &'static str,
    pub severity: Severity,
    /// `0:0` (the `SourcePos` default) means "no source position" —
    /// schedule-level diagnostics refer to generated tasks, not lines.
    pub pos: SourcePos,
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic with the code's registered default severity.
    ///
    /// Panics in debug builds if `code` is not in [`CODES`]; unknown
    /// codes fall back to `Error` in release builds.
    pub fn new(code: &'static str, pos: SourcePos, message: impl Into<String>) -> Diagnostic {
        let severity = match code_info(code) {
            Some(info) => info.severity,
            None => {
                debug_assert!(false, "diagnostic code `{code}` is not registered");
                Severity::Error
            }
        };
        Diagnostic {
            code,
            severity,
            pos,
            message: message.into(),
        }
    }
}

/// How the generated schedule was verified, for the report footer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleSummary {
    /// Flattening mode the schedule came from: `"oracle"` or `"array-aware"`.
    pub mode: &'static str,
    /// Which engine produced the verdicts: `"concrete"` for the expanded
    /// detector, `"symbolic"` when the affine screens proved the schedule
    /// clean without expansion, `"symbolic (expanded)"` when a screen hit
    /// forced expansion to pinpoint concrete diagnostics.
    pub engine: &'static str,
    /// Total tasks in the verified graph.
    pub tasks: usize,
    /// How many of those are symbolic loop tasks (0 in oracle mode).
    pub loop_tasks: usize,
}

/// The result of a lint run: an ordered list of diagnostics.
#[derive(Clone, Debug, Default)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    /// Set iff the pipeline got far enough to verify a generated schedule.
    pub schedule: Option<ScheduleSummary>,
}

impl Report {
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Does any diagnostic carry this code?
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Sorted, deduplicated list of codes present in the report.
    pub fn distinct_codes(&self) -> Vec<&'static str> {
        let mut codes: Vec<&'static str> = self.diagnostics.iter().map(|d| d.code).collect();
        codes.sort_unstable();
        codes.dedup();
        codes
    }

    /// Order diagnostics by source position (position-less ones last),
    /// then by code. The sort is stable, so same-position diagnostics
    /// keep pass order.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by_key(|d| (d.pos == SourcePos::default(), d.pos.line, d.pos.col, d.code));
    }

    /// Render as one `file:line:col: severity[CODE]: message` line per
    /// diagnostic plus a summary line.
    pub fn render_text(&self, file: &str) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            if d.pos == SourcePos::default() {
                out.push_str(&format!(
                    "{file}: {}[{}]: {}\n",
                    d.severity, d.code, d.message
                ));
            } else {
                out.push_str(&format!(
                    "{file}:{}:{}: {}[{}]: {}\n",
                    d.pos.line, d.pos.col, d.severity, d.code, d.message
                ));
            }
        }
        if let Some(s) = &self.schedule {
            out.push_str(&format!(
                "{file}: schedule verified: {} ({}, {} task(s), {} loop task(s))\n",
                s.mode, s.engine, s.tasks, s.loop_tasks
            ));
        }
        out.push_str(&format!(
            "{file}: {} error(s), {} warning(s), {} info\n",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        ));
        out
    }

    /// Render as a single machine-readable JSON object (schema in
    /// DESIGN.md): `{"file", "diagnostics": [...], "summary": {...}}`.
    /// Positions use 1-based line/col; 0 means "no position".
    pub fn render_json(&self, file: &str) -> String {
        let mut out = String::new();
        out.push_str("{\"file\":\"");
        out.push_str(&json_escape(file));
        out.push_str("\",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
                d.code,
                d.severity,
                d.pos.line,
                d.pos.col,
                json_escape(&d.message)
            ));
        }
        out.push(']');
        if let Some(s) = &self.schedule {
            out.push_str(&format!(
                ",\"schedule\":{{\"mode\":\"{}\",\"engine\":\"{}\",\"tasks\":{},\"loop_tasks\":{}}}",
                s.mode, s.engine, s.tasks, s.loop_tasks
            ));
        }
        out.push_str(&format!(
            ",\"summary\":{{\"error\":{},\"warning\":{},\"info\":{}}}}}",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        ));
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_well_formed() {
        let mut seen = std::collections::HashSet::new();
        for c in CODES {
            assert!(seen.insert(c.code), "duplicate code {}", c.code);
            assert!(c.code.starts_with("OM") && c.code.len() == 5, "{}", c.code);
        }
    }

    #[test]
    fn new_uses_registered_severity() {
        let d = Diagnostic::new("OM030", SourcePos::new(3, 7), "1/0");
        assert_eq!(d.severity, Severity::Warn);
        let d = Diagnostic::new("OM013", SourcePos::default(), "singular");
        assert_eq!(d.severity, Severity::Error);
    }

    #[test]
    fn text_render_includes_position_and_summary() {
        let mut r = Report::default();
        r.push(Diagnostic::new(
            "OM030",
            SourcePos::new(3, 7),
            "division by zero",
        ));
        let text = r.render_text("m.om");
        assert!(text.contains("m.om:3:7: warning[OM030]: division by zero"));
        assert!(text.contains("0 error(s), 1 warning(s), 0 info"));
    }

    #[test]
    fn json_render_escapes_and_counts() {
        let mut r = Report::default();
        r.push(Diagnostic::new(
            "OM010",
            SourcePos::new(1, 2),
            "bad \"name\"",
        ));
        let json = r.render_json("a\\b.om");
        assert!(json.contains("\"file\":\"a\\\\b.om\""));
        assert!(json.contains("\"message\":\"bad \\\"name\\\"\""));
        assert!(json.contains("\"summary\":{\"error\":1,\"warning\":0,\"info\":0}"));
    }

    #[test]
    fn sort_puts_positionless_last() {
        let mut r = Report::default();
        r.push(Diagnostic::new("OM040", SourcePos::default(), "race"));
        r.push(Diagnostic::new("OM030", SourcePos::new(2, 1), "hazard"));
        r.sort();
        assert_eq!(r.diagnostics[0].code, "OM030");
        assert_eq!(r.diagnostics[1].code, "OM040");
    }
}
