//! Span-carrying diagnostics: stable codes, severities, and the text and
//! JSON renderers.
//!
//! Every diagnostic carries a stable `OM0xx` code so fixtures, CI greps,
//! and downstream tooling can match on them; the human-readable message
//! is free to improve without breaking anything.

use om_lang::SourcePos;
use std::fmt;

/// Diagnostic severity, ordered `Info < Warn < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Info,
    Warn,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Registry entry for one diagnostic code.
#[derive(Clone, Copy, Debug)]
pub struct CodeInfo {
    pub code: &'static str,
    pub severity: Severity,
    pub summary: &'static str,
}

/// The full table of diagnostic codes. The default severity here is what
/// [`Diagnostic::new`] assigns; it is part of the stable interface
/// documented in DESIGN.md.
pub const CODES: &[CodeInfo] = &[
    CodeInfo {
        code: "OM001",
        severity: Severity::Error,
        summary: "parse error",
    },
    CodeInfo {
        code: "OM002",
        severity: Severity::Error,
        summary: "flattening failed",
    },
    CodeInfo {
        code: "OM010",
        severity: Severity::Error,
        summary: "unresolved reference or unknown function",
    },
    CodeInfo {
        code: "OM011",
        severity: Severity::Error,
        summary: "duplicate member in one class",
    },
    CodeInfo {
        code: "OM012",
        severity: Severity::Error,
        summary: "member shadows an inherited member",
    },
    CodeInfo {
        code: "OM013",
        severity: Severity::Error,
        summary: "structurally singular (unmatched equations/unknowns)",
    },
    CodeInfo {
        code: "OM014",
        severity: Severity::Error,
        summary: "unbalanced system (equations vs unknowns)",
    },
    CodeInfo {
        code: "OM015",
        severity: Severity::Error,
        summary: "duplicate derivative definition",
    },
    CodeInfo {
        code: "OM020",
        severity: Severity::Warn,
        summary: "unused variable (affects no derivative)",
    },
    CodeInfo {
        code: "OM021",
        severity: Severity::Warn,
        summary: "dead equation (defines an unused variable)",
    },
    CodeInfo {
        code: "OM022",
        severity: Severity::Info,
        summary: "state has no explicit start value",
    },
    CodeInfo {
        code: "OM030",
        severity: Severity::Warn,
        summary: "division by a constant zero",
    },
    CodeInfo {
        code: "OM031",
        severity: Severity::Warn,
        summary: "sqrt/log of a provably negative constant",
    },
    CodeInfo {
        code: "OM032",
        severity: Severity::Info,
        summary: "constant-foldable subexpression",
    },
    CodeInfo {
        code: "OM040",
        severity: Severity::Error,
        summary: "write-write race between same-level tasks",
    },
    CodeInfo {
        code: "OM041",
        severity: Severity::Error,
        summary: "read-write race between same-level tasks",
    },
    CodeInfo {
        code: "OM042",
        severity: Severity::Error,
        summary: "coverage violation (slot not written exactly once)",
    },
    CodeInfo {
        code: "OM043",
        severity: Severity::Warn,
        summary: "false dependency (edge not justified by dataflow)",
    },
    CodeInfo {
        code: "OM050",
        severity: Severity::Error,
        summary: "compilable-subset violation",
    },
    CodeInfo {
        code: "OM051",
        severity: Severity::Error,
        summary: "causalization failed",
    },
    CodeInfo {
        code: "OM060",
        severity: Severity::Info,
        summary: "array equation scalarized (no uniform class)",
    },
];

/// Look up the registry entry for a code.
pub fn code_info(code: &str) -> Option<&'static CodeInfo> {
    CODES.iter().find(|c| c.code == code)
}

/// One finding: stable code, severity, position, message.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    pub code: &'static str,
    pub severity: Severity,
    /// `0:0` (the `SourcePos` default) means "no source position" —
    /// schedule-level diagnostics refer to generated tasks, not lines.
    pub pos: SourcePos,
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic with the code's registered default severity.
    ///
    /// Panics in debug builds if `code` is not in [`CODES`]; unknown
    /// codes fall back to `Error` in release builds.
    pub fn new(code: &'static str, pos: SourcePos, message: impl Into<String>) -> Diagnostic {
        let severity = match code_info(code) {
            Some(info) => info.severity,
            None => {
                debug_assert!(false, "diagnostic code `{code}` is not registered");
                Severity::Error
            }
        };
        Diagnostic {
            code,
            severity,
            pos,
            message: message.into(),
        }
    }
}

/// The result of a lint run: an ordered list of diagnostics.
#[derive(Clone, Debug, Default)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Does any diagnostic carry this code?
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Sorted, deduplicated list of codes present in the report.
    pub fn distinct_codes(&self) -> Vec<&'static str> {
        let mut codes: Vec<&'static str> = self.diagnostics.iter().map(|d| d.code).collect();
        codes.sort_unstable();
        codes.dedup();
        codes
    }

    /// Order diagnostics by source position (position-less ones last),
    /// then by code. The sort is stable, so same-position diagnostics
    /// keep pass order.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by_key(|d| (d.pos == SourcePos::default(), d.pos.line, d.pos.col, d.code));
    }

    /// Render as one `file:line:col: severity[CODE]: message` line per
    /// diagnostic plus a summary line.
    pub fn render_text(&self, file: &str) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            if d.pos == SourcePos::default() {
                out.push_str(&format!(
                    "{file}: {}[{}]: {}\n",
                    d.severity, d.code, d.message
                ));
            } else {
                out.push_str(&format!(
                    "{file}:{}:{}: {}[{}]: {}\n",
                    d.pos.line, d.pos.col, d.severity, d.code, d.message
                ));
            }
        }
        out.push_str(&format!(
            "{file}: {} error(s), {} warning(s), {} info\n",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        ));
        out
    }

    /// Render as a single machine-readable JSON object (schema in
    /// DESIGN.md): `{"file", "diagnostics": [...], "summary": {...}}`.
    /// Positions use 1-based line/col; 0 means "no position".
    pub fn render_json(&self, file: &str) -> String {
        let mut out = String::new();
        out.push_str("{\"file\":\"");
        out.push_str(&json_escape(file));
        out.push_str("\",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
                d.code,
                d.severity,
                d.pos.line,
                d.pos.col,
                json_escape(&d.message)
            ));
        }
        out.push_str(&format!(
            "],\"summary\":{{\"error\":{},\"warning\":{},\"info\":{}}}}}",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        ));
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_well_formed() {
        let mut seen = std::collections::HashSet::new();
        for c in CODES {
            assert!(seen.insert(c.code), "duplicate code {}", c.code);
            assert!(c.code.starts_with("OM") && c.code.len() == 5, "{}", c.code);
        }
    }

    #[test]
    fn new_uses_registered_severity() {
        let d = Diagnostic::new("OM030", SourcePos::new(3, 7), "1/0");
        assert_eq!(d.severity, Severity::Warn);
        let d = Diagnostic::new("OM013", SourcePos::default(), "singular");
        assert_eq!(d.severity, Severity::Error);
    }

    #[test]
    fn text_render_includes_position_and_summary() {
        let mut r = Report::default();
        r.push(Diagnostic::new(
            "OM030",
            SourcePos::new(3, 7),
            "division by zero",
        ));
        let text = r.render_text("m.om");
        assert!(text.contains("m.om:3:7: warning[OM030]: division by zero"));
        assert!(text.contains("0 error(s), 1 warning(s), 0 info"));
    }

    #[test]
    fn json_render_escapes_and_counts() {
        let mut r = Report::default();
        r.push(Diagnostic::new(
            "OM010",
            SourcePos::new(1, 2),
            "bad \"name\"",
        ));
        let json = r.render_json("a\\b.om");
        assert!(json.contains("\"file\":\"a\\\\b.om\""));
        assert!(json.contains("\"message\":\"bad \\\"name\\\"\""));
        assert!(json.contains("\"summary\":{\"error\":1,\"warning\":0,\"info\":0}"));
    }

    #[test]
    fn sort_puts_positionless_last() {
        let mut r = Report::default();
        r.push(Diagnostic::new("OM040", SourcePos::default(), "race"));
        r.push(Diagnostic::new("OM030", SourcePos::new(2, 1), "hazard"));
        r.sort();
        assert_eq!(r.diagnostics[0].code, "OM030");
        assert_eq!(r.diagnostics[1].code, "OM040");
    }
}
