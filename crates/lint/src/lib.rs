//! # om-lint — whole-model static analyzer and schedule race detector
//!
//! The compiler pipeline (parse → flatten → causalize → verify →
//! codegen → schedule) trusts its own analysis; this crate is the
//! independent check. It runs two analyzer families over a model and
//! reports span-carrying diagnostics with stable `OM0xx` codes
//! (see [`diag::CODES`]):
//!
//! * **Model passes** ([`model`]) on the AST, the flattened system, and
//!   the causalized IR: symbol resolution, duplicate/shadowed members,
//!   structural singularity via bipartite matching (reporting the
//!   unmatched set), balance, duplicate derivatives, uninitialized
//!   states, unused variables / dead equations, and expression hazards.
//!   The existing `om_ir::verify` checks fold in as a pass
//!   ([`om_ir::verify_all`] → `OM050`).
//! * **Schedule passes** ([`schedule`]) on the generated task DAG: a
//!   race detector over per-task read/write sets at *edge granularity*
//!   (any dependency-unordered pair, the concurrency the work-stealing
//!   executor permits — which subsumes the barrier executor's
//!   level granularity), an exactly-once coverage check, and a
//!   false-dependency report.
//!
//! Entry point: [`lint_source`]. Every diagnostic is also counted into
//! the `om-obs` metrics registry (`lint.code.*`, `lint.severity.*`) so
//! `--metrics` output covers compile-time analysis.

pub mod diag;
pub mod loops;
pub mod model;
pub mod schedule;
pub mod sym;

pub use diag::{code_info, CodeInfo, Diagnostic, Report, ScheduleSummary, Severity, CODES};
pub use schedule::{check_schedule, check_schedule_at, Granularity, ScheduleView, TaskAccess};
pub use sym::{check_schedule_sym, LoopMaps, Space, SymOutcome, SymScheduleView, SymTaskAccess};

use om_codegen::{CodeGenerator, GenOptions};
use om_ir::causalize::CausalizeError;
use om_lang::SourcePos;

/// A stage of the lint pipeline, for the pass registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    Parse,
    Ast,
    Flat,
    Ir,
    Schedule,
}

/// Registry entry describing one pass: which stage it runs in and which
/// codes it can emit. Documented in DESIGN.md; kept in code so the docs
/// cannot drift silently (a test cross-checks codes against
/// [`diag::CODES`]).
pub struct PassInfo {
    pub name: &'static str,
    pub stage: Stage,
    pub codes: &'static [&'static str],
    pub description: &'static str,
}

/// All passes, in execution order.
pub const PASSES: &[PassInfo] = &[
    PassInfo {
        name: "parse",
        stage: Stage::Parse,
        codes: &["OM001"],
        description: "lex + parse; a failure stops the run",
    },
    PassInfo {
        name: "symbols",
        stage: Stage::Ast,
        codes: &["OM010", "OM011", "OM012"],
        description: "reference resolution, duplicate and shadowed members across inheritance/composition",
    },
    PassInfo {
        name: "hazards",
        stage: Stage::Ast,
        codes: &["OM030", "OM031", "OM032"],
        description: "syntactic division by zero, sqrt/log of negative constants, constant-foldable subexpressions",
    },
    PassInfo {
        name: "loops",
        stage: Stage::Ast,
        codes: &["OM071", "OM072"],
        description: "interval abstract interpretation of for-equation indices (out-of-bounds at some iteration, with if-guard refinement) and loop-carried algebraic recurrences",
    },
    PassInfo {
        name: "structure",
        stage: Stage::Flat,
        codes: &["OM013", "OM014", "OM015", "OM022"],
        description: "equation/unknown balance, bipartite matching (unmatched set), duplicate derivatives, uninitialized states",
    },
    PassInfo {
        name: "flatten",
        stage: Stage::Flat,
        codes: &["OM002"],
        description: "flattening failures (positions point at the defining class)",
    },
    PassInfo {
        name: "arrays",
        stage: Stage::Flat,
        codes: &["OM060"],
        description: "array equations that fall back to scalarization under array-aware flattening (non-uniform index pattern, row conflicts, unstable ordering)",
    },
    PassInfo {
        name: "causalize",
        stage: Stage::Ir,
        codes: &["OM051"],
        description: "causalization failures not already reported structurally",
    },
    PassInfo {
        name: "verify",
        stage: Stage::Ir,
        codes: &["OM050"],
        description: "compilable-subset verifier (om_ir::verify_all) folded in as a pass",
    },
    PassInfo {
        name: "liveness",
        stage: Stage::Ir,
        codes: &["OM020", "OM021"],
        description: "variables that feed no derivative; the equations that define them",
    },
    PassInfo {
        name: "schedule",
        stage: Stage::Schedule,
        codes: &["OM040", "OM041", "OM042", "OM043", "OM070"],
        description: "race detection at edge granularity (no-barrier safe), exactly-once coverage, false dependencies; in array-aware mode decided symbolically on affine access maps (exact/Banerjee/GCD lattice) plus loop-carried dependence detection inside loop tasks",
    },
];

/// Options for [`lint_source_with`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LintOptions {
    /// Lint the array-aware compilation pipeline: flatten with symbolic
    /// array classes, carry them through causalization and codegen, and
    /// verify the resulting loop-task schedule with the symbolic affine
    /// engine ([`check_schedule_sym`]) instead of the oracle (scalarized)
    /// schedule. Default `false` lints the oracle pipeline.
    pub array_aware: bool,
}

/// Lint a source text end to end. Never panics on malformed input: every
/// failure mode is a diagnostic. Later stages are skipped once an
/// earlier stage reports an error (their input would be meaningless).
pub fn lint_source(source: &str) -> Report {
    lint_source_with(source, LintOptions::default())
}

/// [`lint_source`] with explicit [`LintOptions`].
pub fn lint_source_with(source: &str, opts: LintOptions) -> Report {
    let mut report = Report::default();
    run_pipeline(source, opts, &mut report);
    report.sort();
    record_metrics(&report);
    report
}

fn run_pipeline(source: &str, opts: LintOptions, report: &mut Report) {
    // Stage 1: parse.
    let unit = match om_lang::parse_unit(source) {
        Ok(u) => u,
        Err(e) => {
            report.push(Diagnostic::new(
                "OM001",
                e.pos.unwrap_or_default(),
                e.message,
            ));
            return;
        }
    };

    // Stage 2: AST passes (symbols, member conflicts, hazards).
    model::ast_passes(&unit, report);
    if report.has_errors() {
        return;
    }

    // The collecting resolver covers references and calls; scope::check
    // additionally validates binding targets, loop ranges, and index
    // shapes. Anything it finds that we missed becomes an OM010.
    if let Err(e) = om_lang::scope::check(&unit) {
        report.push(Diagnostic::new(
            "OM010",
            e.pos.unwrap_or_default(),
            e.message,
        ));
        return;
    }

    // Loop passes: prove every for-equation index in range over the whole
    // trip count (interval abstract interpretation with if-guard
    // refinement) and flag loop-carried algebraic recurrences. An OM071
    // is an out-of-bounds access at some iteration — flattening the model
    // would either fail or fabricate slots, so stop here.
    loops::loop_passes(&unit, report);
    if report.has_errors() {
        return;
    }

    // Stage 3: flatten + structural passes. Array-aware mode flattens
    // with symbolic array classes (the pipeline under test is the one
    // that compiles in O(classes), not O(elements)); oracle mode
    // scalarizes as before.
    let flat = if opts.array_aware {
        match om_lang::flatten_arrays(&unit) {
            Ok(f) => f,
            Err(e) => {
                report.push(Diagnostic::new(
                    "OM002",
                    e.pos.unwrap_or_default(),
                    e.message,
                ));
                return;
            }
        }
    } else {
        match om_lang::flatten(&unit) {
            Ok(f) => f,
            Err(e) => {
                report.push(Diagnostic::new(
                    "OM002",
                    e.pos.unwrap_or_default(),
                    e.message,
                ));
                return;
            }
        }
    };
    model::flat_passes(&flat, report);

    // Arrays pass: report any equation group that *could not* be kept
    // symbolic under array-aware flattening. These are Info — the
    // fallback is bitwise-equivalent, just compiled element-wise. In
    // aware mode the fallbacks are already on `flat`; in oracle mode we
    // re-flatten to learn them.
    if opts.array_aware {
        for fb in &flat.class_fallbacks {
            report.push(Diagnostic::new(
                "OM060",
                fb.pos,
                format!("`{}` scalarized: {}", fb.origin, fb.reason),
            ));
        }
    } else if let Ok(aware) = om_lang::flatten_arrays(&unit) {
        for fb in &aware.class_fallbacks {
            report.push(Diagnostic::new(
                "OM060",
                fb.pos,
                format!("`{}` scalarized: {}", fb.origin, fb.reason),
            ));
        }
    }

    // Stage 4: causalize + IR passes.
    let ir = match om_ir::causalize(&flat) {
        Ok(ir) => ir,
        Err(e) => {
            // The structural passes already report these three richer
            // (with the unmatched set and positions); don't double up.
            let already = match &e {
                CausalizeError::UnbalancedSystem { .. } => report.has_code("OM014"),
                CausalizeError::StructurallySingular { .. } => report.has_code("OM013"),
                CausalizeError::DuplicateDerivative { .. } => report.has_code("OM015"),
                _ => false,
            };
            if !already {
                report.push(Diagnostic::new(
                    "OM051",
                    e.pos().unwrap_or_default(),
                    e.to_string(),
                ));
            }
            return;
        }
    };

    for v in om_ir::verify_all(&ir) {
        report.push(Diagnostic::new("OM050", v.pos, v.error.to_string()));
    }
    model::liveness_passes(&ir, &flat, report);
    if report.has_code("OM050") {
        return; // don't generate code from unverified IR
    }

    // Stage 5: schedule passes on the generated task DAG. Edge
    // granularity throughout: the verdict must license the work-stealing
    // executor (no barrier), which also covers the barrier executor.
    let program = CodeGenerator::new(GenOptions::default()).generate(&ir);
    let n_tasks = program.graph.tasks.len();
    let loop_tasks = program
        .graph
        .tasks
        .iter()
        .filter(|t| t.loop_info.is_some())
        .count();
    if opts.array_aware {
        // Symbolic engine: affine screens decide whether anything could
        // fire; only a screen hit expands (and then the expansion IS the
        // concrete detector, so diagnostics stay byte-identical).
        let view = SymScheduleView::from_graph(&program.graph);
        let outcome = check_schedule_sym(&view, Granularity::Edge, report);
        report.schedule = Some(ScheduleSummary {
            mode: "array-aware",
            engine: if outcome.expanded {
                "symbolic (expanded)"
            } else {
                "symbolic"
            },
            tasks: n_tasks,
            loop_tasks,
        });
    } else {
        let view = ScheduleView::from_graph(&program.graph);
        schedule::check_schedule_at(&view, Granularity::Edge, report);
        report.schedule = Some(ScheduleSummary {
            mode: "oracle",
            engine: "concrete",
            tasks: n_tasks,
            loop_tasks,
        });
    }
}

/// Count diagnostics per code and per severity into the om-obs metrics
/// registry, so `--metrics` covers compile-time analysis too.
fn record_metrics(report: &Report) {
    if !om_obs::is_enabled() {
        return;
    }
    let m = om_obs::metrics();
    for d in &report.diagnostics {
        m.counter(&format!("lint.code.{}", d.code)).inc();
        m.counter(&format!("lint.severity.{}", d.severity.as_str()))
            .inc();
    }
}

/// Convenience for tests: lint and assert a code fires at a position.
pub fn find(report: &Report, code: &str) -> Vec<(SourcePos, String)> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.code == code)
        .map(|d| (d.pos, d.message.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_registry_codes_are_all_registered_and_covered() {
        // Every code a pass claims must exist in the code table…
        for p in PASSES {
            for c in p.codes {
                assert!(code_info(c).is_some(), "pass {} claims unknown {c}", p.name);
            }
        }
        // …and every code in the table must belong to some pass.
        for info in CODES {
            assert!(
                PASSES.iter().any(|p| p.codes.contains(&info.code)),
                "code {} belongs to no pass",
                info.code
            );
        }
    }

    #[test]
    fn every_code_has_explanation_and_a_live_example() {
        for info in CODES {
            assert!(
                !info.explain.trim().is_empty(),
                "{} lacks an explanation",
                info.code
            );
            assert!(
                !info.example.trim().is_empty(),
                "{} lacks an example",
                info.code
            );
            // Lintable examples must actually fire their code — the
            // `--explain` output cannot show a model that lints clean.
            // Prose examples (schedule-level codes that well-formed
            // source cannot trigger) are exempt by construction.
            if info.example.starts_with("model") || info.example.starts_with("class") {
                let report = lint_source(info.example);
                assert!(
                    report.has_code(info.code),
                    "{}'s example does not fire it; report:\n{}",
                    info.code,
                    report.render_text("example")
                );
            }
        }
    }

    #[test]
    fn array_aware_lint_verifies_loop_schedules_symbolically() {
        let source = "model H; Real[32] u(start=0.1);
             equation
               der(u[1]) = -u[1];
               for i in 2:31 loop der(u[i]) = 4.5*u[i-1] - 8.0*u[i] + 3.5*u[i+1]; end for;
               der(u[32]) = -u[32];
             end H;";
        let aware = lint_source_with(source, LintOptions { array_aware: true });
        assert_eq!(aware.count(Severity::Error), 0, "{:?}", aware.diagnostics);
        let s = aware.schedule.as_ref().expect("schedule summary");
        assert_eq!(s.mode, "array-aware");
        assert_eq!(s.engine, "symbolic");
        assert!(s.loop_tasks > 0, "{s:?}");
        // The oracle pipeline on the same source agrees there is nothing
        // to report, through the concrete detector.
        let oracle = lint_source(source);
        assert_eq!(oracle.count(Severity::Error), 0, "{:?}", oracle.diagnostics);
        assert_eq!(oracle.schedule.as_ref().unwrap().engine, "concrete");
    }

    #[test]
    fn clean_model_produces_no_diagnostics_above_info() {
        let report = lint_source(
            "model M; Real x(start=1.0); Real v;
             equation der(x) = v; der(v) = -x; end M;",
        );
        assert_eq!(report.count(Severity::Error), 0, "{:?}", report.diagnostics);
        assert_eq!(report.count(Severity::Warn), 0, "{:?}", report.diagnostics);
    }

    #[test]
    fn parse_error_is_om001() {
        let report = lint_source("model M Real x; end M;");
        assert!(report.has_code("OM001"));
    }

    #[test]
    fn multiple_findings_in_one_run() {
        // An unused variable chain AND an uninitialized state.
        let report = lint_source(
            "model M; Real x; Real dead;
             equation der(x) = -x; dead = x * 2.0; end M;",
        );
        assert!(report.has_code("OM020"), "{:?}", report.diagnostics);
        assert!(report.has_code("OM021"));
        assert!(report.has_code("OM022"));
    }
}
