//! Symbolic schedule passes: the race, coverage, and false-dependency
//! checks of [`crate::schedule`] decided over *symbolic* access patterns
//! instead of enumerated slot vectors.
//!
//! Array-loop tasks access `count` slots each; at paper-scale ×1000 the
//! enumerated vectors are tens of thousands of entries, so the concrete
//! detector costs O(N) per task pair. This module screens every check
//! with the dependence-test lattice of [`om_analysis::affine`]
//! (exact Diophantine → Banerjee → GCD → conservative), which is O(1)
//! per pattern pair — a clean schedule is verified in O(classes²),
//! independent of N.
//!
//! **Parity contract**: the diagnostics this module emits are
//! byte-identical to what [`crate::schedule::check_schedule_at`] emits
//! on the expanded schedule (same codes, same messages, same order).
//! The mechanism makes that true by construction: the symbolic screen
//! only decides *whether* any check can fire; the moment one can, the
//! view is expanded (patterns enumerate back to the exact slot vectors
//! they were recognized from) and the concrete detector produces the
//! diagnostics. Clean schedules — the steady state — never touch O(N)
//! data; dirty schedules pay an O(N) diagnosis cost once, which is noise
//! next to the recompile the diagnostics demand. A conservative screen
//! verdict (patterns too large to enumerate, residues compatible) can
//! force a spurious expansion, never a missed diagnostic.
//!
//! On top of the parity-preserving passes, one check exists *only*
//! symbolically: **OM070**, a loop-carried dependence inside a single
//! parallel loop task (iteration `k` reads a slot iteration `k−d`
//! writes). The concrete detector cannot express it — expansion flattens
//! the iteration structure away — which is exactly why the paper-scale
//! schedule needs the symbolic engine.

use crate::diag::{Diagnostic, Report};
use crate::schedule::{compute_levels, concurrent_pairs_of, Granularity, ScheduleView, TaskAccess};
use om_analysis::affine::{dependence, loop_carried_distance, AffineSeq, DepTest, Pattern};
use om_codegen::task::{OutSlot, TaskGraph};
use om_lang::SourcePos;

/// Which slot space a symbolic access refers to. `Deriv` and `Shared`
/// mirror [`OutSlot`]; `State` exists for loop-iteration maps only (the
/// state vector is frozen during a right-hand-side evaluation, so state
/// reads never race with derivative writes — but a *loop task's* read
/// and write maps over the same space can still carry a dependence).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Space {
    Deriv,
    Shared,
    State,
}

impl Space {
    fn name(self) -> &'static str {
        match self {
            Space::Deriv => "deriv",
            Space::Shared => "shared",
            Space::State => "state",
        }
    }
}

/// Per-iteration affine access maps of one loop task, for the
/// loop-carried dependence check (OM070). Only affine patterns
/// participate: a map is iteration `k ↦ base + stride·k`.
#[derive(Clone, Debug, Default)]
pub struct LoopMaps {
    pub writes: Vec<(Space, AffineSeq)>,
    pub reads: Vec<(Space, AffineSeq)>,
}

/// Symbolic per-task access summary. Expanding every pattern in order
/// reproduces the concrete task's access vectors exactly — that
/// round-trip is what makes the expansion fallback byte-identical.
#[derive(Clone, Debug)]
pub struct SymTaskAccess {
    pub label: String,
    /// Write patterns in enumeration order (`State` is not writable).
    pub writes: Vec<(Space, Pattern)>,
    /// Read patterns over shared slots.
    pub reads_shared: Vec<Pattern>,
    /// Iteration maps for loop tasks; `None` for plain tasks.
    pub loop_maps: Option<LoopMaps>,
}

/// A schedule as the symbolic engine sees it — the same shape as
/// [`ScheduleView`], with patterns in place of enumerated vectors.
#[derive(Clone, Debug)]
pub struct SymScheduleView {
    pub dim: usize,
    pub n_shared: usize,
    pub tasks: Vec<SymTaskAccess>,
    pub deps: Vec<Vec<usize>>,
    pub levels: Vec<Vec<usize>>,
}

impl SymScheduleView {
    /// Extract the symbolic view from a compiled task graph. Loop tasks
    /// contribute their compile-time-recognized patterns
    /// ([`om_codegen::task::LoopInfo::out_pattern`]); plain tasks
    /// contribute singletons. Cost is O(tasks · patterns) — no
    /// enumerated slot vector is cloned, so building the view on an
    /// N-element model costs the same as on a 16-element one.
    pub fn from_graph(graph: &TaskGraph) -> SymScheduleView {
        let tasks = graph
            .tasks
            .iter()
            .map(|t| {
                let (writes, loop_maps) = match &t.loop_info {
                    Some(li) => {
                        // Loop tasks write derivative slots only
                        // (class_loop_tasks targets class states); the
                        // recognized pattern reproduces `t.writes`.
                        let maps = LoopMaps {
                            writes: match &li.out_pattern {
                                Pattern::Affine(seq) => vec![(Space::Deriv, *seq)],
                                Pattern::Set(_) => Vec::new(),
                            },
                            reads: li
                                .read_patterns
                                .iter()
                                .filter_map(|p| match p {
                                    Pattern::Affine(seq) => Some((Space::State, *seq)),
                                    Pattern::Set(_) => None,
                                })
                                .collect(),
                        };
                        (vec![(Space::Deriv, li.out_pattern.clone())], Some(maps))
                    }
                    None => (
                        t.writes
                            .iter()
                            .map(|w| match *w {
                                OutSlot::Deriv(i) => (Space::Deriv, Pattern::singleton(i as u32)),
                                OutSlot::Shared(s) => (Space::Shared, Pattern::singleton(s as u32)),
                            })
                            .collect(),
                        None,
                    ),
                };
                SymTaskAccess {
                    label: t.label.clone(),
                    writes,
                    reads_shared: t
                        .reads_shared
                        .iter()
                        .map(|&s| Pattern::singleton(s))
                        .collect(),
                    loop_maps,
                }
            })
            .collect();
        SymScheduleView {
            dim: graph.dim,
            n_shared: graph.n_shared,
            tasks,
            deps: graph.deps.clone(),
            levels: graph.levels(),
        }
    }

    /// Build a synthetic symbolic view (tests), deriving `dim`/`n_shared`
    /// from pattern bounds and levels from the executor's rule.
    pub fn from_parts(tasks: Vec<SymTaskAccess>, deps: Vec<Vec<usize>>) -> SymScheduleView {
        let mut dim = 0usize;
        let mut n_shared = 0usize;
        for t in &tasks {
            for (space, p) in &t.writes {
                if let Some((_, hi)) = p.bounds() {
                    let end = (hi + 1).max(0) as usize;
                    match space {
                        Space::Deriv => dim = dim.max(end),
                        Space::Shared => n_shared = n_shared.max(end),
                        Space::State => {}
                    }
                }
            }
            for p in &t.reads_shared {
                if let Some((_, hi)) = p.bounds() {
                    n_shared = n_shared.max((hi + 1).max(0) as usize);
                }
            }
        }
        let levels = compute_levels(tasks.len(), &deps);
        SymScheduleView {
            dim,
            n_shared,
            tasks,
            deps,
            levels,
        }
    }

    /// Enumerate every pattern back into a concrete [`ScheduleView`].
    /// For views built by [`SymScheduleView::from_graph`] this
    /// reproduces `ScheduleView::from_graph` of the same graph exactly.
    fn expand(&self) -> ScheduleView {
        let tasks = self
            .tasks
            .iter()
            .map(|t| TaskAccess {
                label: t.label.clone(),
                writes: t
                    .writes
                    .iter()
                    .flat_map(|(space, p)| {
                        let space = *space;
                        p.iter_slots().map(move |s| match space {
                            Space::Deriv => OutSlot::Deriv(s as usize),
                            Space::Shared | Space::State => OutSlot::Shared(s as usize),
                        })
                    })
                    .collect(),
                reads_shared: t
                    .reads_shared
                    .iter()
                    .flat_map(|p| p.iter_slots().map(|s| s as usize))
                    .collect(),
            })
            .collect();
        ScheduleView {
            dim: self.dim,
            n_shared: self.n_shared,
            tasks,
            deps: self.deps.clone(),
            levels: self.levels.clone(),
        }
    }
}

/// What the symbolic run did: whether the screen forced an expansion,
/// and how many pairwise queries each lattice tier decided.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SymOutcome {
    /// A screen hit forced full expansion (diagnostics came from the
    /// concrete detector, byte-identical by construction).
    pub expanded: bool,
    pub exact: usize,
    pub banerjee: usize,
    pub gcd: usize,
    pub conservative: usize,
}

impl SymOutcome {
    fn record(&mut self, test: DepTest) {
        match test {
            DepTest::Exact => self.exact += 1,
            DepTest::Banerjee => self.banerjee += 1,
            DepTest::Gcd => self.gcd += 1,
            DepTest::Conservative => self.conservative += 1,
        }
    }

    /// Total pairwise dependence queries.
    pub fn queries(&self) -> usize {
        self.exact + self.banerjee + self.gcd + self.conservative
    }
}

/// Run the schedule passes symbolically. Emits exactly what
/// [`crate::schedule::check_schedule_at`] would emit on the expanded
/// schedule, plus OM070 for loop-carried dependences inside loop tasks.
pub fn check_schedule_sym(
    view: &SymScheduleView,
    granularity: Granularity,
    out: &mut Report,
) -> SymOutcome {
    let mut outcome = SymOutcome::default();
    let mut dirty = false;

    // Screen 1 — OM040/OM041 over concurrency-eligible pairs: any
    // same-space write/write or shared write/read overlap is a hit.
    let pairs = concurrent_pairs_of(view.tasks.len(), &view.deps, &view.levels, granularity);
    'pairs: for &(a, b) in &pairs {
        let (ta, tb) = (&view.tasks[a], &view.tasks[b]);
        for (sa, pa) in &ta.writes {
            for (sb, pb) in &tb.writes {
                if sa == sb {
                    let d = dependence(pa, pb);
                    outcome.record(d.test);
                    if d.overlaps {
                        dirty = true;
                        break 'pairs;
                    }
                }
            }
        }
        for (writer, reader) in [(ta, tb), (tb, ta)] {
            for (space, pw) in &writer.writes {
                if *space != Space::Shared {
                    continue;
                }
                for pr in &reader.reads_shared {
                    let d = dependence(pw, pr);
                    outcome.record(d.test);
                    if d.overlaps {
                        dirty = true;
                        break 'pairs;
                    }
                }
            }
        }
    }

    // Screen 2 — OM042 coverage: per space, the write patterns must be
    // injective, pairwise disjoint, in-bounds, and account for every
    // slot. Total = expected with all-distinct in a range of size
    // expected pigeonholes into exactly-once coverage.
    if !dirty {
        dirty = !coverage_clean(view, &mut outcome);
    }

    // Screen 3 — OM043: an edge with no decisive write/read overlap
    // would make the concrete detector warn. A conservative overlap
    // verdict counts as justified (suppressing a performance warning,
    // never a correctness error).
    if !dirty {
        'edges: for (i, deps) in view.deps.iter().enumerate() {
            for &d in deps {
                let justified = view.tasks[d].writes.iter().any(|(space, pw)| {
                    *space == Space::Shared
                        && view.tasks[i].reads_shared.iter().any(|pr| {
                            let v = dependence(pw, pr);
                            outcome.record(v.test);
                            v.overlaps
                        })
                });
                if !justified {
                    dirty = true;
                    break 'edges;
                }
            }
        }
    }

    if dirty {
        outcome.expanded = true;
        crate::schedule::check_schedule_at(&view.expand(), granularity, out);
    }

    // OM070 — loop-carried dependence inside one loop task. Symbolic
    // only: the concrete detector sees the expanded slot vectors, where
    // the iteration structure (and hence "iteration k reads what k−d
    // wrote") no longer exists.
    for t in &view.tasks {
        let Some(maps) = &t.loop_maps else { continue };
        for (sw, w) in &maps.writes {
            for (sr, r) in &maps.reads {
                if sw != sr {
                    continue;
                }
                if let Some(dist) = loop_carried_distance(w, r) {
                    out.push(Diagnostic::new(
                        "OM070",
                        SourcePos::default(),
                        format!(
                            "loop-carried dependence in parallel loop task `{}`: iteration k reads the {} slot iteration k{:+} writes (write map {}, read map {})",
                            t.label,
                            sw.name(),
                            -dist,
                            Pattern::Affine(*w).render(),
                            Pattern::Affine(*r).render(),
                        ),
                    ));
                }
            }
        }
    }

    outcome
}

/// Exactly-once coverage decided symbolically; `false` means "expand and
/// let the concrete pass diagnose".
fn coverage_clean(view: &SymScheduleView, outcome: &mut SymOutcome) -> bool {
    for space in [Space::Deriv, Space::Shared] {
        let expected = match space {
            Space::Deriv => view.dim,
            Space::Shared => view.n_shared,
            Space::State => unreachable!(),
        };
        let pats: Vec<&Pattern> = view
            .tasks
            .iter()
            .flat_map(|t| t.writes.iter())
            .filter(|(s, _)| *s == space)
            .map(|(_, p)| p)
            .collect();
        let total: usize = pats.iter().map(|p| p.len()).sum();
        if total != expected {
            return false;
        }
        for p in &pats {
            if p.is_empty() {
                continue;
            }
            if !p.is_injective() {
                return false;
            }
            let (lo, hi) = p.bounds().expect("non-empty");
            if lo < 0 || hi >= expected as i64 {
                return false;
            }
        }
        for (i, pa) in pats.iter().enumerate() {
            for pb in &pats[i + 1..] {
                let d = dependence(pa, pb);
                outcome.record(d.test);
                if d.overlaps {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::check_schedule_at;

    fn aff(base: i64, stride: i64, count: u32) -> Pattern {
        Pattern::Affine(AffineSeq {
            base,
            stride,
            count,
        })
    }

    fn loop_task(label: &str, writes: Pattern, reads_shared: Vec<Pattern>) -> SymTaskAccess {
        let maps = LoopMaps {
            writes: match &writes {
                Pattern::Affine(s) => vec![(Space::Deriv, *s)],
                Pattern::Set(_) => Vec::new(),
            },
            reads: Vec::new(),
        };
        SymTaskAccess {
            label: label.into(),
            writes: vec![(Space::Deriv, writes)],
            reads_shared,
            loop_maps: Some(maps),
        }
    }

    /// Two chunked loop tasks covering [0,16) ∪ [16,32), one shared
    /// producer feeding both: the canonical clean aware schedule.
    fn clean_view() -> SymScheduleView {
        SymScheduleView::from_parts(
            vec![
                SymTaskAccess {
                    label: "p".into(),
                    writes: vec![(Space::Shared, Pattern::singleton(0))],
                    reads_shared: vec![],
                    loop_maps: None,
                },
                loop_task("chunk0", aff(0, 1, 16), vec![Pattern::singleton(0)]),
                loop_task("chunk1", aff(16, 1, 16), vec![Pattern::singleton(0)]),
            ],
            vec![vec![], vec![0], vec![0]],
        )
    }

    #[test]
    fn clean_symbolic_schedule_verifies_without_expansion() {
        let mut r = Report::default();
        let o = check_schedule_sym(&clean_view(), Granularity::Edge, &mut r);
        assert!(r.is_empty(), "{:?}", r.diagnostics);
        assert!(!o.expanded);
        assert!(o.queries() > 0);
    }

    #[test]
    fn overlapping_chunks_match_the_concrete_detector_exactly() {
        // chunk1 starts one slot early: writes 15..31 races with 0..16.
        let mut v = clean_view();
        v.tasks[2].writes = vec![(Space::Deriv, aff(15, 1, 16))];
        let mut sym_r = Report::default();
        let o = check_schedule_sym(&v, Granularity::Edge, &mut sym_r);
        assert!(o.expanded);
        let mut conc_r = Report::default();
        check_schedule_at(&v.expand(), Granularity::Edge, &mut conc_r);
        let sym40: Vec<_> = sym_r.diagnostics.iter().collect();
        let conc40: Vec<_> = conc_r.diagnostics.iter().collect();
        assert_eq!(sym40, conc40);
        assert!(sym_r.has_code("OM040"));
        assert!(
            sym_r.has_code("OM042"),
            "double write is a coverage hit too"
        );
    }

    #[test]
    fn interleaved_strided_chunks_are_proven_disjoint_exactly() {
        // Evens vs odds over 2N slots: ranges overlap, residues differ —
        // the exact tier must prove disjointness without enumeration.
        let v = SymScheduleView::from_parts(
            vec![
                loop_task("even", aff(0, 2, 4096), vec![]),
                loop_task("odd", aff(1, 2, 4096), vec![]),
            ],
            vec![vec![], vec![]],
        );
        let mut r = Report::default();
        let o = check_schedule_sym(&v, Granularity::Edge, &mut r);
        assert!(r.is_empty(), "{:?}", r.diagnostics);
        assert!(!o.expanded);
        assert!(o.exact > 0);
    }

    #[test]
    fn missing_slot_is_a_coverage_violation_with_concrete_message() {
        // One loop task covering [0,8) in a dim-9 schedule.
        let mut v = SymScheduleView::from_parts(
            vec![loop_task("chunk", aff(0, 1, 8), vec![])],
            vec![vec![]],
        );
        v.dim = 9;
        let mut r = Report::default();
        let o = check_schedule_sym(&v, Granularity::Edge, &mut r);
        assert!(o.expanded);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].code, "OM042");
        assert_eq!(
            r.diagnostics[0].message,
            "coverage violation: no task writes deriv[8]"
        );
    }

    #[test]
    fn loop_carried_recurrence_is_om070() {
        // A loop task writing deriv[8+k] while reading deriv[7+k]:
        // iteration k reads what iteration k−1 wrote.
        let mut t = loop_task("recurrence", aff(8, 1, 8), vec![]);
        t.loop_maps.as_mut().unwrap().reads = vec![(
            Space::Deriv,
            AffineSeq {
                base: 7,
                stride: 1,
                count: 8,
            },
        )];
        let mut v = SymScheduleView::from_parts(vec![t], vec![vec![]]);
        v.dim = 16;
        // Make coverage noise irrelevant: dim 16 with 8 writes expands.
        let mut r = Report::default();
        check_schedule_sym(&v, Granularity::Edge, &mut r);
        assert!(r.has_code("OM070"), "{:?}", r.diagnostics);
        let msg = &find_code(&r, "OM070")[0];
        assert!(msg.contains("iteration k-1"), "{msg}");
        assert!(msg.contains("recurrence"), "{msg}");
    }

    #[test]
    fn state_reads_never_carry_against_deriv_writes() {
        // The real pipeline shape: write deriv[k], read state[k−1] — a
        // stencil, not a dependence (states are frozen during the RHS).
        let mut t = loop_task("stencil", aff(1, 1, 8), vec![]);
        t.loop_maps.as_mut().unwrap().reads = vec![(
            Space::State,
            AffineSeq {
                base: 0,
                stride: 1,
                count: 8,
            },
        )];
        let mut v = SymScheduleView::from_parts(vec![t], vec![vec![]]);
        v.dim = 9;
        let mut r = Report::default();
        check_schedule_sym(&v, Granularity::Edge, &mut r);
        assert!(!r.has_code("OM070"), "{:?}", r.diagnostics);
    }

    #[test]
    fn unjustified_edge_expands_and_warns_like_the_concrete_pass() {
        let v = SymScheduleView::from_parts(
            vec![
                loop_task("a", aff(0, 1, 4), vec![]),
                loop_task("b", aff(4, 1, 4), vec![]),
            ],
            vec![vec![], vec![0]],
        );
        let mut r = Report::default();
        let o = check_schedule_sym(&v, Granularity::Edge, &mut r);
        assert!(o.expanded);
        assert!(r.has_code("OM043"), "{:?}", r.diagnostics);
        assert_eq!(
            r.diagnostics[0].message,
            "false dependency: task `b` depends on `a` but reads nothing it writes"
        );
    }

    fn find_code(r: &Report, code: &str) -> Vec<String> {
        r.diagnostics
            .iter()
            .filter(|d| d.code == code)
            .map(|d| d.message.clone())
            .collect()
    }
}
