//! Loop passes on the AST: interval abstract interpretation of affine
//! index expressions over `for`-equation ranges.
//!
//! * **OM071** — an affine index (`u[i+1]`, `u[i-1]`, …) leaves the
//!   declared array range for *some* iteration of an enclosing loop. The
//!   flattening pass only catches constant out-of-bounds indices (OM002);
//!   this pass proves or refutes `1 ≤ i+c ≤ dim` for every `i` in the
//!   trip range symbolically, and names the violating iteration.
//! * **OM072** — a loop-carried recurrence in an algebraic
//!   `for`-equation: `w[i] = … w[i−d] …` makes iteration `i` depend on
//!   iteration `i−d`, so the group can never form a parallel array class
//!   (it either scalarizes or serializes).
//!
//! Index intervals are refined under relational `if`-guards on the loop
//! variable (`if i == 1 then 0 else u[i-1]` is in range), so guarded
//! boundary stencils lint clean. Where a guard involves the loop
//! variable in a form the refinement cannot interpret, the guarded
//! branch's loop-variable checks are skipped — conservative silence, an
//! error pass must not report spurious errors.

use crate::diag::{Diagnostic, Report};
use om_analysis::affine::Interval;
use om_lang::ast::{BinOp, ClassDef, Equation, Member, RefPath, RelOp, SExpr, Unit};
use om_lang::scope::ClassTable;

/// One enclosing loop binding: the index name and the interval its value
/// ranges over. `None` for the interval means "unknown" — the variable
/// is bound, but a guard made its range uninterpretable, so index checks
/// involving it are skipped.
type Env = Vec<(String, Option<Interval>)>;

/// Run both loop passes over every class of the unit.
pub fn loop_passes(unit: &Unit, out: &mut Report) {
    let Ok(table) = ClassTable::build(unit) else {
        return; // symbol passes already reported the broken table
    };
    for class in unit.classes.iter().chain(std::iter::once(&unit.model)) {
        let mut env: Env = Vec::new();
        for eq in &class.equations {
            check_equation(&table, class, eq, &mut env, false, out);
        }
        // Initial equations run once, sequentially, at t0: recurrences
        // there are evaluation order, not lost parallelism — only the
        // bounds check applies.
        for eq in &class.initial_equations {
            check_equation(&table, class, eq, &mut env, true, out);
        }
    }
}

fn check_equation(
    table: &ClassTable<'_>,
    class: &ClassDef,
    eq: &Equation,
    env: &mut Env,
    in_initial: bool,
    out: &mut Report,
) {
    match eq {
        Equation::Simple { lhs, rhs, .. } => {
            if !env.is_empty() && !in_initial {
                check_recurrence(lhs, rhs, env, out);
            }
            check_expr(table, class, lhs, env, out);
            check_expr(table, class, rhs, env, out);
        }
        Equation::For {
            index,
            from,
            to,
            body,
            ..
        } => {
            env.push((index.clone(), Some(Interval::new(*from, *to))));
            for e in body {
                check_equation(table, class, e, env, in_initial, out);
            }
            env.pop();
        }
    }
}

// ---------------------------------------------------------------------------
// OM071: interval bounds of affine indices
// ---------------------------------------------------------------------------

fn check_expr(table: &ClassTable<'_>, class: &ClassDef, e: &SExpr, env: &Env, out: &mut Report) {
    match e {
        SExpr::Num(_) | SExpr::Time => {}
        SExpr::Ref(path) | SExpr::Der(path) => check_path(table, class, path, env, out),
        SExpr::If(c, t, el) => {
            check_expr(table, class, c, env, out);
            let (then_env, else_env) = refine(env, c);
            if let Some(te) = then_env {
                check_expr(table, class, t, &te, out);
            }
            if let Some(ee) = else_env {
                check_expr(table, class, el, &ee, out);
            }
        }
        SExpr::Call(_, args, _) | SExpr::Tuple(args) => {
            for a in args {
                check_expr(table, class, a, env, out);
            }
        }
        SExpr::Bin(_, a, b) | SExpr::Rel(_, a, b) | SExpr::And(a, b) | SExpr::Or(a, b) => {
            check_expr(table, class, a, env, out);
            check_expr(table, class, b, env, out);
        }
        SExpr::Neg(a) | SExpr::Not(a) => check_expr(table, class, a, env, out),
    }
}

/// Walk a dotted path like the resolver does, checking every indexed
/// segment whose index is affine in a loop variable against the
/// segment's declared extent.
fn check_path(
    table: &ClassTable<'_>,
    class: &ClassDef,
    path: &RefPath,
    env: &Env,
    out: &mut Report,
) {
    let first = &path.segs[0];
    if path.segs.len() == 1 && first.indices.is_empty() && env.iter().any(|(n, _)| n == &first.name)
    {
        return; // the loop index used as a value
    }
    let mut current = class;
    for (i, seg) in path.segs.iter().enumerate() {
        for idx in &seg.indices {
            check_expr(table, class, idx, env, out);
        }
        let members = table.effective_members(current);
        let Some((member, _)) = members.iter().find(|(m, _)| m.name() == seg.name) else {
            return; // unresolved: OM010's business
        };
        let extent = match member {
            Member::Parameter { ty, .. } | Member::Variable { ty, .. } => ty.dim,
            Member::Part { count, .. } => count.unwrap_or(1),
        };
        if extent > 1 {
            if let Some(idx) = seg.indices.first() {
                check_index(&seg.name, path, idx, extent, env, out);
            }
        }
        let is_last = i + 1 == path.segs.len();
        match member {
            Member::Part {
                class: class_name, ..
            } if !is_last => match table.get(class_name) {
                Some(c) => current = c,
                None => return,
            },
            _ if !is_last => return, // select into scalar: OM010's business
            _ => {}
        }
    }
}

/// Decide `1 ≤ idx ≤ extent` for every iteration. The index must be
/// affine (`v + c`) in a loop variable with a known interval; anything
/// else is out of scope (constant indices are flattening's OM002,
/// non-affine forms stay silent).
fn check_index(
    name: &str,
    path: &RefPath,
    idx: &SExpr,
    extent: usize,
    env: &Env,
    out: &mut Report,
) {
    let Some((var, offset)) = affine_of(idx, env) else {
        return;
    };
    let Some(iv) = env
        .iter()
        .rev()
        .find(|(n, _)| n == &var)
        .and_then(|(_, i)| *i)
    else {
        return; // range made unknown by an uninterpretable guard
    };
    if iv.lo > iv.hi {
        return; // refined to empty: the branch is dead code
    }
    let image = iv.shift(offset);
    let declared = Interval::new(1, extent as i64);
    if image.within(declared) {
        return;
    }
    // Name the violating iteration: the endpoint whose image escapes.
    let (at, bad) = if image.hi > declared.hi {
        (iv.hi, image.hi)
    } else {
        (iv.lo, image.lo)
    };
    out.push(Diagnostic::new(
        "OM071",
        path.pos,
        format!(
            "array index out of bounds for some loop iteration: `{}` reaches index {bad} at {var} = {at}, outside `{name}`'s declared range 1:{extent}",
            path.display()
        ),
    ));
}

/// Recognize `v`, `v + c`, `v - c`, `c + v` for a loop variable `v`
/// bound in `env`; returns the variable name and the constant offset.
fn affine_of(e: &SExpr, env: &Env) -> Option<(String, i64)> {
    let loop_var = |e: &SExpr| -> Option<String> {
        if let SExpr::Ref(p) = e {
            if p.segs.len() == 1 && p.segs[0].indices.is_empty() {
                let name = &p.segs[0].name;
                if env.iter().any(|(n, _)| n == name) {
                    return Some(name.clone());
                }
            }
        }
        None
    };
    match e {
        _ if loop_var(e).is_some() => Some((loop_var(e).unwrap(), 0)),
        SExpr::Bin(BinOp::Add, a, b) => match (loop_var(a), const_int(b)) {
            (Some(v), Some(c)) => Some((v, c)),
            _ => match (const_int(a), loop_var(b)) {
                (Some(c), Some(v)) => Some((v, c)),
                _ => None,
            },
        },
        SExpr::Bin(BinOp::Sub, a, b) => match (loop_var(a), const_int(b)) {
            (Some(v), Some(c)) => Some((v, -c)),
            _ => None,
        },
        _ => None,
    }
}

/// Literal integer constant (including negated literals).
fn const_int(e: &SExpr) -> Option<i64> {
    match e {
        SExpr::Num(v) if v.fract() == 0.0 => Some(*v as i64),
        SExpr::Neg(a) => const_int(a).map(|v| -v),
        _ => None,
    }
}

/// Refine the loop-variable intervals under an `if` condition for the
/// then/else branches. `None` means the branch is dead (its condition
/// can never hold). A condition mentioning a loop variable in a form we
/// cannot interpret degrades that variable's interval to unknown in
/// both branches instead of guessing.
fn refine(env: &Env, cond: &SExpr) -> (Option<Env>, Option<Env>) {
    match cond {
        SExpr::Rel(op, a, b) => {
            // Normalize to `var <op> const`.
            let normalized = match (as_loop_var(a, env), const_int(b)) {
                (Some(v), Some(c)) => Some((v, *op, c)),
                _ => match (const_int(a), as_loop_var(b, env)) {
                    (Some(c), Some(v)) => Some((v, flip(*op), c)),
                    _ => None,
                },
            };
            match normalized {
                Some((var, op, c)) => {
                    let then_env = apply(env, &var, op, c);
                    let else_env = apply(env, &var, negate(op), c);
                    (then_env, else_env)
                }
                None => degrade(env, cond),
            }
        }
        SExpr::Not(inner) => {
            let (t, e) = refine(env, inner);
            (e, t)
        }
        SExpr::And(a, b) => {
            // then: both hold — refine sequentially. else: ¬A ∨ ¬B is
            // not an interval; degrade the mentioned variables.
            let then_env = match refine(env, a).0 {
                Some(ea) => refine(&ea, b).0,
                None => None,
            };
            let (_, else_env) = degrade(env, cond);
            (then_env, else_env)
        }
        SExpr::Or(a, b) => {
            // else: ¬A ∧ ¬B — refine sequentially. then: degrade.
            let else_env = match refine(env, a).1 {
                Some(ea) => refine(&ea, b).1,
                None => None,
            };
            let (then_env, _) = degrade(env, cond);
            (then_env, else_env)
        }
        _ => degrade(env, cond),
    }
}

/// Both branches keep `env`, except loop variables mentioned by `cond`
/// become unknown (their checks are skipped inside the branches).
fn degrade(env: &Env, cond: &SExpr) -> (Option<Env>, Option<Env>) {
    let mut mentioned: Vec<&str> = Vec::new();
    collect_loop_vars(cond, env, &mut mentioned);
    if mentioned.is_empty() {
        return (Some(env.clone()), Some(env.clone()));
    }
    let degraded: Env = env
        .iter()
        .map(|(n, iv)| {
            if mentioned.contains(&n.as_str()) {
                (n.clone(), None)
            } else {
                (n.clone(), *iv)
            }
        })
        .collect();
    (Some(degraded.clone()), Some(degraded))
}

fn collect_loop_vars<'e>(e: &'e SExpr, env: &Env, out: &mut Vec<&'e str>) {
    match e {
        SExpr::Ref(p) if p.segs.len() == 1 && p.segs[0].indices.is_empty() => {
            let name = p.segs[0].name.as_str();
            if env.iter().any(|(n, _)| n == name) && !out.contains(&name) {
                out.push(name);
            }
        }
        SExpr::Ref(p) | SExpr::Der(p) => {
            for seg in &p.segs {
                for idx in &seg.indices {
                    collect_loop_vars(idx, env, out);
                }
            }
        }
        SExpr::Num(_) | SExpr::Time => {}
        SExpr::Call(_, args, _) | SExpr::Tuple(args) => {
            for a in args {
                collect_loop_vars(a, env, out);
            }
        }
        SExpr::Bin(_, a, b) | SExpr::Rel(_, a, b) | SExpr::And(a, b) | SExpr::Or(a, b) => {
            collect_loop_vars(a, env, out);
            collect_loop_vars(b, env, out);
        }
        SExpr::Neg(a) | SExpr::Not(a) => collect_loop_vars(a, env, out),
        SExpr::If(c, t, el) => {
            collect_loop_vars(c, env, out);
            collect_loop_vars(t, env, out);
            collect_loop_vars(el, env, out);
        }
    }
}

fn as_loop_var(e: &SExpr, env: &Env) -> Option<String> {
    if let SExpr::Ref(p) = e {
        if p.segs.len() == 1 && p.segs[0].indices.is_empty() {
            let name = &p.segs[0].name;
            if env.iter().any(|(n, _)| n == name) {
                return Some(name.clone());
            }
        }
    }
    None
}

/// Mirror a relation for `const <op> var` → `var <flip(op)> const`.
fn flip(op: RelOp) -> RelOp {
    match op {
        RelOp::Lt => RelOp::Gt,
        RelOp::Le => RelOp::Ge,
        RelOp::Gt => RelOp::Lt,
        RelOp::Ge => RelOp::Le,
        RelOp::Eq => RelOp::Eq,
        RelOp::Ne => RelOp::Ne,
    }
}

fn negate(op: RelOp) -> RelOp {
    match op {
        RelOp::Lt => RelOp::Ge,
        RelOp::Le => RelOp::Gt,
        RelOp::Gt => RelOp::Le,
        RelOp::Ge => RelOp::Lt,
        RelOp::Eq => RelOp::Ne,
        RelOp::Ne => RelOp::Eq,
    }
}

/// Apply `var <op> c` to the innermost binding of `var`. Returns `None`
/// when the refined interval is empty (dead branch).
fn apply(env: &Env, var: &str, op: RelOp, c: i64) -> Option<Env> {
    let mut refined = env.clone();
    let slot = refined.iter_mut().rev().find(|(n, _)| n == var)?;
    let Some(iv) = slot.1 else {
        return Some(refined); // already unknown; keep it unknown
    };
    let new = match op {
        RelOp::Lt => Interval::new(iv.lo, iv.hi.min(c - 1)),
        RelOp::Le => Interval::new(iv.lo, iv.hi.min(c)),
        RelOp::Gt => Interval::new(iv.lo.max(c + 1), iv.hi),
        RelOp::Ge => Interval::new(iv.lo.max(c), iv.hi),
        RelOp::Eq => {
            if iv.contains(c) {
                Interval::new(c, c)
            } else {
                return None; // condition can never hold
            }
        }
        RelOp::Ne => {
            // Intervals cannot represent a hole; only endpoint holes
            // tighten, interior holes keep the interval (sound: wider).
            if c == iv.lo && c == iv.hi {
                return None;
            } else if c == iv.lo {
                Interval::new(iv.lo + 1, iv.hi)
            } else if c == iv.hi {
                Interval::new(iv.lo, iv.hi - 1)
            } else {
                iv
            }
        }
    };
    if new.lo > new.hi {
        return None;
    }
    slot.1 = Some(new);
    Some(refined)
}

// ---------------------------------------------------------------------------
// OM072: loop-carried recurrences in for-equation groups
// ---------------------------------------------------------------------------

/// `w[i+c1] = … w[i+c2] …` with `c1 ≠ c2` and both offsets reachable in
/// the trip range: iteration `i` reads the element iteration `i+c2−c1`
/// defines — a serializing recurrence. Derivative equations are exempt
/// (`der(u[i]) = f(u[i−1])` is a stencil over the *frozen* state vector,
/// the paper's normal case).
fn check_recurrence(lhs: &SExpr, rhs: &SExpr, env: &Env, out: &mut Report) {
    let SExpr::Ref(lp) = lhs else { return };
    if lp.segs.len() != 1 {
        return;
    }
    let seg = &lp.segs[0];
    let Some(idx) = seg.indices.first() else {
        return;
    };
    let Some((var, c1)) = affine_of(idx, env) else {
        return;
    };
    let Some(iv) = env
        .iter()
        .rev()
        .find(|(n, _)| n == &var)
        .and_then(|(_, i)| *i)
    else {
        return;
    };
    let name = seg.name.clone();
    let mut visit = |e: &SExpr| {
        let SExpr::Ref(rp) = e else { return };
        if rp.segs.len() != 1 || rp.segs[0].name != name {
            return;
        }
        let Some(ridx) = rp.segs[0].indices.first() else {
            return;
        };
        let Some((rvar, c2)) = affine_of(ridx, env) else {
            return;
        };
        if rvar != var || c2 == c1 {
            return;
        }
        // The read element is defined by iteration i + (c2 − c1); the
        // recurrence is real only if that iteration exists for some i.
        let d = c2 - c1;
        if d.abs() > iv.hi - iv.lo {
            return;
        }
        out.push(Diagnostic::new(
            "OM072",
            rp.pos,
            format!(
                "loop-carried recurrence: `{}` is defined by iteration {var}{d:+} of this for-equation, so the group serializes instead of forming a parallel array class",
                rp.display()
            ),
        ));
    };
    walk_sexpr(rhs, &mut visit);
}

fn walk_sexpr(e: &SExpr, f: &mut impl FnMut(&SExpr)) {
    f(e);
    match e {
        SExpr::Num(_) | SExpr::Time | SExpr::Ref(_) | SExpr::Der(_) => {}
        SExpr::Call(_, args, _) | SExpr::Tuple(args) => {
            for a in args {
                walk_sexpr(a, f);
            }
        }
        SExpr::Bin(_, a, b) | SExpr::Rel(_, a, b) | SExpr::And(a, b) | SExpr::Or(a, b) => {
            walk_sexpr(a, f);
            walk_sexpr(b, f);
        }
        SExpr::Neg(a) | SExpr::Not(a) => walk_sexpr(a, f),
        SExpr::If(c, t, el) => {
            walk_sexpr(c, f);
            walk_sexpr(t, f);
            walk_sexpr(el, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Report {
        let unit = om_lang::parse_unit(src).expect("parse");
        let mut out = Report::default();
        loop_passes(&unit, &mut out);
        out
    }

    #[test]
    fn in_range_stencil_is_clean() {
        let r = run("model M; Real[8] u(start=0.1);
             equation
               der(u[1]) = -u[1]; der(u[8]) = -u[8];
               for i in 2:7 loop der(u[i]) = u[i-1] - 2.0*u[i] + u[i+1]; end for;
             end M;");
        assert!(r.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn max_iteration_overflow_is_om071() {
        let r = run("model M; Real[8] u(start=0.1);
             equation
               der(u[1]) = -u[1];
               for i in 2:8 loop der(u[i]) = u[i-1] + u[i+1]; end for;
             end M;");
        let found = crate::find(&r, "OM071");
        assert_eq!(found.len(), 1, "{:?}", r.diagnostics);
        assert!(
            found[0].1.contains("reaches index 9 at i = 8"),
            "{}",
            found[0].1
        );
        assert!(found[0].1.contains("range 1:8"));
    }

    #[test]
    fn min_iteration_underflow_is_om071() {
        let r = run("model M; Real[4] u(start=0.1);
             equation
               der(u[4]) = -u[4];
               for i in 1:3 loop der(u[i]) = u[i-1]; end for;
             end M;");
        let found = crate::find(&r, "OM071");
        assert_eq!(found.len(), 1, "{:?}", r.diagnostics);
        assert!(
            found[0].1.contains("reaches index 0 at i = 1"),
            "{}",
            found[0].1
        );
    }

    #[test]
    fn guarded_boundary_stencil_is_clean() {
        // The i==1 guard makes u[i-1] dead exactly where it would escape.
        let r = run("model M; Real[4] u(start=0.1);
             equation
               for i in 1:4 loop
                 der(u[i]) = if i == 1 then -u[i] else u[i-1] - u[i];
               end for;
             end M;");
        assert!(r.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn relational_guard_refines_both_branches() {
        // then: i > 1 → u[i-1] fine; else: i ≤ 1 → i = 1 → u[i+1] = u[2] fine.
        let r = run("model M; Real[4] u(start=0.1);
             equation
               for i in 1:4 loop
                 der(u[i]) = if i > 1 then u[i-1] else u[i+1];
               end for;
             end M;");
        assert!(r.is_empty(), "{:?}", r.diagnostics);
        // But a guard that does not actually protect still reports: the
        // then branch admits i = 1, where u[i-1] = u[0].
        let r = run("model M; Real[4] u(start=0.1);
             equation
               for i in 1:4 loop
                 der(u[i]) = if i < 3 then u[i-1] else -u[i];
               end for;
             end M;");
        let found = crate::find(&r, "OM071");
        assert_eq!(found.len(), 1, "{:?}", r.diagnostics);
        assert!(
            found[0].1.contains("reaches index 0 at i = 1"),
            "{}",
            found[0].1
        );
    }

    #[test]
    fn algebraic_recurrence_is_om072() {
        let r = run("model M; Real x(start=1.0); Real[4] w;
             equation
               der(x) = -x;
               w[1] = x;
               for i in 2:4 loop w[i] = 0.5*w[i-1]; end for;
             end M;");
        let found = crate::find(&r, "OM072");
        assert_eq!(found.len(), 1, "{:?}", r.diagnostics);
        assert!(found[0].1.contains("iteration i-1"), "{}", found[0].1);
    }

    #[test]
    fn derivative_stencils_are_not_recurrences() {
        let r = run("model M; Real[6] u(start=0.1);
             equation
               der(u[1]) = -u[1]; der(u[6]) = -u[6];
               for i in 2:5 loop der(u[i]) = u[i-1] - u[i+1]; end for;
             end M;");
        assert!(!r.has_code("OM072"), "{:?}", r.diagnostics);
    }

    #[test]
    fn unreachable_offset_is_not_a_recurrence() {
        // w[i] reads w[i-5] but the trip range is 3 wide: no iteration
        // pair is d=5 apart... the read is out of bounds instead.
        let r = run("model M; Real x(start=1.0); Real[9] w;
             equation
               der(x) = -x;
               w[1]=x; w[2]=x; w[3]=x; w[4]=x; w[5]=x; w[6]=x;
               for i in 7:9 loop w[i] = w[i-5]; end for;
             end M;");
        assert!(!r.has_code("OM072"), "{:?}", r.diagnostics);
        assert!(!r.has_code("OM071"), "{:?}", r.diagnostics);
    }

    #[test]
    fn initial_equations_get_bounds_but_not_recurrence_checks() {
        let r = run("model M; Real[4] u;
             initial equation
               for i in 1:4 loop u[i] = 0.5; end for;
             equation
               for i in 1:4 loop der(u[i]) = -u[i]; end for;
             end M;");
        assert!(!r.has_code("OM072"), "{:?}", r.diagnostics);
        let r = run("model M; Real[4] u;
             initial equation
               for i in 1:4 loop u[i] = 0.5; end for;
             equation
               for i in 1:5 loop der(u[i]) = -u[i]; end for;
             end M;");
        assert!(r.has_code("OM071"), "{:?}", r.diagnostics);
    }
}
