//! Schedule passes: race detection, exactly-once coverage, and false
//! dependencies on the generated task DAG.
//!
//! The runtime has two execution strategies, and each permits a
//! different set of task pairs to run concurrently — so the race passes
//! run at a selectable [`Granularity`]:
//!
//! * [`Granularity::Level`] — the barrier executor runs the graph level
//!   by level ([`om_codegen::task::TaskGraph::levels`] — the same
//!   function the executor calls); tasks *within one level* may overlap.
//! * [`Granularity::Edge`] — the work-stealing executor has no barrier:
//!   any two tasks with **no dependency path between them** may overlap.
//!   Same-level pairs are always unordered, so an edge-granularity
//!   race-free verdict implies the level-granularity one — this is the
//!   verdict that must hold for the barrier to be removable at all.
//!
//! The passes:
//!
//! * **OM040** — two concurrency-eligible tasks write the same slot
//!   (write-write),
//! * **OM041** — a concurrency-eligible pair writes and reads the same
//!   shared slot (read-write; state reads never conflict, `y` is
//!   input-only during a right-hand-side evaluation),
//! * **OM042** — a derivative or shared slot is not written exactly once
//!   across the whole graph (coverage: every equation in exactly one
//!   task),
//! * **OM043** — a dependency edge not justified by dataflow (the
//!   dependent task reads nothing its dependency writes), which throttles
//!   parallelism for no correctness gain.

use crate::diag::{Diagnostic, Report};
use om_codegen::task::{OutSlot, TaskGraph};
use om_lang::SourcePos;
use std::collections::HashMap;

/// Per-task access sets, decoupled from compiled bytecode so synthetic
/// schedules can be checked in tests.
#[derive(Clone, Debug)]
pub struct TaskAccess {
    pub label: String,
    /// Output slots this task writes.
    pub writes: Vec<OutSlot>,
    /// Shared slots this task reads.
    pub reads_shared: Vec<usize>,
}

/// A schedule as the race detector sees it: access sets, the dependency
/// edges, and the barrier levels derived from them.
#[derive(Clone, Debug)]
pub struct ScheduleView {
    /// Number of derivative slots (the ODE dimension).
    pub dim: usize,
    /// Number of shared intermediate slots.
    pub n_shared: usize,
    pub tasks: Vec<TaskAccess>,
    /// `deps[i]` = tasks that must complete before task `i`.
    pub deps: Vec<Vec<usize>>,
    /// Barrier levels; tasks within one level may run concurrently.
    pub levels: Vec<Vec<usize>>,
}

impl ScheduleView {
    /// Extract the view from a compiled task graph, using the *same*
    /// level computation the parallel executor uses.
    pub fn from_graph(graph: &TaskGraph) -> ScheduleView {
        ScheduleView {
            dim: graph.dim,
            n_shared: graph.n_shared,
            tasks: graph
                .tasks
                .iter()
                .map(|t| TaskAccess {
                    label: t.label.clone(),
                    writes: t.writes.clone(),
                    reads_shared: t.reads_shared.iter().map(|&s| s as usize).collect(),
                })
                .collect(),
            deps: graph.deps.clone(),
            levels: graph.levels(),
        }
    }

    /// Build a synthetic view from access sets and dependency edges,
    /// deriving `dim`/`n_shared` from the slots used and the levels with
    /// the executor's longest-path rule.
    pub fn from_parts(tasks: Vec<TaskAccess>, deps: Vec<Vec<usize>>) -> ScheduleView {
        let mut dim = 0;
        let mut n_shared = 0;
        for t in &tasks {
            for w in &t.writes {
                match w {
                    OutSlot::Deriv(i) => dim = dim.max(i + 1),
                    OutSlot::Shared(s) => n_shared = n_shared.max(s + 1),
                }
            }
            for &s in &t.reads_shared {
                n_shared = n_shared.max(s + 1);
            }
        }
        let levels = compute_levels(tasks.len(), &deps);
        ScheduleView {
            dim,
            n_shared,
            tasks,
            deps,
            levels,
        }
    }

    /// Replace the levels (for sensitivity tests that merge levels).
    pub fn with_levels(mut self, levels: Vec<Vec<usize>>) -> ScheduleView {
        self.levels = levels;
        self
    }
}

/// Longest-path levels, identical to `TaskGraph::levels`.
pub(crate) fn compute_levels(n: usize, deps: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut level = vec![0usize; n];
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            for &d in &deps[i] {
                if level[i] < level[d] + 1 {
                    level[i] = level[d] + 1;
                    changed = true;
                }
            }
        }
    }
    let n_levels = level.iter().copied().max().unwrap_or(0) + 1;
    let mut out = vec![Vec::new(); n_levels];
    for (i, &l) in level.iter().enumerate() {
        out[l].push(i);
    }
    out
}

pub(crate) fn slot_name(s: OutSlot) -> String {
    match s {
        OutSlot::Deriv(i) => format!("deriv[{i}]"),
        OutSlot::Shared(i) => format!("shared[{i}]"),
    }
}

/// Which task pairs the race passes treat as potentially concurrent.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Granularity {
    /// Barrier executor: tasks within one level may overlap.
    #[default]
    Level,
    /// Work-stealing executor: any pair with no dependency path between
    /// them may overlap (a strict superset of the level pairs).
    Edge,
}

/// Ancestor sets as bitsets: `anc[i]` has bit `j` set iff there is a
/// dependency path from task `j` to task `i`.
fn ancestor_sets(n: usize, deps: &[Vec<usize>]) -> Vec<Vec<u64>> {
    let words = n.div_ceil(64);
    let mut anc = vec![vec![0u64; words]; n];
    // Dependencies point at predecessors; iterate to fixpoint (graphs
    // are small DAGs, and edges may not be index-ordered).
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            for &d in &deps[i] {
                let mut grew = anc[i][d / 64] & (1 << (d % 64)) == 0;
                anc[i][d / 64] |= 1 << (d % 64);
                let dset = anc[d].clone();
                for (slot, dv) in anc[i].iter_mut().zip(dset) {
                    let merged = *slot | dv;
                    if merged != *slot {
                        *slot = merged;
                        grew = true;
                    }
                }
                changed |= grew;
            }
        }
    }
    anc
}

/// Task pairs `(a, b)`, `a < b`, that may execute concurrently at the
/// given granularity. Shared between the concrete detector and the
/// symbolic engine ([`crate::sym`]) so both reason about exactly the
/// same concurrency relation.
pub(crate) fn concurrent_pairs_of(
    n: usize,
    deps: &[Vec<usize>],
    levels: &[Vec<usize>],
    granularity: Granularity,
) -> Vec<(usize, usize)> {
    match granularity {
        Granularity::Level => {
            let mut pairs = Vec::new();
            for level in levels {
                for (k, &a) in level.iter().enumerate() {
                    for &b in &level[k + 1..] {
                        pairs.push((a.min(b), a.max(b)));
                    }
                }
            }
            pairs
        }
        Granularity::Edge => {
            let anc = ancestor_sets(n, deps);
            let mut pairs = Vec::new();
            for a in 0..n {
                for b in a + 1..n {
                    let ordered = anc[b][a / 64] & (1 << (a % 64)) != 0
                        || anc[a][b / 64] & (1 << (b % 64)) != 0;
                    if !ordered {
                        pairs.push((a, b));
                    }
                }
            }
            pairs
        }
    }
}

fn concurrent_pairs(view: &ScheduleView, granularity: Granularity) -> Vec<(usize, usize)> {
    concurrent_pairs_of(view.tasks.len(), &view.deps, &view.levels, granularity)
}

/// Run all schedule passes at the given granularity, appending findings
/// to `out`.
pub fn check_schedule_at(view: &ScheduleView, granularity: Granularity, out: &mut Report) {
    let pos = SourcePos::default(); // generated code has no source span
    let overlap_phrase = match granularity {
        Granularity::Level => "in the same parallel level",
        Granularity::Edge => "with no dependency path ordering them",
    };

    // OM040 + OM041: conflicts between concurrency-eligible pairs.
    for (a, b) in concurrent_pairs(view, granularity) {
        let ta = &view.tasks[a];
        let tb = &view.tasks[b];
        for &wa in &ta.writes {
            if tb.writes.contains(&wa) {
                out.push(Diagnostic::new(
                    "OM040",
                    pos,
                    format!(
                        "write-write race: tasks `{}` and `{}` both write {} {overlap_phrase}",
                        ta.label,
                        tb.label,
                        slot_name(wa)
                    ),
                ));
            }
        }
        // Read-write in either direction; only shared slots are
        // readable cross-task.
        for (writer, reader) in [(ta, tb), (tb, ta)] {
            for &w in &writer.writes {
                if let OutSlot::Shared(s) = w {
                    if reader.reads_shared.contains(&s) {
                        out.push(Diagnostic::new(
                            "OM041",
                            pos,
                            format!(
                                "read-write race: task `{}` reads shared[{s}] while task `{}` writes it {overlap_phrase}",
                                reader.label, writer.label
                            ),
                        ));
                    }
                }
            }
        }
    }

    // OM042: every slot written exactly once across the whole graph.
    let mut writers: HashMap<OutSlot, Vec<usize>> = HashMap::new();
    for (i, t) in view.tasks.iter().enumerate() {
        for &w in &t.writes {
            writers.entry(w).or_default().push(i);
        }
    }
    for i in 0..view.dim {
        check_coverage(view, &writers, OutSlot::Deriv(i), out);
    }
    for s in 0..view.n_shared {
        check_coverage(view, &writers, OutSlot::Shared(s), out);
    }

    // OM043: edges not justified by dataflow.
    for (i, deps) in view.deps.iter().enumerate() {
        for &d in deps {
            let justified = view.tasks[d]
                .writes
                .iter()
                .any(|w| matches!(w, OutSlot::Shared(s) if view.tasks[i].reads_shared.contains(s)));
            if !justified {
                out.push(Diagnostic::new(
                    "OM043",
                    pos,
                    format!(
                        "false dependency: task `{}` depends on `{}` but reads nothing it writes",
                        view.tasks[i].label, view.tasks[d].label
                    ),
                ));
            }
        }
    }
}

/// Run all schedule passes at barrier-level granularity (the historical
/// default; the CLI pipeline checks at [`Granularity::Edge`]).
pub fn check_schedule(view: &ScheduleView, out: &mut Report) {
    check_schedule_at(view, Granularity::Level, out);
}

fn check_coverage(
    view: &ScheduleView,
    writers: &HashMap<OutSlot, Vec<usize>>,
    slot: OutSlot,
    out: &mut Report,
) {
    match writers.get(&slot).map(Vec::as_slice) {
        None | Some([]) => out.push(Diagnostic::new(
            "OM042",
            SourcePos::default(),
            format!("coverage violation: no task writes {}", slot_name(slot)),
        )),
        Some([_]) => {}
        Some(many) => {
            let labels: Vec<&str> = many.iter().map(|&i| view.tasks[i].label.as_str()).collect();
            out.push(Diagnostic::new(
                "OM042",
                SourcePos::default(),
                format!(
                    "coverage violation: {} is written by {} tasks ({})",
                    slot_name(slot),
                    many.len(),
                    labels.join(", ")
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(label: &str, writes: Vec<OutSlot>, reads_shared: Vec<usize>) -> TaskAccess {
        TaskAccess {
            label: label.into(),
            writes,
            reads_shared,
        }
    }

    /// producer writes shared[0]; two consumers read it into derivs.
    fn pipeline_view() -> ScheduleView {
        ScheduleView::from_parts(
            vec![
                task("p", vec![OutSlot::Shared(0)], vec![]),
                task("c0", vec![OutSlot::Deriv(0)], vec![0]),
                task("c1", vec![OutSlot::Deriv(1)], vec![0]),
            ],
            vec![vec![], vec![0], vec![0]],
        )
    }

    #[test]
    fn clean_pipeline_passes_all_checks() {
        let mut r = Report::default();
        check_schedule(&pipeline_view(), &mut r);
        assert!(r.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn merged_level_is_a_read_write_race() {
        let v = pipeline_view().with_levels(vec![vec![0, 1, 2]]);
        let mut r = Report::default();
        check_schedule(&v, &mut r);
        assert!(r.has_code("OM041"), "{:?}", r.diagnostics);
    }

    #[test]
    fn double_writer_is_both_race_and_coverage_violation() {
        let v = ScheduleView::from_parts(
            vec![
                task("a", vec![OutSlot::Deriv(0)], vec![]),
                task("b", vec![OutSlot::Deriv(0)], vec![]),
            ],
            vec![vec![], vec![]],
        );
        let mut r = Report::default();
        check_schedule(&v, &mut r);
        assert!(r.has_code("OM040"));
        assert!(r.has_code("OM042"));
    }

    #[test]
    fn missing_writer_is_a_coverage_violation() {
        let mut v = pipeline_view();
        v.dim = 3; // deriv[2] exists but nobody writes it
        let mut r = Report::default();
        check_schedule(&v, &mut r);
        assert!(r.has_code("OM042"));
    }

    #[test]
    fn clean_pipeline_passes_at_edge_granularity_too() {
        // The dep edges order producer before consumers, so removing the
        // barrier introduces no hazard.
        let mut r = Report::default();
        check_schedule_at(&pipeline_view(), Granularity::Edge, &mut r);
        assert!(r.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn cross_level_unordered_read_write_is_only_caught_at_edge_granularity() {
        // p (level 0) writes shared[0]; x reads it but is ordered only
        // after the unrelated q, so p and x land in *different* levels
        // while having no dependency path between them. The barrier
        // serializes them by accident; without the barrier this is a
        // read-write race — exactly the hazard class edge granularity
        // exists to catch.
        let v = ScheduleView::from_parts(
            vec![
                task("p", vec![OutSlot::Shared(0)], vec![]),
                task("q", vec![OutSlot::Deriv(0)], vec![]),
                task("x", vec![OutSlot::Deriv(1)], vec![0]),
            ],
            vec![vec![], vec![], vec![1]],
        );
        let mut level_report = Report::default();
        check_schedule_at(&v, Granularity::Level, &mut level_report);
        assert!(
            !level_report.has_code("OM041"),
            "{:?}",
            level_report.diagnostics
        );
        let mut edge_report = Report::default();
        check_schedule_at(&v, Granularity::Edge, &mut edge_report);
        assert!(
            edge_report.has_code("OM041"),
            "{:?}",
            edge_report.diagnostics
        );
    }

    #[test]
    fn edge_pairs_subsume_level_pairs() {
        // With levels *derived from the deps* (the executor's rule),
        // same-level pairs are unordered, so any race found at level
        // granularity is also found at edge granularity. Here the
        // producer → consumer edge is missing entirely: both tasks land
        // in level 0 and both passes must flag the read-write race.
        let v = ScheduleView::from_parts(
            vec![
                task("p", vec![OutSlot::Shared(0)], vec![]),
                task("c", vec![OutSlot::Deriv(0)], vec![0]),
            ],
            vec![vec![], vec![]],
        );
        let mut level_report = Report::default();
        check_schedule_at(&v, Granularity::Level, &mut level_report);
        let mut edge_report = Report::default();
        check_schedule_at(&v, Granularity::Edge, &mut edge_report);
        assert!(level_report.has_code("OM041"));
        assert!(edge_report.has_code("OM041"));
    }

    #[test]
    fn unjustified_edge_is_a_false_dependency() {
        let v = ScheduleView::from_parts(
            vec![
                task("a", vec![OutSlot::Deriv(0)], vec![]),
                task("b", vec![OutSlot::Deriv(1)], vec![]), // depends on a, reads nothing
            ],
            vec![vec![], vec![0]],
        );
        let mut r = Report::default();
        check_schedule(&v, &mut r);
        assert!(r.has_code("OM043"));
        assert!(!r.has_code("OM040"));
    }
}
