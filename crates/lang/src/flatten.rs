//! Model flattening: from the object-oriented equation model to a flat
//! system of scalar equations.
//!
//! This is the reproduction of the ObjectMath compiler's transformation
//! pipeline (paper Figures 8–9): inheritance expansion, composition,
//! instance arrays, `for`-equation unrolling, vector scalarization, and
//! parameter evaluation. The output — a [`FlatModel`] of scalar equations
//! over fully-qualified interned symbols — is what the dependency
//! analyzer and code generator consume.
//!
//! Design notes:
//!
//! * **Parameters are specialized to constants.** The generated code in
//!   the paper is specialized per model too; only *start values* remain
//!   runtime-settable ("it is essential that the start values for the
//!   simulation can be changed without re-compilation", §3.2). Evaluated
//!   parameter values are recorded in [`FlatModel::parameters`] for
//!   reporting.
//! * **Vectors are scalarized.** The paper notes the application arrays
//!   are 1×3/3×3 — "too small to benefit from data parallelism" (§3.2) —
//!   so components become independent scalar variables named `path.f[k]`.
//! * Variable *kinds* (state vs algebraic) are not decided here; the
//!   causalization pass in `om-ir` assigns them from the equations.

use crate::ast::*;
use crate::error::{LangError, SourcePos};
use crate::scope::ClassTable;
use om_expr::expr::{CmpOp, Expr, Func};
use om_expr::{simplify, Symbol};
use std::collections::HashMap;

/// The interned symbol for the free variable (simulation time).
pub fn time_symbol() -> Symbol {
    Symbol::intern("time")
}

/// A flattened continuous-time variable (one scalar component).
#[derive(Clone, Debug)]
pub struct FlatVar {
    /// Fully qualified name, e.g. `rollers[3].v[2]`.
    pub sym: Symbol,
    /// Start (initial) value; defaults to 0.
    pub start: f64,
    /// Instance path and class for diagnostics, e.g. `rollers[3] : Roller`.
    pub origin: String,
    /// Declaration site in the source (the defining class, which for
    /// inherited members is the base class line).
    pub pos: SourcePos,
    /// Whether the start value was given explicitly (declaration,
    /// binding, or initial equation) rather than defaulted to 0.
    pub explicit_start: bool,
}

/// An evaluated model parameter (recorded for reporting; occurrences in
/// equations have been replaced by the constant value).
#[derive(Clone, Debug)]
pub struct FlatParam {
    pub sym: Symbol,
    pub value: f64,
}

/// A flattened scalar equation `lhs = rhs`.
///
/// `lhs` is commonly `Der(x)` (explicit ODE) or `Var(v)` (algebraic
/// definition) but may be a general expression (acausal equation, e.g. a
/// force equilibrium); the causalization pass in `om-ir` solves those.
#[derive(Clone, Debug)]
pub struct FlatEquation {
    pub lhs: Expr,
    pub rhs: Expr,
    /// Instance path and class the equation came from.
    pub origin: String,
    /// Source position of the equation in its defining class.
    pub pos: SourcePos,
}

/// Variable classification produced later by causalization; defined here
/// so both `om-lang` consumers and `om-ir` share one vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarKind {
    /// Defined by a `der(x) = …` equation; part of the ODE state vector.
    State,
    /// Defined by an algebraic equation.
    Algebraic,
}

/// A flat system of scalar equations.
#[derive(Clone, Debug, Default)]
pub struct FlatModel {
    pub name: String,
    pub variables: Vec<FlatVar>,
    pub parameters: Vec<FlatParam>,
    pub equations: Vec<FlatEquation>,
}

impl FlatModel {
    /// Look up a variable by name.
    pub fn variable(&self, name: &str) -> Option<&FlatVar> {
        let sym = Symbol::intern(name);
        self.variables.iter().find(|v| v.sym == sym)
    }

    /// Start values as a map.
    pub fn start_map(&self) -> HashMap<Symbol, f64> {
        self.variables.iter().map(|v| (v.sym, v.start)).collect()
    }
}

/// Flatten a scope-checked unit into a [`FlatModel`].
pub fn flatten(unit: &Unit) -> Result<FlatModel, LangError> {
    let table = ClassTable::build(unit)?;
    let mut out = FlatModel {
        name: unit.model.name.clone(),
        ..FlatModel::default()
    };
    let root = instantiate(
        &table,
        &unit.model,
        String::new(),
        &HashMap::new(),
        &mut out,
    )?;
    apply_initial_equations(&table, &root, &mut out)?;
    emit_equations(&table, &root, &mut out)?;
    Ok(out)
}

/// Apply `initial equation` sections: each equation `var = expr;` (or a
/// `for` loop of them) sets start values. Right-hand sides must be
/// compile-time constants over parameters and loop indices.
///
/// Precedence: initial equations run after instantiation, so they
/// override both declaration defaults (`start = …`) and part-binding
/// start overrides — they are the strongest way to pin a start value.
fn apply_initial_equations(
    table: &ClassTable<'_>,
    inst: &Instance<'_>,
    out: &mut FlatModel,
) -> Result<(), LangError> {
    let mut loop_env: HashMap<String, i64> = HashMap::new();
    for eq in table.effective_initial_equations(inst.class) {
        apply_initial_equation(inst, eq, &mut loop_env, out)?;
    }
    for slot in inst.parts.values() {
        for child in &slot.instances {
            apply_initial_equations(table, child, out)?;
        }
    }
    Ok(())
}

fn apply_initial_equation(
    inst: &Instance<'_>,
    eq: &Equation,
    loop_env: &mut HashMap<String, i64>,
    out: &mut FlatModel,
) -> Result<(), LangError> {
    match eq {
        Equation::Simple { lhs, rhs, pos } => {
            let SExpr::Ref(path) = lhs else {
                return Err(LangError::flatten_at(
                    *pos,
                    "initial equation must assign to a variable",
                ));
            };
            let Resolved::Components(syms) = resolve_ref(inst, path, loop_env)? else {
                return Err(LangError::flatten_at(
                    *pos,
                    "initial equation assigns to a parameter",
                ));
            };
            let value = eval_initial_rhs(inst, rhs, loop_env)?;
            for sym in syms {
                let var = out
                    .variables
                    .iter_mut()
                    .find(|v| v.sym == sym)
                    .expect("variable was instantiated");
                var.start = value;
                var.explicit_start = true;
            }
            Ok(())
        }
        Equation::For {
            index,
            from,
            to,
            body,
            ..
        } => {
            for value in *from..=*to {
                loop_env.insert(index.clone(), value);
                for e in body {
                    apply_initial_equation(inst, e, loop_env, out)?;
                }
            }
            loop_env.remove(index);
            Ok(())
        }
    }
}

/// Evaluate an initial-equation right-hand side: constants, parameters,
/// loop indices, and arithmetic/functions over them.
fn eval_initial_rhs(
    inst: &Instance<'_>,
    e: &SExpr,
    loop_env: &HashMap<String, i64>,
) -> Result<f64, LangError> {
    // Loop indices shadow parameters; extend the parameter map.
    let mut params = inst.params.clone();
    for (k, v) in loop_env {
        params.insert(k.clone(), *v as f64);
    }
    eval_const(e, &params, "initial equation")
}

/// One instantiated object: parameter values, variable component symbols,
/// and nested part instances.
struct Instance<'u> {
    path: String,
    class: &'u ClassDef,
    params: HashMap<String, f64>,
    /// local variable name → (declared type, component symbols)
    vars: HashMap<String, (Ty, Vec<Symbol>)>,
    /// local part name → instances (singleton for scalar parts)
    parts: HashMap<String, PartSlot<'u>>,
}

struct PartSlot<'u> {
    is_array: bool,
    instances: Vec<Instance<'u>>,
}

/// Values bound onto an instance from outside (part bindings / extends
/// overrides), separated by what they target.
#[derive(Default, Clone)]
struct Overrides {
    params: HashMap<String, f64>,
    starts: HashMap<String, f64>,
}

fn qualified(path: &str, local: &str) -> String {
    if path.is_empty() {
        local.to_owned()
    } else {
        format!("{path}.{local}")
    }
}

fn instantiate<'u>(
    table: &ClassTable<'u>,
    class: &'u ClassDef,
    path: String,
    overrides: &HashMap<String, f64>,
    out: &mut FlatModel,
) -> Result<Instance<'u>, LangError> {
    // Split overrides by target member kind.
    let members = table.effective_members(class);
    let mut ov = Overrides::default();
    for (name, value) in overrides {
        let target = members.iter().find(|(m, _)| m.name() == *name);
        match target {
            Some((Member::Parameter { .. }, _)) => {
                ov.params.insert(name.clone(), *value);
            }
            Some((Member::Variable { .. }, _)) => {
                ov.starts.insert(name.clone(), *value);
            }
            _ => {
                return Err(LangError::flatten(format!(
                    "override `{name}` does not target a parameter or variable of `{}`",
                    class.name
                )))
            }
        }
    }

    // Merge `extends` overrides along the chain (derived classes win over
    // bases; explicit part bindings win over everything). The bindings
    // are evaluated lazily below, in parameter order, so they may
    // reference parameters that are already evaluated at that point.
    let extends_bindings: Vec<&Binding> = table.extends_bindings(class);

    let mut inst = Instance {
        path,
        class,
        params: HashMap::new(),
        vars: HashMap::new(),
        parts: HashMap::new(),
    };

    // Pass 1: parameters, in declaration order (base classes first), so
    // defaults may reference previously declared parameters.
    for (m, owner) in &members {
        if let Member::Parameter {
            name, ty, default, ..
        } = m
        {
            if !ty.is_scalar() {
                return Err(LangError::flatten(format!(
                    "vector parameters are not supported (`{}` in `{owner}`)",
                    name
                )));
            }
            let value = if let Some(v) = ov.params.get(name) {
                *v
            } else if let Some(b) = extends_bindings.iter().find(|b| b.name == *name) {
                eval_const(&b.value, &inst.params, &format!("override of `{name}`"))?
            } else if let Some(d) = default {
                eval_const(d, &inst.params, &format!("default of `{name}`"))?
            } else {
                return Err(LangError::flatten(format!(
                    "parameter `{}` of `{}` has no value (instance `{}`)",
                    name, class.name, inst.path
                )));
            };
            inst.params.insert(name.clone(), value);
            out.parameters.push(FlatParam {
                sym: Symbol::intern(&qualified(&inst.path, name)),
                value,
            });
        }
    }

    // Pass 2: variables.
    for (m, owner) in &members {
        if let Member::Variable {
            name,
            ty,
            start,
            pos,
        } = m
        {
            let mut explicit_start = true;
            let start_value = if let Some(v) = ov.starts.get(name) {
                *v
            } else if let Some(b) = extends_bindings.iter().find(|b| b.name == *name) {
                eval_const(
                    &b.value,
                    &inst.params,
                    &format!("start override of `{name}`"),
                )?
            } else if let Some(s) = start {
                eval_const(s, &inst.params, &format!("start value of `{name}`"))?
            } else {
                explicit_start = false;
                0.0
            };
            let mut syms = Vec::with_capacity(ty.dim);
            for k in 1..=ty.dim {
                let qual = if ty.is_scalar() {
                    qualified(&inst.path, name)
                } else {
                    format!("{}[{k}]", qualified(&inst.path, name))
                };
                let sym = Symbol::intern(&qual);
                syms.push(sym);
                out.variables.push(FlatVar {
                    sym,
                    start: start_value,
                    origin: format!(
                        "{} : {}",
                        if inst.path.is_empty() {
                            "<model>"
                        } else {
                            &inst.path
                        },
                        owner
                    ),
                    pos: *pos,
                    explicit_start,
                });
            }
            inst.vars.insert(name.clone(), (*ty, syms));
        }
    }

    // Pass 3: parts (composition / instance arrays).
    for (m, _) in &members {
        if let Member::Part {
            class: part_class_name,
            name,
            count,
            bindings,
            ..
        } = m
        {
            let part_class = table.get(part_class_name).ok_or_else(|| {
                LangError::flatten(format!("unknown part class `{part_class_name}`"))
            })?;
            // Bindings evaluate in the *enclosing* instance's parameter
            // scope.
            let mut bound: HashMap<String, f64> = HashMap::new();
            for b in bindings {
                let v = eval_const(
                    &b.value,
                    &inst.params,
                    &format!("binding `{}` of part `{name}`", b.name),
                )?;
                bound.insert(b.name.clone(), v);
            }
            let n = count.unwrap_or(1);
            let mut instances = Vec::with_capacity(n);
            for j in 1..=n {
                let child_path = if count.is_some() {
                    format!("{}[{j}]", qualified(&inst.path, name))
                } else {
                    qualified(&inst.path, name)
                };
                instances.push(instantiate(table, part_class, child_path, &bound, out)?);
            }
            inst.parts.insert(
                name.clone(),
                PartSlot {
                    is_array: count.is_some(),
                    instances,
                },
            );
        }
    }

    Ok(inst)
}

/// Evaluate a source expression to a compile-time constant (parameters of
/// the current instance are in scope; no variables, no time).
fn eval_const(e: &SExpr, params: &HashMap<String, f64>, what: &str) -> Result<f64, LangError> {
    match e {
        SExpr::Num(n) => Ok(*n),
        SExpr::Neg(a) => Ok(-eval_const(a, params, what)?),
        SExpr::Bin(op, a, b) => {
            let (x, y) = (eval_const(a, params, what)?, eval_const(b, params, what)?);
            Ok(match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::Pow => x.powf(y),
            })
        }
        SExpr::Call(name, args, _) => {
            let f = Func::from_name(name)
                .ok_or_else(|| LangError::flatten(format!("unknown function in {what}")))?;
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_const(a, params, what)?);
            }
            Ok(f.apply(&vals))
        }
        SExpr::Ref(path) if path.segs.len() == 1 && path.segs[0].indices.is_empty() => {
            let name = &path.segs[0].name;
            params.get(name).copied().ok_or_else(|| {
                LangError::flatten(format!(
                    "{what}: `{name}` is not a constant parameter in scope"
                ))
            })
        }
        _ => Err(LangError::flatten(format!(
            "{what} must be a constant expression"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Equation emission
// ---------------------------------------------------------------------------

/// A resolved reference: either a constant (parameter) or variable
/// components.
enum Resolved {
    Const(f64),
    Components(Vec<Symbol>),
}

fn emit_equations(
    table: &ClassTable<'_>,
    inst: &Instance<'_>,
    out: &mut FlatModel,
) -> Result<(), LangError> {
    let origin = format!(
        "{} : {}",
        if inst.path.is_empty() {
            "<model>"
        } else {
            &inst.path
        },
        inst.class.name
    );
    let equations = table.effective_equations(inst.class);
    let mut loop_env: HashMap<String, i64> = HashMap::new();
    for eq in equations {
        emit_equation(inst, eq, &mut loop_env, &origin, out)?;
    }
    for slot in inst.parts.values() {
        for child in &slot.instances {
            emit_equations(table, child, out)?;
        }
    }
    Ok(())
}

fn emit_equation(
    inst: &Instance<'_>,
    eq: &Equation,
    loop_env: &mut HashMap<String, i64>,
    origin: &str,
    out: &mut FlatModel,
) -> Result<(), LangError> {
    match eq {
        Equation::Simple { lhs, rhs, pos } => {
            let l = scalarize(inst, lhs, loop_env)?;
            let r = scalarize(inst, rhs, loop_env)?;
            let (l, r) = broadcast_pair(l, r).map_err(|(nl, nr)| {
                LangError::flatten_at(
                    *pos,
                    format!("{origin}: equation sides have incompatible dimensions {nl} and {nr}"),
                )
            })?;
            for (le, re) in l.into_iter().zip(r) {
                out.equations.push(FlatEquation {
                    lhs: simplify(&le),
                    rhs: simplify(&re),
                    origin: origin.to_owned(),
                    pos: *pos,
                });
            }
            Ok(())
        }
        Equation::For {
            index,
            from,
            to,
            body,
            ..
        } => {
            for value in *from..=*to {
                loop_env.insert(index.clone(), value);
                for e in body {
                    emit_equation(inst, e, loop_env, origin, out)?;
                }
            }
            loop_env.remove(index);
            Ok(())
        }
    }
}

/// Broadcast two component vectors to a common length, or report the two
/// lengths on failure.
#[allow(clippy::type_complexity)]
fn broadcast_pair(l: Vec<Expr>, r: Vec<Expr>) -> Result<(Vec<Expr>, Vec<Expr>), (usize, usize)> {
    match (l.len(), r.len()) {
        (a, b) if a == b => Ok((l, r)),
        (1, n) => Ok((vec![l[0].clone(); n], r)),
        (_, 1) => {
            let n = l.len();
            Ok((l, vec![r[0].clone(); n]))
        }
        (a, b) => Err((a, b)),
    }
}

/// Scalarize a source expression into its component expressions (length 1
/// for scalars).
fn scalarize(
    inst: &Instance<'_>,
    e: &SExpr,
    loop_env: &HashMap<String, i64>,
) -> Result<Vec<Expr>, LangError> {
    match e {
        SExpr::Num(n) => Ok(vec![Expr::Const(*n)]),
        SExpr::Time => Ok(vec![Expr::Var(time_symbol())]),
        SExpr::Ref(path) => match resolve_ref(inst, path, loop_env)? {
            Resolved::Const(v) => Ok(vec![Expr::Const(v)]),
            Resolved::Components(syms) => Ok(syms.into_iter().map(Expr::Var).collect()),
        },
        SExpr::Der(path) => match resolve_ref(inst, path, loop_env)? {
            Resolved::Const(_) => Err(LangError::flatten_at(
                path.pos,
                format!("cannot take der() of parameter `{}`", path.display()),
            )),
            Resolved::Components(syms) => Ok(syms.into_iter().map(Expr::Der).collect()),
        },
        SExpr::Call(name, args, pos) => {
            let f = Func::from_name(name)
                .ok_or_else(|| LangError::flatten_at(*pos, format!("unknown function `{name}`")))?;
            let mut scalar_args = Vec::with_capacity(args.len());
            for a in args {
                let mut comps = scalarize(inst, a, loop_env)?;
                if comps.len() != 1 {
                    return Err(LangError::flatten_at(
                        *pos,
                        format!("argument of `{name}` must be scalar"),
                    ));
                }
                scalar_args.push(comps.pop().expect("len 1"));
            }
            Ok(vec![Expr::Call(f, scalar_args)])
        }
        SExpr::Bin(op, a, b) => {
            let (l, r) =
                broadcast_pair(scalarize(inst, a, loop_env)?, scalarize(inst, b, loop_env)?)
                    .map_err(|(nl, nr)| {
                        LangError::flatten(format!(
                            "operands have incompatible dimensions {nl} and {nr}"
                        ))
                    })?;
            Ok(l.into_iter()
                .zip(r)
                .map(|(x, y)| match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => x / y,
                    BinOp::Pow => x.pow(y),
                })
                .collect())
        }
        SExpr::Neg(a) => Ok(scalarize(inst, a, loop_env)?
            .into_iter()
            .map(|x| x.neg())
            .collect()),
        SExpr::Rel(op, a, b) => {
            let l = expect_scalar(inst, a, loop_env, "comparison operand")?;
            let r = expect_scalar(inst, b, loop_env, "comparison operand")?;
            let c = match op {
                RelOp::Lt => CmpOp::Lt,
                RelOp::Le => CmpOp::Le,
                RelOp::Gt => CmpOp::Gt,
                RelOp::Ge => CmpOp::Ge,
                RelOp::Eq => CmpOp::EqCmp,
                RelOp::Ne => CmpOp::Ne,
            };
            Ok(vec![Expr::cmp(c, l, r)])
        }
        SExpr::And(a, b) => {
            let l = expect_scalar(inst, a, loop_env, "boolean operand")?;
            let r = expect_scalar(inst, b, loop_env, "boolean operand")?;
            Ok(vec![Expr::And(vec![l, r])])
        }
        SExpr::Or(a, b) => {
            let l = expect_scalar(inst, a, loop_env, "boolean operand")?;
            let r = expect_scalar(inst, b, loop_env, "boolean operand")?;
            Ok(vec![Expr::Or(vec![l, r])])
        }
        SExpr::Not(a) => {
            let x = expect_scalar(inst, a, loop_env, "boolean operand")?;
            Ok(vec![Expr::Not(Box::new(x))])
        }
        SExpr::If(c, t, e2) => {
            let cond = expect_scalar(inst, c, loop_env, "if condition")?;
            let (l, r) = broadcast_pair(
                scalarize(inst, t, loop_env)?,
                scalarize(inst, e2, loop_env)?,
            )
            .map_err(|(nl, nr)| {
                LangError::flatten(format!(
                    "if branches have incompatible dimensions {nl} and {nr}"
                ))
            })?;
            Ok(l.into_iter()
                .zip(r)
                .map(|(x, y)| Expr::ite(cond.clone(), x, y))
                .collect())
        }
        SExpr::Tuple(items) => {
            let mut comps = Vec::with_capacity(items.len());
            for item in items {
                let mut c = scalarize(inst, item, loop_env)?;
                if c.len() != 1 {
                    return Err(LangError::flatten(
                        "nested vector inside a vector literal".to_owned(),
                    ));
                }
                comps.push(c.pop().expect("len 1"));
            }
            Ok(comps)
        }
    }
}

fn expect_scalar(
    inst: &Instance<'_>,
    e: &SExpr,
    loop_env: &HashMap<String, i64>,
    what: &str,
) -> Result<Expr, LangError> {
    let mut comps = scalarize(inst, e, loop_env)?;
    if comps.len() != 1 {
        return Err(LangError::flatten(format!("{what} must be scalar")));
    }
    Ok(comps.pop().expect("len 1"))
}

/// Evaluate an index expression to an integer using the loop environment
/// and the instance's parameters.
fn eval_index(
    inst: &Instance<'_>,
    e: &SExpr,
    loop_env: &HashMap<String, i64>,
) -> Result<i64, LangError> {
    fn eval(
        inst: &Instance<'_>,
        e: &SExpr,
        loop_env: &HashMap<String, i64>,
    ) -> Result<f64, LangError> {
        match e {
            SExpr::Num(n) => Ok(*n),
            SExpr::Neg(a) => Ok(-eval(inst, a, loop_env)?),
            SExpr::Bin(op, a, b) => {
                let (x, y) = (eval(inst, a, loop_env)?, eval(inst, b, loop_env)?);
                Ok(match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => x / y,
                    BinOp::Pow => x.powf(y),
                })
            }
            SExpr::Ref(p) if p.segs.len() == 1 && p.segs[0].indices.is_empty() => {
                let name = &p.segs[0].name;
                if let Some(v) = loop_env.get(name) {
                    return Ok(*v as f64);
                }
                if let Some(v) = inst.params.get(name) {
                    return Ok(*v);
                }
                Err(LangError::flatten(format!(
                    "index expression references `{name}`, which is neither a loop index nor a parameter"
                )))
            }
            _ => Err(LangError::flatten(
                "index expression must be built from integers, loop indices, parameters, and arithmetic".to_owned(),
            )),
        }
    }
    let v = eval(inst, e, loop_env)?;
    if v.fract() != 0.0 {
        return Err(LangError::flatten(format!(
            "index expression evaluated to non-integer {v}"
        )));
    }
    Ok(v as i64)
}

/// Resolve a dotted reference within an instance.
fn resolve_ref(
    inst: &Instance<'_>,
    path: &RefPath,
    loop_env: &HashMap<String, i64>,
) -> Result<Resolved, LangError> {
    // Loop index used as a value.
    let first = &path.segs[0];
    if path.segs.len() == 1 && first.indices.is_empty() {
        if let Some(v) = loop_env.get(&first.name) {
            return Ok(Resolved::Const(*v as f64));
        }
    }

    let mut current = inst;
    for (i, seg) in path.segs.iter().enumerate() {
        let is_last = i + 1 == path.segs.len();
        if is_last {
            // Parameter?
            if seg.indices.is_empty() {
                if let Some(v) = current.params.get(&seg.name) {
                    return Ok(Resolved::Const(*v));
                }
            }
            // Variable?
            if let Some((ty, syms)) = current.vars.get(&seg.name) {
                return match seg.indices.len() {
                    0 => Ok(Resolved::Components(syms.clone())),
                    1 => {
                        let k = eval_index(inst, &seg.indices[0], loop_env)?;
                        if k < 1 || k as usize > ty.dim {
                            return Err(LangError::flatten_at(
                                path.pos,
                                format!(
                                    "component index {k} out of bounds for `{}` (dim {})",
                                    seg.name, ty.dim
                                ),
                            ));
                        }
                        Ok(Resolved::Components(vec![syms[k as usize - 1]]))
                    }
                    _ => Err(LangError::flatten_at(
                        path.pos,
                        format!("too many indices on `{}`", seg.name),
                    )),
                };
            }
            return Err(LangError::flatten_at(
                path.pos,
                format!(
                    "`{}` is not a parameter or variable of `{}` (in `{}`)",
                    seg.name,
                    current.class.name,
                    path.display()
                ),
            ));
        }
        // Interior segment: must be a part.
        let Some(slot) = current.parts.get(&seg.name) else {
            return Err(LangError::flatten_at(
                path.pos,
                format!(
                    "`{}` is not a part of `{}` (in `{}`)",
                    seg.name,
                    current.class.name,
                    path.display()
                ),
            ));
        };
        current = match (slot.is_array, seg.indices.len()) {
            (true, 1) => {
                let k = eval_index(inst, &seg.indices[0], loop_env)?;
                if k < 1 || k as usize > slot.instances.len() {
                    return Err(LangError::flatten_at(
                        path.pos,
                        format!(
                            "instance index {k} out of bounds for `{}` (size {})",
                            seg.name,
                            slot.instances.len()
                        ),
                    ));
                }
                &slot.instances[k as usize - 1]
            }
            (false, 0) => &slot.instances[0],
            (true, 0) => {
                return Err(LangError::flatten_at(
                    path.pos,
                    format!("instance array `{}` requires an index", seg.name),
                ))
            }
            _ => {
                return Err(LangError::flatten_at(
                    path.pos,
                    format!("scalar part `{}` cannot be indexed", seg.name),
                ))
            }
        };
    }
    unreachable!("path resolution always returns at the last segment")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_unit;

    fn flat(src: &str) -> FlatModel {
        let unit = parse_unit(src).unwrap();
        crate::scope::check(&unit).unwrap();
        flatten(&unit).unwrap()
    }

    fn flat_err(src: &str) -> LangError {
        let unit = parse_unit(src).unwrap();
        flatten(&unit).unwrap_err()
    }

    #[test]
    fn flattens_simple_oscillator() {
        let m = flat(
            "model Osc;
               Real x(start = 1.0);
               Real y;
               equation
                 der(x) = y;
                 der(y) = -x;
             end Osc;",
        );
        assert_eq!(m.name, "Osc");
        assert_eq!(m.variables.len(), 2);
        assert_eq!(m.equations.len(), 2);
        assert_eq!(m.variable("x").unwrap().start, 1.0);
        assert_eq!(m.variable("y").unwrap().start, 0.0);
        assert_eq!(m.equations[0].lhs, om_expr::der("x"));
        assert_eq!(m.equations[0].rhs, om_expr::var("y"));
    }

    #[test]
    fn parameters_fold_to_constants() {
        let m = flat(
            "model M;
               parameter Real k = 2.5;
               Real x;
               equation der(x) = -k*x;
             end M;",
        );
        assert_eq!(m.parameters.len(), 1);
        assert_eq!(m.parameters[0].value, 2.5);
        // -k*x with k folded: Mul[-2.5, x]
        assert_eq!(
            m.equations[0].rhs,
            simplify(&(om_expr::num(-2.5) * om_expr::var("x")))
        );
    }

    #[test]
    fn parameter_defaults_may_reference_earlier_parameters() {
        let m = flat(
            "model M;
               parameter Real a = 2.0;
               parameter Real b = a * 3.0;
               Real x;
               equation der(x) = b;
             end M;",
        );
        assert_eq!(m.parameters[1].value, 6.0);
    }

    #[test]
    fn inheritance_brings_members_and_equations() {
        let m = flat(
            "class Base;
               parameter Real k = 1.0;
               Real x(start = 1.0);
               equation der(x) = -k*x;
             end Base;
             class Fast extends Base (k = 10.0);
             end Fast;
             model M;
               part Fast f;
             end M;",
        );
        assert_eq!(m.variables.len(), 1);
        assert_eq!(m.variables[0].sym.name(), "f.x");
        assert_eq!(m.parameters[0].value, 10.0);
        assert_eq!(
            m.equations[0].rhs,
            simplify(&(om_expr::num(-10.0) * om_expr::var("f.x")))
        );
    }

    #[test]
    fn part_bindings_override_parameters_and_starts() {
        let m = flat(
            "class Body;
               parameter Real m = 1.0;
               Real v(start = 0.0);
               equation der(v) = 9.81/m;
             end Body;
             model M;
               part Body b (m = 4.0, v = 7.0);
             end M;",
        );
        assert_eq!(m.parameters[0].value, 4.0);
        assert_eq!(m.variable("b.v").unwrap().start, 7.0);
    }

    #[test]
    fn instance_arrays_expand() {
        let m = flat(
            "class A;
               Real x(start = 1.0);
               equation der(x) = -x;
             end A;
             model M;
               part A a[3];
             end M;",
        );
        assert_eq!(m.variables.len(), 3);
        let names: Vec<&str> = m.variables.iter().map(|v| v.sym.name()).collect();
        assert_eq!(names, vec!["a[1].x", "a[2].x", "a[3].x"]);
        assert_eq!(m.equations.len(), 3);
    }

    #[test]
    fn for_loops_unroll_with_index_arithmetic() {
        let m = flat(
            "class A; Real x; end A;
             model M;
               part A a[3];
               equation
                 for i in 1:2 loop
                   der(a[i].x) = a[i+1].x;
                 end for;
                 der(a[3].x) = a[1].x;
             end M;",
        );
        assert_eq!(m.equations.len(), 3);
        assert_eq!(m.equations[0].lhs, om_expr::der("a[1].x"));
        assert_eq!(m.equations[0].rhs, om_expr::var("a[2].x"));
        assert_eq!(m.equations[1].rhs, om_expr::var("a[3].x"));
        assert_eq!(m.equations[2].rhs, om_expr::var("a[1].x"));
    }

    #[test]
    fn loop_index_as_value() {
        let m = flat(
            "class A; Real x; end A;
             model M;
               part A a[2];
               equation
                 for i in 1:2 loop
                   der(a[i].x) = i * 10.0;
                 end for;
             end M;",
        );
        assert_eq!(m.equations[0].rhs, om_expr::num(10.0));
        assert_eq!(m.equations[1].rhs, om_expr::num(20.0));
    }

    #[test]
    fn vectors_scalarize_componentwise() {
        let m = flat(
            "model M;
               Real[3] f;
               Real[3] v;
               equation
                 f = {1.0, 2.0, 3.0};
                 der(v) = f;
             end M;",
        );
        assert_eq!(m.variables.len(), 6);
        assert_eq!(m.equations.len(), 6);
        assert_eq!(m.equations[0].lhs, om_expr::var("f[1]"));
        assert_eq!(m.equations[0].rhs, om_expr::num(1.0));
        assert_eq!(m.equations[3].lhs, om_expr::der("v[1]"));
        assert_eq!(m.equations[3].rhs, om_expr::var("f[1]"));
    }

    #[test]
    fn scalar_broadcasts_over_vector() {
        let m = flat(
            "model M;
               Real[3] v;
               equation der(v) = 0.0;
             end M;",
        );
        assert_eq!(m.equations.len(), 3);
        for eq in &m.equations {
            assert_eq!(eq.rhs, om_expr::num(0.0));
        }
    }

    #[test]
    fn vector_component_access() {
        let m = flat(
            "model M;
               Real[2] f;
               Real s;
               equation
                 f = {3.0, 4.0};
                 s = sqrt(f[1]^2 + f[2]^2);
             end M;",
        );
        let eq = &m.equations[2];
        assert_eq!(eq.lhs, om_expr::var("s"));
        assert!(eq.rhs.depends_on(Symbol::intern("f[1]")));
        assert!(eq.rhs.depends_on(Symbol::intern("f[2]")));
    }

    #[test]
    fn nested_composition_qualifies_names() {
        let m = flat(
            "class Inner; Real q; end Inner;
             class Outer; part Inner i; end Outer;
             model M;
               part Outer o;
               equation der(o.i.q) = 1.0;
             end M;",
        );
        assert_eq!(m.variables[0].sym.name(), "o.i.q");
    }

    #[test]
    fn time_resolves_to_builtin() {
        let m = flat("model M; Real x; equation der(x) = time; end M;");
        assert_eq!(m.equations[0].rhs, Expr::Var(time_symbol()));
    }

    #[test]
    fn acausal_equation_is_preserved() {
        // Force equilibrium style: x + y = 0 stays as a general equation.
        let m = flat(
            "model M;
               Real x; Real y;
               equation
                 der(x) = y;
                 x + y = 0.0;
             end M;",
        );
        assert_eq!(m.equations.len(), 2);
        let eq = &m.equations[1];
        assert!(eq.lhs.as_var().is_none() || eq.lhs.as_var().is_some());
        assert_eq!(
            simplify(&eq.lhs),
            simplify(&(om_expr::var("x") + om_expr::var("y")))
        );
    }

    #[test]
    fn errors_on_dimension_mismatch() {
        let e = flat_err("model M; Real[3] v; Real[2] w; equation v = w; end M;");
        assert!(e.message.contains("incompatible dimensions"));
    }

    #[test]
    fn errors_on_out_of_bounds_instance_index() {
        let e = flat_err(
            "class A; Real x; end A;
             model M; part A a[2]; equation der(a[3].x) = 0.0; end M;",
        );
        assert!(e.message.contains("out of bounds"));
    }

    #[test]
    fn errors_on_missing_parameter_value() {
        let e = flat_err(
            "class A; parameter Real k; Real x; equation der(x) = k; end A;
             model M; part A a; end M;",
        );
        assert!(e.message.contains("has no value"));
    }

    #[test]
    fn errors_on_der_of_parameter() {
        let e = flat_err("model M; parameter Real k = 1.0; Real x; equation der(k) = x; end M;");
        assert!(e.message.contains("der() of parameter") || e.message.contains("parameter"));
    }

    #[test]
    fn part_binding_evaluates_in_enclosing_scope() {
        let m = flat(
            "class A; parameter Real k = 0.0; Real x; equation der(x) = k; end A;
             model M;
               parameter Real base = 5.0;
               part A a (k = base * 2.0);
             end M;",
        );
        let a_k = m.parameters.iter().find(|p| p.sym.name() == "a.k").unwrap();
        assert_eq!(a_k.value, 10.0);
    }
}

#[cfg(test)]
mod initial_equation_tests {
    use super::*;
    use crate::parser::parse_unit;

    fn flat(src: &str) -> FlatModel {
        let unit = parse_unit(src).unwrap();
        crate::scope::check(&unit).unwrap();
        flatten(&unit).unwrap()
    }

    #[test]
    fn initial_equation_sets_start_values() {
        let m = flat(
            "model M;
               parameter Real amp = 3.0;
               Real x; Real y;
               initial equation
                 x = amp * 2.0;
                 y = -1.0;
               equation
                 der(x) = y; der(y) = -x;
             end M;",
        );
        assert_eq!(m.variable("x").unwrap().start, 6.0);
        assert_eq!(m.variable("y").unwrap().start, -1.0);
    }

    #[test]
    fn initial_for_loop_sets_vector_profile() {
        let m = flat(
            "model M;
               Real[5] u;
               initial equation
                 for i in 1:5 loop
                   u[i] = i * 10.0;
                 end for;
               equation
                 der(u) = 0.0;
             end M;",
        );
        for i in 1..=5 {
            assert_eq!(
                m.variable(&format!("u[{i}]")).unwrap().start,
                i as f64 * 10.0
            );
        }
    }

    #[test]
    fn initial_equations_are_inherited() {
        let m = flat(
            "class Base;
               Real x;
               initial equation x = 7.0;
               equation der(x) = -x;
             end Base;
             model M; part Base b; end M;",
        );
        assert_eq!(m.variable("b.x").unwrap().start, 7.0);
    }

    #[test]
    fn initial_equation_overrides_declaration_and_binding() {
        let m = flat(
            "class A;
               Real x(start = 1.0);
               initial equation x = 9.0;
               equation der(x) = -x;
             end A;
             model M; part A a (x = 5.0); end M;",
        );
        assert_eq!(m.variable("a.x").unwrap().start, 9.0);
    }

    #[test]
    fn whole_vector_assignment_broadcasts() {
        let m = flat(
            "model M;
               Real[3] v;
               initial equation v = 4.0;
               equation der(v) = 0.0;
             end M;",
        );
        for i in 1..=3 {
            assert_eq!(m.variable(&format!("v[{i}]")).unwrap().start, 4.0);
        }
    }

    #[test]
    fn rejects_nonconstant_initial_rhs() {
        let unit = parse_unit(
            "model M;
               Real x; Real y;
               initial equation x = y;
               equation der(x) = -x; der(y) = -y;
             end M;",
        )
        .unwrap();
        let err = flatten(&unit).unwrap_err();
        assert!(err.message.contains("constant"), "{err}");
    }

    #[test]
    fn rejects_assignment_to_parameter() {
        let unit = parse_unit(
            "model M;
               parameter Real k = 1.0;
               Real x;
               initial equation k = 2.0;
               equation der(x) = -k*x;
             end M;",
        )
        .unwrap();
        let err = flatten(&unit).unwrap_err();
        assert!(err.message.contains("parameter"), "{err}");
    }
}
