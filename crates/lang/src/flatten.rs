//! Model flattening: from the object-oriented equation model to a flat
//! system of scalar equations.
//!
//! This is the reproduction of the ObjectMath compiler's transformation
//! pipeline (paper Figures 8–9): inheritance expansion, composition,
//! instance arrays, `for`-equation unrolling, vector scalarization, and
//! parameter evaluation. The output — a [`FlatModel`] of scalar equations
//! over fully-qualified interned symbols — is what the dependency
//! analyzer and code generator consume.
//!
//! Design notes:
//!
//! * **Parameters are specialized to constants.** The generated code in
//!   the paper is specialized per model too; only *start values* remain
//!   runtime-settable ("it is essential that the start values for the
//!   simulation can be changed without re-compilation", §3.2). Evaluated
//!   parameter values are recorded in [`FlatModel::parameters`] for
//!   reporting.
//! * **Vectors are scalarized.** The paper notes the application arrays
//!   are 1×3/3×3 — "too small to benefit from data parallelism" (§3.2) —
//!   so components become independent scalar variables named `path.f[k]`.
//! * Variable *kinds* (state vs algebraic) are not decided here; the
//!   causalization pass in `om-ir` assigns them from the equations.

use crate::ast::*;
use crate::error::{LangError, SourcePos};
use crate::scope::ClassTable;
use om_expr::expr::{CmpOp, Expr, Func};
use om_expr::{simplify, Symbol};
use std::collections::HashMap;

/// The interned symbol for the free variable (simulation time).
pub fn time_symbol() -> Symbol {
    Symbol::intern("time")
}

/// A flattened continuous-time variable (one scalar component).
#[derive(Clone, Debug)]
pub struct FlatVar {
    /// Fully qualified name, e.g. `rollers[3].v[2]`.
    pub sym: Symbol,
    /// Start (initial) value; defaults to 0.
    pub start: f64,
    /// Instance path and class for diagnostics, e.g. `rollers[3] : Roller`.
    pub origin: String,
    /// Declaration site in the source (the defining class, which for
    /// inherited members is the base class line).
    pub pos: SourcePos,
    /// Whether the start value was given explicitly (declaration,
    /// binding, or initial equation) rather than defaulted to 0.
    pub explicit_start: bool,
}

/// An evaluated model parameter (recorded for reporting; occurrences in
/// equations have been replaced by the constant value).
#[derive(Clone, Debug)]
pub struct FlatParam {
    pub sym: Symbol,
    pub value: f64,
}

/// A flattened scalar equation `lhs = rhs`.
///
/// `lhs` is commonly `Der(x)` (explicit ODE) or `Var(v)` (algebraic
/// definition) but may be a general expression (acausal equation, e.g. a
/// force equilibrium); the causalization pass in `om-ir` solves those.
#[derive(Clone, Debug)]
pub struct FlatEquation {
    pub lhs: Expr,
    pub rhs: Expr,
    /// Instance path and class the equation came from.
    pub origin: String,
    /// Source position of the equation in its defining class.
    pub pos: SourcePos,
}

/// Variable classification produced later by causalization; defined here
/// so both `om-lang` consumers and `om-ir` share one vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarKind {
    /// Defined by a `der(x) = …` equation; part of the ODE state vector.
    State,
    /// Defined by an algebraic equation.
    Algebraic,
}

/// An array equation class: one representative differential equation
/// standing for a whole iteration range.
///
/// Produced only by array-aware flattening ([`FlattenOptions`] with
/// `scalarize_all = false`), and only when substituting any iteration
/// into the representative is provably bitwise-identical to scalarizing
/// that iteration from source (see [`om_expr::arrays`]). `rows` maps
/// each symbol of the representative right-hand side to its
/// per-iteration symbols; `states[k]` is the state whose derivative
/// iteration `k` defines.
#[derive(Clone, Debug)]
pub struct EqClass {
    /// Derivative targets, one per iteration (`states[0]` is the
    /// representative's).
    pub states: Vec<Symbol>,
    /// Simplified representative right-hand side.
    pub rhs: Expr,
    /// Representative symbol → per-iteration symbols. Includes the
    /// state row; symbols of `rhs` not listed here are
    /// iteration-invariant.
    pub rows: Vec<(Symbol, Vec<Symbol>)>,
    pub origin: String,
    pub pos: SourcePos,
}

impl EqClass {
    /// Number of iterations the class covers.
    pub fn cardinality(&self) -> usize {
        self.states.len()
    }

    /// The scalarized right-hand side of iteration `k`, bitwise equal
    /// to what the scalarizing oracle would have produced.
    pub fn rhs_at(&self, k: usize) -> Expr {
        om_expr::arrays::instantiate_row(&self.rhs, &self.rows, k)
    }
}

/// A differential array equation that array-aware flattening had to
/// scalarize after all. Recorded so diagnostics (lint `OM060`) can tell
/// the user exactly which equation fell off the fast path and why.
#[derive(Clone, Debug)]
pub struct ClassFallback {
    pub origin: String,
    pub pos: SourcePos,
    pub reason: String,
}

/// Options controlling how flattening treats instance arrays and
/// `for`-equations.
#[derive(Clone, Copy, Debug)]
pub struct FlattenOptions {
    /// Expand every array equation into scalar copies (the oracle — the
    /// paper's original behavior). When false, uniform differential
    /// array equations are kept as symbolic [`EqClass`]es and only
    /// non-uniform patterns are scalarized.
    pub scalarize_all: bool,
}

impl Default for FlattenOptions {
    fn default() -> FlattenOptions {
        FlattenOptions {
            scalarize_all: true,
        }
    }
}

/// A flat system of scalar equations.
#[derive(Clone, Debug, Default)]
pub struct FlatModel {
    pub name: String,
    pub variables: Vec<FlatVar>,
    pub parameters: Vec<FlatParam>,
    pub equations: Vec<FlatEquation>,
    /// Symbolic array equation classes (empty under the scalarizing
    /// oracle).
    pub classes: Vec<EqClass>,
    /// Differential array equations that fell back to scalarization.
    pub class_fallbacks: Vec<ClassFallback>,
}

impl FlatModel {
    /// Look up a variable by name.
    pub fn variable(&self, name: &str) -> Option<&FlatVar> {
        let sym = Symbol::intern(name);
        self.variables.iter().find(|v| v.sym == sym)
    }

    /// Start values as a map.
    pub fn start_map(&self) -> HashMap<Symbol, f64> {
        self.variables.iter().map(|v| (v.sym, v.start)).collect()
    }
}

/// Flatten a scope-checked unit into a [`FlatModel`] with every array
/// equation scalarized (the paper's original pipeline; the oracle the
/// array-aware path is checked against).
pub fn flatten(unit: &Unit) -> Result<FlatModel, LangError> {
    flatten_with(unit, &FlattenOptions::default())
}

/// Flatten keeping uniform array equations symbolic as [`EqClass`]es.
pub fn flatten_arrays(unit: &Unit) -> Result<FlatModel, LangError> {
    flatten_with(
        unit,
        &FlattenOptions {
            scalarize_all: false,
        },
    )
}

/// Flatten a scope-checked unit under explicit [`FlattenOptions`].
pub fn flatten_with(unit: &Unit, opts: &FlattenOptions) -> Result<FlatModel, LangError> {
    let table = ClassTable::build(unit)?;
    let mut out = FlatModel {
        name: unit.model.name.clone(),
        ..FlatModel::default()
    };
    let root = instantiate(
        &table,
        &unit.model,
        String::new(),
        &HashMap::new(),
        &mut out,
    )?;
    let var_index: om_expr::SymbolMap<usize> = out
        .variables
        .iter()
        .enumerate()
        .map(|(i, v)| (v.sym, i))
        .collect();
    apply_initial_equations(&table, &root, &var_index, &mut out)?;
    emit_equations(&table, &root, &mut out, opts)?;
    Ok(out)
}

/// Apply `initial equation` sections: each equation `var = expr;` (or a
/// `for` loop of them) sets start values. Right-hand sides must be
/// compile-time constants over parameters and loop indices.
///
/// Precedence: initial equations run after instantiation, so they
/// override both declaration defaults (`start = …`) and part-binding
/// start overrides — they are the strongest way to pin a start value.
fn apply_initial_equations(
    table: &ClassTable<'_>,
    inst: &Instance<'_>,
    var_index: &om_expr::SymbolMap<usize>,
    out: &mut FlatModel,
) -> Result<(), LangError> {
    let mut loop_env: HashMap<String, i64> = HashMap::new();
    // Parameter scope for right-hand sides, extended in place with loop
    // indices (which shadow parameters) as loops are entered.
    let mut params = inst.params.clone();
    for eq in table.effective_initial_equations(inst.class) {
        apply_initial_equation(inst, eq, &mut loop_env, &mut params, var_index, out)?;
    }
    for slot in inst.parts.values() {
        for child in &slot.instances {
            apply_initial_equations(table, child, var_index, out)?;
        }
    }
    Ok(())
}

fn apply_initial_equation(
    inst: &Instance<'_>,
    eq: &Equation,
    loop_env: &mut HashMap<String, i64>,
    params: &mut HashMap<String, f64>,
    var_index: &om_expr::SymbolMap<usize>,
    out: &mut FlatModel,
) -> Result<(), LangError> {
    match eq {
        Equation::Simple { lhs, rhs, pos } => {
            let SExpr::Ref(path) = lhs else {
                return Err(LangError::flatten_at(
                    *pos,
                    "initial equation must assign to a variable",
                ));
            };
            let Resolved::Components(syms) = resolve_ref(inst, path, loop_env)? else {
                return Err(LangError::flatten_at(
                    *pos,
                    "initial equation assigns to a parameter",
                ));
            };
            let value = eval_const(rhs, params, "initial equation")?;
            for sym in syms {
                let var =
                    &mut out.variables[*var_index.get(&sym).expect("variable was instantiated")];
                var.start = value;
                var.explicit_start = true;
            }
            Ok(())
        }
        Equation::For {
            index,
            from,
            to,
            body,
            ..
        } => {
            // The loop index shadows any same-named parameter for the
            // duration of the loop. Insert the bindings once and update
            // them in place per iteration.
            let shadowed = params.get(index).copied();
            loop_env.insert(index.clone(), *from);
            params.insert(index.clone(), *from as f64);
            for value in *from..=*to {
                *loop_env.get_mut(index).expect("inserted above") = value;
                *params.get_mut(index).expect("inserted above") = value as f64;
                for e in body {
                    apply_initial_equation(inst, e, loop_env, params, var_index, out)?;
                }
            }
            loop_env.remove(index);
            match shadowed {
                Some(v) => {
                    params.insert(index.clone(), v);
                }
                None => {
                    params.remove(index);
                }
            }
            Ok(())
        }
    }
}

/// One instantiated object: parameter values, variable component symbols,
/// and nested part instances.
struct Instance<'u> {
    path: String,
    class: &'u ClassDef,
    params: HashMap<String, f64>,
    /// local variable name → (declared type, component symbols)
    vars: HashMap<String, (Ty, Vec<Symbol>)>,
    /// local part name → instances (singleton for scalar parts)
    parts: HashMap<String, PartSlot<'u>>,
}

struct PartSlot<'u> {
    is_array: bool,
    instances: Vec<Instance<'u>>,
}

/// Values bound onto an instance from outside (part bindings / extends
/// overrides), separated by what they target.
#[derive(Default, Clone)]
struct Overrides {
    params: HashMap<String, f64>,
    starts: HashMap<String, f64>,
}

fn qualified(path: &str, local: &str) -> String {
    if path.is_empty() {
        local.to_owned()
    } else {
        format!("{path}.{local}")
    }
}

fn instantiate<'u>(
    table: &ClassTable<'u>,
    class: &'u ClassDef,
    path: String,
    overrides: &HashMap<String, f64>,
    out: &mut FlatModel,
) -> Result<Instance<'u>, LangError> {
    // Split overrides by target member kind.
    let members = table.effective_members(class);
    let mut ov = Overrides::default();
    for (name, value) in overrides {
        let target = members.iter().find(|(m, _)| m.name() == *name);
        match target {
            Some((Member::Parameter { .. }, _)) => {
                ov.params.insert(name.clone(), *value);
            }
            Some((Member::Variable { .. }, _)) => {
                ov.starts.insert(name.clone(), *value);
            }
            _ => {
                return Err(LangError::flatten(format!(
                    "override `{name}` does not target a parameter or variable of `{}`",
                    class.name
                )))
            }
        }
    }

    // Merge `extends` overrides along the chain (derived classes win over
    // bases; explicit part bindings win over everything). The bindings
    // are evaluated lazily below, in parameter order, so they may
    // reference parameters that are already evaluated at that point.
    let extends_bindings: Vec<&Binding> = table.extends_bindings(class);

    let mut inst = Instance {
        path,
        class,
        params: HashMap::new(),
        vars: HashMap::new(),
        parts: HashMap::new(),
    };

    // Pass 1: parameters, in declaration order (base classes first), so
    // defaults may reference previously declared parameters.
    for (m, owner) in &members {
        if let Member::Parameter {
            name, ty, default, ..
        } = m
        {
            if !ty.is_scalar() {
                return Err(LangError::flatten(format!(
                    "vector parameters are not supported (`{}` in `{owner}`)",
                    name
                )));
            }
            let value = if let Some(v) = ov.params.get(name) {
                *v
            } else if let Some(b) = extends_bindings.iter().find(|b| b.name == *name) {
                eval_const(&b.value, &inst.params, &format!("override of `{name}`"))?
            } else if let Some(d) = default {
                eval_const(d, &inst.params, &format!("default of `{name}`"))?
            } else {
                return Err(LangError::flatten(format!(
                    "parameter `{}` of `{}` has no value (instance `{}`)",
                    name, class.name, inst.path
                )));
            };
            inst.params.insert(name.clone(), value);
            out.parameters.push(FlatParam {
                sym: Symbol::intern(&qualified(&inst.path, name)),
                value,
            });
        }
    }

    // Pass 2: variables.
    for (m, owner) in &members {
        if let Member::Variable {
            name,
            ty,
            start,
            pos,
        } = m
        {
            let mut explicit_start = true;
            let start_value = if let Some(v) = ov.starts.get(name) {
                *v
            } else if let Some(b) = extends_bindings.iter().find(|b| b.name == *name) {
                eval_const(
                    &b.value,
                    &inst.params,
                    &format!("start override of `{name}`"),
                )?
            } else if let Some(s) = start {
                eval_const(s, &inst.params, &format!("start value of `{name}`"))?
            } else {
                explicit_start = false;
                0.0
            };
            let mut syms = Vec::with_capacity(ty.dim);
            for k in 1..=ty.dim {
                let qual = if ty.is_scalar() {
                    qualified(&inst.path, name)
                } else {
                    format!("{}[{k}]", qualified(&inst.path, name))
                };
                let sym = Symbol::intern(&qual);
                syms.push(sym);
                out.variables.push(FlatVar {
                    sym,
                    start: start_value,
                    origin: format!(
                        "{} : {}",
                        if inst.path.is_empty() {
                            "<model>"
                        } else {
                            &inst.path
                        },
                        owner
                    ),
                    pos: *pos,
                    explicit_start,
                });
            }
            inst.vars.insert(name.clone(), (*ty, syms));
        }
    }

    // Pass 3: parts (composition / instance arrays).
    for (m, _) in &members {
        if let Member::Part {
            class: part_class_name,
            name,
            count,
            bindings,
            ..
        } = m
        {
            let part_class = table.get(part_class_name).ok_or_else(|| {
                LangError::flatten(format!("unknown part class `{part_class_name}`"))
            })?;
            // Bindings evaluate in the *enclosing* instance's parameter
            // scope.
            let mut bound: HashMap<String, f64> = HashMap::new();
            for b in bindings {
                let v = eval_const(
                    &b.value,
                    &inst.params,
                    &format!("binding `{}` of part `{name}`", b.name),
                )?;
                bound.insert(b.name.clone(), v);
            }
            let n = count.unwrap_or(1);
            let mut instances = Vec::with_capacity(n);
            for j in 1..=n {
                let child_path = if count.is_some() {
                    format!("{}[{j}]", qualified(&inst.path, name))
                } else {
                    qualified(&inst.path, name)
                };
                instances.push(instantiate(table, part_class, child_path, &bound, out)?);
            }
            inst.parts.insert(
                name.clone(),
                PartSlot {
                    is_array: count.is_some(),
                    instances,
                },
            );
        }
    }

    Ok(inst)
}

/// Evaluate a source expression to a compile-time constant (parameters of
/// the current instance are in scope; no variables, no time).
fn eval_const(e: &SExpr, params: &HashMap<String, f64>, what: &str) -> Result<f64, LangError> {
    match e {
        SExpr::Num(n) => Ok(*n),
        SExpr::Neg(a) => Ok(-eval_const(a, params, what)?),
        SExpr::Bin(op, a, b) => {
            let (x, y) = (eval_const(a, params, what)?, eval_const(b, params, what)?);
            Ok(match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::Pow => x.powf(y),
            })
        }
        SExpr::Call(name, args, _) => {
            let f = Func::from_name(name)
                .ok_or_else(|| LangError::flatten(format!("unknown function in {what}")))?;
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_const(a, params, what)?);
            }
            Ok(f.apply(&vals))
        }
        SExpr::Ref(path) if path.segs.len() == 1 && path.segs[0].indices.is_empty() => {
            let name = &path.segs[0].name;
            params.get(name).copied().ok_or_else(|| {
                LangError::flatten(format!(
                    "{what}: `{name}` is not a constant parameter in scope"
                ))
            })
        }
        _ => Err(LangError::flatten(format!(
            "{what} must be a constant expression"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Equation emission
// ---------------------------------------------------------------------------

/// A resolved reference: either a constant (parameter) or variable
/// components.
enum Resolved {
    Const(f64),
    Components(Vec<Symbol>),
}

fn emit_equations(
    table: &ClassTable<'_>,
    inst: &Instance<'_>,
    out: &mut FlatModel,
    opts: &FlattenOptions,
) -> Result<(), LangError> {
    let origin = format!(
        "{} : {}",
        if inst.path.is_empty() {
            "<model>"
        } else {
            &inst.path
        },
        inst.class.name
    );
    let equations = table.effective_equations(inst.class);
    let mut loop_env: HashMap<String, i64> = HashMap::new();
    for eq in equations {
        emit_equation(inst, eq, &mut loop_env, &origin, out, opts)?;
    }
    for slot in inst.parts.values() {
        // Instance arrays: the sibling instances of one part array share
        // their class, parameter bindings, and equations, so their raw
        // equation streams are structurally identical up to the instance
        // prefix (`name[1].` vs `name[j].`). Classify them as one group
        // instead of emitting n copies.
        if !opts.scalarize_all && slot.is_array && slot.instances.len() >= 2 {
            let mut streams = Vec::with_capacity(slot.instances.len());
            for child in &slot.instances {
                let mut s = Vec::new();
                collect_instance_raw(table, child, &mut s)?;
                streams.push(s);
            }
            if streams.iter().all(|s| s.len() == streams[0].len()) {
                classify_streams(streams, out);
                continue;
            }
            // Ragged streams cannot happen for sibling instances, but if
            // they ever do, scalarize — never guess.
        }
        for child in &slot.instances {
            emit_equations(table, child, out, opts)?;
        }
    }
    Ok(())
}

fn emit_equation(
    inst: &Instance<'_>,
    eq: &Equation,
    loop_env: &mut HashMap<String, i64>,
    origin: &str,
    out: &mut FlatModel,
    opts: &FlattenOptions,
) -> Result<(), LangError> {
    match eq {
        Equation::Simple { .. } => {
            let mut raw = Vec::new();
            collect_raw(inst, eq, loop_env, origin, &mut raw)?;
            for r in raw {
                out.equations.push(FlatEquation {
                    lhs: simplify(&r.lhs),
                    rhs: simplify(&r.rhs),
                    origin: r.origin,
                    pos: r.pos,
                });
            }
            Ok(())
        }
        Equation::For {
            index,
            from,
            to,
            body,
            ..
        } => {
            // Array-aware: scalarize each iteration *raw* (no simplify),
            // then classify each equation position across iterations.
            if !opts.scalarize_all && *to - *from + 1 >= 2 {
                // Fast path: for scalar bodies whose loop index appears
                // only inside reference indices, classify from
                // per-iteration leaf renamings without building every
                // iteration's trees. Falls back to the stream path below
                // on any mismatch, so behavior is unchanged.
                let fast = classify_for_fast(inst, index, *from, *to, body, origin, loop_env, out);
                loop_env.remove(index);
                if fast {
                    return Ok(());
                }
                let mut streams = Vec::with_capacity((*to - *from + 1) as usize);
                for value in *from..=*to {
                    loop_env.insert(index.clone(), value);
                    let mut s = Vec::new();
                    for e in body {
                        collect_raw(inst, e, loop_env, origin, &mut s)?;
                    }
                    streams.push(s);
                }
                loop_env.remove(index);
                if streams.iter().all(|s| s.len() == streams[0].len()) {
                    classify_streams(streams, out);
                    return Ok(());
                }
            }
            for value in *from..=*to {
                loop_env.insert(index.clone(), value);
                for e in body {
                    emit_equation(inst, e, loop_env, origin, out, opts)?;
                }
            }
            loop_env.remove(index);
            Ok(())
        }
    }
}

/// A scalarized equation component before simplification. Simplifying
/// `lhs`/`rhs` yields exactly what the oracle would have pushed.
struct RawEq {
    lhs: Expr,
    rhs: Expr,
    origin: String,
    pos: SourcePos,
}

/// Scalarize one equation (unrolling nested `for` loops) into raw
/// components, mirroring the oracle's traversal order exactly.
fn collect_raw(
    inst: &Instance<'_>,
    eq: &Equation,
    loop_env: &mut HashMap<String, i64>,
    origin: &str,
    out: &mut Vec<RawEq>,
) -> Result<(), LangError> {
    match eq {
        Equation::Simple { lhs, rhs, pos } => {
            let l = scalarize(inst, lhs, loop_env)?;
            let r = scalarize(inst, rhs, loop_env)?;
            let (l, r) = broadcast_pair(l, r).map_err(|(nl, nr)| {
                LangError::flatten_at(
                    *pos,
                    format!("{origin}: equation sides have incompatible dimensions {nl} and {nr}"),
                )
            })?;
            for (le, re) in l.into_iter().zip(r) {
                out.push(RawEq {
                    lhs: le,
                    rhs: re,
                    origin: origin.to_owned(),
                    pos: *pos,
                });
            }
            Ok(())
        }
        Equation::For {
            index,
            from,
            to,
            body,
            ..
        } => {
            for value in *from..=*to {
                loop_env.insert(index.clone(), value);
                for e in body {
                    collect_raw(inst, e, loop_env, origin, out)?;
                }
            }
            loop_env.remove(index);
            Ok(())
        }
    }
}

/// Raw equations of a whole instance subtree (own equations, then
/// parts), in the oracle's emission order.
fn collect_instance_raw(
    table: &ClassTable<'_>,
    inst: &Instance<'_>,
    out: &mut Vec<RawEq>,
) -> Result<(), LangError> {
    let origin = format!(
        "{} : {}",
        if inst.path.is_empty() {
            "<model>"
        } else {
            &inst.path
        },
        inst.class.name
    );
    let mut loop_env: HashMap<String, i64> = HashMap::new();
    for eq in table.effective_equations(inst.class) {
        collect_raw(inst, eq, &mut loop_env, &origin, out)?;
    }
    for slot in inst.parts.values() {
        for child in &slot.instances {
            collect_instance_raw(table, child, out)?;
        }
    }
    Ok(())
}

/// Classify each equation position of an iteration group: `streams[k]`
/// holds the raw equations of iteration `k`, all streams the same
/// length. Equations that pass every check become an [`EqClass`];
/// everything else is scalarized exactly like the oracle.
fn classify_streams(streams: Vec<Vec<RawEq>>, out: &mut FlatModel) {
    let n_eqs = streams[0].len();
    for e in 0..n_eqs {
        match try_class(&streams, e) {
            Ok(class) => out.classes.push(class),
            Err(reason) => {
                if let Some(reason) = reason {
                    let rep = &streams[0][e];
                    out.class_fallbacks.push(ClassFallback {
                        origin: rep.origin.clone(),
                        pos: rep.pos,
                        reason,
                    });
                }
                for stream in &streams {
                    let r = &stream[e];
                    out.equations.push(FlatEquation {
                        lhs: simplify(&r.lhs),
                        rhs: simplify(&r.rhs),
                        origin: r.origin.clone(),
                        pos: r.pos,
                    });
                }
            }
        }
    }
}

/// Does `e` syntactically mention `name` — as a bare reference, a path
/// segment, or inside an index expression?
fn sexpr_mentions(e: &SExpr, name: &str) -> bool {
    match e {
        SExpr::Num(_) | SExpr::Time => false,
        SExpr::Ref(p) | SExpr::Der(p) => p
            .segs
            .iter()
            .any(|s| s.name == name || s.indices.iter().any(|ix| sexpr_mentions(ix, name))),
        SExpr::Call(_, args, _) | SExpr::Tuple(args) => {
            args.iter().any(|a| sexpr_mentions(a, name))
        }
        SExpr::Bin(_, a, b) | SExpr::Rel(_, a, b) | SExpr::And(a, b) | SExpr::Or(a, b) => {
            sexpr_mentions(a, name) || sexpr_mentions(b, name)
        }
        SExpr::Neg(a) | SExpr::Not(a) => sexpr_mentions(a, name),
        SExpr::If(c, t, e2) => {
            sexpr_mentions(c, name) || sexpr_mentions(t, name) || sexpr_mentions(e2, name)
        }
    }
}

/// A prospective `Var`/`Der` leaf of a `for`-body expression, in the
/// order `scalarize` emits leaves.
enum FastLeaf<'a> {
    /// The built-in `time` variable.
    Time,
    /// A reference with no occurrence of the loop index: resolves the
    /// same at every iteration. `true` for `der(...)` references.
    Fixed(&'a RefPath, bool),
    /// A reference whose index expressions mention the loop index: must
    /// be re-resolved at every iteration.
    Varying(&'a RefPath, bool),
}

/// Collect the leaves `scalarize` would produce for `e`, in order,
/// without building trees. Returns `false` when the expression is
/// outside the fast subset — the loop index used as a value or as a
/// path segment name.
fn collect_fast_leaves<'a>(e: &'a SExpr, index: &str, out: &mut Vec<FastLeaf<'a>>) -> bool {
    fn push_ref<'a>(
        p: &'a RefPath,
        is_der: bool,
        index: &str,
        out: &mut Vec<FastLeaf<'a>>,
    ) -> bool {
        if p.segs.iter().any(|s| s.name == index) {
            return false; // loop index used as a value
        }
        let varying = p
            .segs
            .iter()
            .any(|s| s.indices.iter().any(|ix| sexpr_mentions(ix, index)));
        out.push(if varying {
            FastLeaf::Varying(p, is_der)
        } else {
            FastLeaf::Fixed(p, is_der)
        });
        true
    }
    match e {
        SExpr::Num(_) => true,
        SExpr::Time => {
            out.push(FastLeaf::Time);
            true
        }
        SExpr::Ref(p) => push_ref(p, false, index, out),
        SExpr::Der(p) => push_ref(p, true, index, out),
        SExpr::Call(_, args, _) | SExpr::Tuple(args) => {
            args.iter().all(|a| collect_fast_leaves(a, index, out))
        }
        SExpr::Bin(_, a, b) | SExpr::Rel(_, a, b) | SExpr::And(a, b) | SExpr::Or(a, b) => {
            collect_fast_leaves(a, index, out) && collect_fast_leaves(b, index, out)
        }
        SExpr::Neg(a) | SExpr::Not(a) => collect_fast_leaves(a, index, out),
        SExpr::If(c, t, e2) => {
            collect_fast_leaves(c, index, out)
                && collect_fast_leaves(t, index, out)
                && collect_fast_leaves(e2, index, out)
        }
    }
}

/// How one representative leaf's symbol is recomputed per iteration.
enum LeafKind<'a> {
    /// The leaf does not mention the loop index: the representative
    /// symbol is reused every iteration.
    Fixed,
    /// Single-segment indexed variable whose index is affine in the loop
    /// index: `syms[value + offset - 1]`, bounds-checked against `dim`.
    Affine {
        syms: &'a [Symbol],
        dim: usize,
        offset: i64,
    },
    /// Single-segment indexed variable with a general index expression:
    /// evaluate the index, then look up the component table.
    Indexed {
        syms: &'a [Symbol],
        dim: usize,
        idx: &'a SExpr,
    },
    /// Anything else (nested parts, …): full reference resolution.
    General(&'a RefPath),
}

/// One leaf of the representative, ready for per-iteration resolution.
struct ResolvedLeaf<'a> {
    /// The symbol at the representative iteration.
    rep: Symbol,
    kind: LeafKind<'a>,
}

/// Detect index expressions affine in the loop index — `i`, `i + c`,
/// `c + i`, `i - c` with integer `c` — returning the constant offset.
/// These cover stencil references; anything else goes through
/// [`eval_index`] per iteration.
fn affine_offset(e: &SExpr, index: &str) -> Option<i64> {
    let is_idx = |e: &SExpr| {
        matches!(e, SExpr::Ref(p)
            if p.segs.len() == 1 && p.segs[0].indices.is_empty() && p.segs[0].name == index)
    };
    let int = |e: &SExpr| match e {
        SExpr::Num(n) if n.fract() == 0.0 => Some(*n as i64),
        _ => None,
    };
    if is_idx(e) {
        return Some(0);
    }
    if let SExpr::Bin(op, a, b) = e {
        match op {
            BinOp::Add if is_idx(a) => return int(b),
            BinOp::Add if is_idx(b) => return int(a),
            BinOp::Sub if is_idx(a) => return int(b).map(|c| -c),
            _ => {}
        }
    }
    None
}

/// Classify an array-aware `for` group without scalarizing every
/// iteration.
///
/// The stream path below builds every iteration's raw trees
/// (`collect_raw` per iteration) and lockstep-diffs them in
/// [`try_class`]; that is O(n · tree size) and dominates compile time
/// for large arrays. For the common shape — scalar body equations whose
/// loop index appears only inside reference index expressions — every
/// iteration's tree is the representative's tree with the
/// index-dependent leaves renamed. So this path scalarizes only the
/// representative iteration, re-resolves the varying leaves at each
/// other iteration (an integer index evaluation plus a component table
/// lookup), builds the substitution rows directly, and enters the
/// shared tail [`class_checks`].
///
/// Returns `true` only when **every** equation position classified and
/// the classes were pushed. Any other case — shape outside the fast
/// subset, a resolution error, a parameter leaf that varies, a renaming
/// conflict, or a classification fallback — returns `false` *without
/// touching `out`*; the caller then runs the stream path, which
/// reproduces the oracle behavior (scalarized equations, fallback
/// diagnostics, and errors) exactly.
///
/// Leaves `index` in `loop_env`; the caller removes it.
#[allow(clippy::too_many_arguments)]
fn classify_for_fast(
    inst: &Instance<'_>,
    index: &str,
    from: i64,
    to: i64,
    body: &[Equation],
    origin: &str,
    loop_env: &mut HashMap<String, i64>,
    out: &mut FlatModel,
) -> bool {
    // Applicability: plain equations whose loop index occurs only
    // inside reference indices.
    let mut leaves_per_eq: Vec<Vec<FastLeaf<'_>>> = Vec::with_capacity(body.len());
    for eq in body {
        let Equation::Simple { lhs, rhs, .. } = eq else {
            return false;
        };
        let mut leaves = Vec::new();
        if !collect_fast_leaves(lhs, index, &mut leaves)
            || !collect_fast_leaves(rhs, index, &mut leaves)
        {
            return false;
        }
        leaves_per_eq.push(leaves);
    }

    // Representative iteration: real trees (the class needs the
    // simplified rhs, and the stability checks run on it).
    loop_env.insert(index.to_owned(), from);
    let mut rep_eqs: Vec<RawEq> = Vec::with_capacity(body.len());
    for eq in body {
        let mut raw = Vec::new();
        if collect_raw(inst, eq, loop_env, origin, &mut raw).is_err() || raw.len() != 1 {
            return false; // error or a vector equation: stream path
        }
        rep_eqs.push(raw.pop().expect("len 1"));
    }
    for rep in &rep_eqs {
        // Only solved differential equations classify; bail before the
        // per-iteration work if any position cannot.
        if !matches!(&rep.lhs, Expr::Der(_)) || rep.rhs.contains_der() {
            return false;
        }
    }

    // Resolve the representative's leaves and check they line up 1:1,
    // in order, with the Var/Der leaves of the representative trees.
    // This guards the whole construction: when it holds, pairing leaf k
    // of iteration j against leaf k of the representative is exactly
    // what `match_structure` would have paired.
    let mut resolved_per_eq: Vec<Vec<ResolvedLeaf<'_>>> = Vec::with_capacity(body.len());
    for (rep, leaves) in rep_eqs.iter().zip(&leaves_per_eq) {
        let mut resolved: Vec<ResolvedLeaf<'_>> = Vec::with_capacity(leaves.len());
        for leaf in leaves {
            let (path, is_der, varying) = match leaf {
                FastLeaf::Time => {
                    resolved.push(ResolvedLeaf {
                        rep: time_symbol(),
                        kind: LeafKind::Fixed,
                    });
                    continue;
                }
                FastLeaf::Fixed(p, d) => (*p, *d, false),
                FastLeaf::Varying(p, d) => (*p, *d, true),
            };
            match resolve_ref(inst, path, loop_env) {
                Ok(Resolved::Components(syms)) if syms.len() == 1 => {
                    let kind = if !varying {
                        LeafKind::Fixed
                    } else if path.segs.len() == 1 && path.segs[0].indices.len() == 1 {
                        // Params are never indexed, so `resolve_ref`
                        // lands on the component table for this shape.
                        let seg = &path.segs[0];
                        match inst.vars.get(&seg.name) {
                            Some((ty, table)) => match affine_offset(&seg.indices[0], index) {
                                Some(offset) => LeafKind::Affine {
                                    syms: table,
                                    dim: ty.dim,
                                    offset,
                                },
                                None => LeafKind::Indexed {
                                    syms: table,
                                    dim: ty.dim,
                                    idx: &seg.indices[0],
                                },
                            },
                            None => LeafKind::General(path),
                        }
                    } else {
                        LeafKind::General(path)
                    };
                    resolved.push(ResolvedLeaf { rep: syms[0], kind });
                }
                // A fixed parameter constant produces no Var leaf. A
                // *varying* constant breaks uniformity and `der()` of a
                // parameter is an error: both go to the stream path.
                Ok(Resolved::Const(_)) if !varying && !is_der => {}
                _ => return false,
            }
        }
        let mut tree_syms: Vec<Symbol> = Vec::with_capacity(resolved.len());
        let mut push = |t: &Expr| {
            t.walk(&mut |n| {
                if let Expr::Var(s) | Expr::Der(s) = n {
                    tree_syms.push(*s);
                }
            });
        };
        push(&rep.lhs);
        push(&rep.rhs);
        if tree_syms.len() != resolved.len()
            || tree_syms.iter().zip(&resolved).any(|(t, r)| *t != r.rep)
        {
            return false;
        }
        resolved_per_eq.push(resolved);
    }

    // Build the substitution rows directly, one column per iteration.
    // The row layout (representative symbols deduplicated in leaf
    // order) matches what `class_from_renamings` derives from the
    // per-iteration maps: the alignment guard above established that
    // leaf order *is* tree-traversal order.
    let card = (to - from + 1) as usize;
    struct EqRows {
        /// leaf position → row (first-occurrence dedup of rep symbols)
        leaf_row: Vec<usize>,
        rows: Vec<(Symbol, Vec<Symbol>)>,
    }
    let mut eq_rows: Vec<EqRows> = Vec::with_capacity(resolved_per_eq.len());
    for resolved in &resolved_per_eq {
        let mut rows: Vec<(Symbol, Vec<Symbol>)> = Vec::new();
        let mut leaf_row = Vec::with_capacity(resolved.len());
        for leaf in resolved {
            let at = match rows.iter().position(|(r, _)| *r == leaf.rep) {
                Some(at) => at,
                None => {
                    let mut elems = Vec::with_capacity(card);
                    elems.push(leaf.rep);
                    rows.push((leaf.rep, elems));
                    rows.len() - 1
                }
            };
            leaf_row.push(at);
        }
        eq_rows.push(EqRows { leaf_row, rows });
    }
    for (ki, value) in (from..=to).enumerate().skip(1) {
        *loop_env.get_mut(index).expect("inserted above") = value;
        for (resolved, er) in resolved_per_eq.iter().zip(&mut eq_rows) {
            for (leaf, &ri) in resolved.iter().zip(&er.leaf_row) {
                let target = match &leaf.kind {
                    LeafKind::Fixed => leaf.rep,
                    LeafKind::Affine { syms, dim, offset } => {
                        let k = value + offset;
                        if k < 1 || k as usize > *dim {
                            return false; // out of bounds: stream path reports it
                        }
                        syms[k as usize - 1]
                    }
                    LeafKind::Indexed { syms, dim, idx } => {
                        let Ok(k) = eval_index(inst, idx, loop_env) else {
                            return false;
                        };
                        if k < 1 || k as usize > *dim {
                            return false;
                        }
                        syms[k as usize - 1]
                    }
                    LeafKind::General(path) => match resolve_ref(inst, path, loop_env) {
                        Ok(Resolved::Components(syms)) if syms.len() == 1 => syms[0],
                        _ => return false,
                    },
                };
                // Two leaves sharing a representative symbol land on
                // the same row; diverging targets are the "conflicting
                // index pattern" case the map-based path rejects.
                let (_, elems) = &mut er.rows[ri];
                if elems.len() == ki {
                    elems.push(target);
                } else if elems[ki] != target {
                    return false;
                }
            }
        }
    }

    // Shared tail; all-or-nothing so a partial success still replays
    // identically through the stream path.
    let mut classes = Vec::with_capacity(rep_eqs.len());
    for (rep, er) in rep_eqs.iter().zip(eq_rows) {
        let mut rows = Vec::new();
        let mut invariant = Vec::new();
        for (sym, elems) in er.rows {
            debug_assert_eq!(elems.len(), card);
            if elems.iter().any(|t| *t != sym) {
                rows.push((sym, elems));
            } else {
                invariant.push(sym);
            }
        }
        match class_checks(rep, rows, &invariant) {
            Ok(class) => classes.push(class),
            Err(_) => return false,
        }
    }
    out.classes.extend(classes);
    true
}

/// Attempt to turn equation position `e` of the group into a class.
/// `Err(None)` means "not a candidate" (not a plain differential
/// equation — the acausal path is expected to scalarize); `Err(Some)`
/// carries a diagnostic reason for a differential equation that *had*
/// to fall back.
fn try_class(streams: &[Vec<RawEq>], e: usize) -> Result<EqClass, Option<String>> {
    let card = streams.len();
    let rep = &streams[0][e];
    // Checked again in `class_from_renamings`; repeated here so a
    // non-differential equation bails before any structure diffing.
    if !matches!(&rep.lhs, Expr::Der(_)) {
        return Err(None);
    }
    if rep.rhs.contains_der() {
        return Err(Some(
            "right-hand side contains der(); solved derivatives are causalized per element"
                .to_owned(),
        ));
    }

    // Lockstep diff against every iteration: identical structure up to
    // symbol names, with a consistent per-iteration renaming.
    let mut per_k: Vec<HashMap<Symbol, Symbol>> = Vec::with_capacity(card);
    per_k.push(HashMap::new()); // iteration 0 is the identity
    for stream in streams.iter().skip(1) {
        let other = &stream[e];
        let pairs_l = om_expr::match_structure(&rep.lhs, &other.lhs);
        let pairs_r = om_expr::match_structure(&rep.rhs, &other.rhs);
        let (Some(pairs_l), Some(pairs_r)) = (pairs_l, pairs_r) else {
            return Err(Some(
                "iterations are not structurally uniform (an index is used as a value, \
                 or the expression shape changes)"
                    .to_owned(),
            ));
        };
        let mut map = HashMap::new();
        for (a, b) in pairs_l.into_iter().chain(pairs_r) {
            match map.insert(a, b) {
                Some(prev) if prev != b => {
                    return Err(Some(format!(
                        "conflicting index pattern: `{}` maps to both `{}` and `{}` \
                         in one iteration",
                        a.name(),
                        prev.name(),
                        b.name()
                    )));
                }
                _ => {}
            }
        }
        per_k.push(map);
    }
    class_from_renamings(rep, &per_k)
}

/// Shared classification tail: from the representative raw equation and
/// one complete symbol renaming per iteration (`per_k[0]` is the empty
/// identity map for the representative itself), run the row layout,
/// injectivity, and order-stability checks and build the class. Both the
/// stream path ([`try_class`]) and the leaf path ([`classify_for_fast`])
/// end here, so their accept/reject decisions cannot drift apart.
fn class_from_renamings(
    rep: &RawEq,
    per_k: &[HashMap<Symbol, Symbol>],
) -> Result<EqClass, Option<String>> {
    let card = per_k.len();
    if !matches!(&rep.lhs, Expr::Der(_)) {
        return Err(None);
    }
    if rep.rhs.contains_der() {
        return Err(Some(
            "right-hand side contains der(); solved derivatives are causalized per element"
                .to_owned(),
        ));
    }

    // Split representative symbols into substitution rows (those that
    // vary with the iteration) and invariant symbols. Collect them in
    // tree traversal order so the row layout is deterministic.
    let mut rep_syms: Vec<Symbol> = Vec::new();
    let mut push_leaves = |t: &Expr| {
        t.walk(&mut |n| {
            if let Expr::Var(s) | Expr::Der(s) = n {
                if !rep_syms.contains(s) {
                    rep_syms.push(*s);
                }
            }
        });
    };
    push_leaves(&rep.lhs);
    push_leaves(&rep.rhs);
    let mut rows: Vec<(Symbol, Vec<Symbol>)> = Vec::new();
    let mut invariant: Vec<Symbol> = Vec::new();
    for sym in rep_syms {
        let mut elems = Vec::with_capacity(card);
        elems.push(sym);
        let mut varies = false;
        for map in per_k.iter().skip(1) {
            let Some(&target) = map.get(&sym) else {
                return Err(Some(format!(
                    "`{}` is missing from an iteration's renaming",
                    sym.name()
                )));
            };
            if target != sym {
                varies = true;
            }
            elems.push(target);
        }
        if varies {
            rows.push((sym, elems));
        } else {
            invariant.push(sym);
        }
    }
    class_checks(rep, rows, &invariant)
}

/// Final classification checks and class construction, from fully built
/// substitution rows (`rows` in tree-traversal order, `invariant` the
/// non-varying representative symbols). Split out so the fast leaf path
/// can enter with directly-built rows.
fn class_checks(
    rep: &RawEq,
    rows: Vec<(Symbol, Vec<Symbol>)>,
    invariant: &[Symbol],
) -> Result<EqClass, Option<String>> {
    let Expr::Der(rep_state) = &rep.lhs else {
        return Err(None);
    };
    let rep_state = *rep_state;
    let invariant: std::collections::HashSet<Symbol> = invariant.iter().copied().collect();

    if !rows.iter().any(|(r, _)| *r == rep_state) {
        return Err(Some(
            "derivative target does not vary with the iteration".to_owned(),
        ));
    }
    if !om_expr::rows_injective(&invariant, &rows) {
        return Err(Some(
            "index pattern collides across iterations (two references name \
             the same element in some iteration)"
                .to_owned(),
        ));
    }
    let rhs = simplify(&rep.rhs);
    if !om_expr::stable_under_rows(&rhs, &rows) {
        return Err(Some(
            "canonical operand order varies across iterations (renamed terms \
             would sort differently)"
                .to_owned(),
        ));
    }

    let states = rows
        .iter()
        .find(|(r, _)| *r == rep_state)
        .map(|(_, elems)| elems.clone())
        .expect("state row exists");
    Ok(EqClass {
        states,
        rhs,
        rows,
        origin: rep.origin.clone(),
        pos: rep.pos,
    })
}

/// Broadcast two component vectors to a common length, or report the two
/// lengths on failure.
#[allow(clippy::type_complexity)]
fn broadcast_pair(l: Vec<Expr>, r: Vec<Expr>) -> Result<(Vec<Expr>, Vec<Expr>), (usize, usize)> {
    match (l.len(), r.len()) {
        (a, b) if a == b => Ok((l, r)),
        (1, n) => Ok((vec![l[0].clone(); n], r)),
        (_, 1) => {
            let n = l.len();
            Ok((l, vec![r[0].clone(); n]))
        }
        (a, b) => Err((a, b)),
    }
}

/// Scalarize a source expression into its component expressions (length 1
/// for scalars).
fn scalarize(
    inst: &Instance<'_>,
    e: &SExpr,
    loop_env: &HashMap<String, i64>,
) -> Result<Vec<Expr>, LangError> {
    match e {
        SExpr::Num(n) => Ok(vec![Expr::Const(*n)]),
        SExpr::Time => Ok(vec![Expr::Var(time_symbol())]),
        SExpr::Ref(path) => match resolve_ref(inst, path, loop_env)? {
            Resolved::Const(v) => Ok(vec![Expr::Const(v)]),
            Resolved::Components(syms) => Ok(syms.into_iter().map(Expr::Var).collect()),
        },
        SExpr::Der(path) => match resolve_ref(inst, path, loop_env)? {
            Resolved::Const(_) => Err(LangError::flatten_at(
                path.pos,
                format!("cannot take der() of parameter `{}`", path.display()),
            )),
            Resolved::Components(syms) => Ok(syms.into_iter().map(Expr::Der).collect()),
        },
        SExpr::Call(name, args, pos) => {
            let f = Func::from_name(name)
                .ok_or_else(|| LangError::flatten_at(*pos, format!("unknown function `{name}`")))?;
            let mut scalar_args = Vec::with_capacity(args.len());
            for a in args {
                let mut comps = scalarize(inst, a, loop_env)?;
                if comps.len() != 1 {
                    return Err(LangError::flatten_at(
                        *pos,
                        format!("argument of `{name}` must be scalar"),
                    ));
                }
                scalar_args.push(comps.pop().expect("len 1"));
            }
            Ok(vec![Expr::Call(f, scalar_args)])
        }
        SExpr::Bin(op, a, b) => {
            let (l, r) =
                broadcast_pair(scalarize(inst, a, loop_env)?, scalarize(inst, b, loop_env)?)
                    .map_err(|(nl, nr)| {
                        LangError::flatten(format!(
                            "operands have incompatible dimensions {nl} and {nr}"
                        ))
                    })?;
            Ok(l.into_iter()
                .zip(r)
                .map(|(x, y)| match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => x / y,
                    BinOp::Pow => x.pow(y),
                })
                .collect())
        }
        SExpr::Neg(a) => Ok(scalarize(inst, a, loop_env)?
            .into_iter()
            .map(|x| x.neg())
            .collect()),
        SExpr::Rel(op, a, b) => {
            let l = expect_scalar(inst, a, loop_env, "comparison operand")?;
            let r = expect_scalar(inst, b, loop_env, "comparison operand")?;
            let c = match op {
                RelOp::Lt => CmpOp::Lt,
                RelOp::Le => CmpOp::Le,
                RelOp::Gt => CmpOp::Gt,
                RelOp::Ge => CmpOp::Ge,
                RelOp::Eq => CmpOp::EqCmp,
                RelOp::Ne => CmpOp::Ne,
            };
            Ok(vec![Expr::cmp(c, l, r)])
        }
        SExpr::And(a, b) => {
            let l = expect_scalar(inst, a, loop_env, "boolean operand")?;
            let r = expect_scalar(inst, b, loop_env, "boolean operand")?;
            Ok(vec![Expr::And(vec![l, r])])
        }
        SExpr::Or(a, b) => {
            let l = expect_scalar(inst, a, loop_env, "boolean operand")?;
            let r = expect_scalar(inst, b, loop_env, "boolean operand")?;
            Ok(vec![Expr::Or(vec![l, r])])
        }
        SExpr::Not(a) => {
            let x = expect_scalar(inst, a, loop_env, "boolean operand")?;
            Ok(vec![Expr::Not(Box::new(x))])
        }
        SExpr::If(c, t, e2) => {
            let cond = expect_scalar(inst, c, loop_env, "if condition")?;
            let (l, r) = broadcast_pair(
                scalarize(inst, t, loop_env)?,
                scalarize(inst, e2, loop_env)?,
            )
            .map_err(|(nl, nr)| {
                LangError::flatten(format!(
                    "if branches have incompatible dimensions {nl} and {nr}"
                ))
            })?;
            Ok(l.into_iter()
                .zip(r)
                .map(|(x, y)| Expr::ite(cond.clone(), x, y))
                .collect())
        }
        SExpr::Tuple(items) => {
            let mut comps = Vec::with_capacity(items.len());
            for item in items {
                let mut c = scalarize(inst, item, loop_env)?;
                if c.len() != 1 {
                    return Err(LangError::flatten(
                        "nested vector inside a vector literal".to_owned(),
                    ));
                }
                comps.push(c.pop().expect("len 1"));
            }
            Ok(comps)
        }
    }
}

fn expect_scalar(
    inst: &Instance<'_>,
    e: &SExpr,
    loop_env: &HashMap<String, i64>,
    what: &str,
) -> Result<Expr, LangError> {
    let mut comps = scalarize(inst, e, loop_env)?;
    if comps.len() != 1 {
        return Err(LangError::flatten(format!("{what} must be scalar")));
    }
    Ok(comps.pop().expect("len 1"))
}

/// Evaluate an index expression to an integer using the loop environment
/// and the instance's parameters.
fn eval_index(
    inst: &Instance<'_>,
    e: &SExpr,
    loop_env: &HashMap<String, i64>,
) -> Result<i64, LangError> {
    fn eval(
        inst: &Instance<'_>,
        e: &SExpr,
        loop_env: &HashMap<String, i64>,
    ) -> Result<f64, LangError> {
        match e {
            SExpr::Num(n) => Ok(*n),
            SExpr::Neg(a) => Ok(-eval(inst, a, loop_env)?),
            SExpr::Bin(op, a, b) => {
                let (x, y) = (eval(inst, a, loop_env)?, eval(inst, b, loop_env)?);
                Ok(match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => x / y,
                    BinOp::Pow => x.powf(y),
                })
            }
            SExpr::Ref(p) if p.segs.len() == 1 && p.segs[0].indices.is_empty() => {
                let name = &p.segs[0].name;
                if let Some(v) = loop_env.get(name) {
                    return Ok(*v as f64);
                }
                if let Some(v) = inst.params.get(name) {
                    return Ok(*v);
                }
                Err(LangError::flatten(format!(
                    "index expression references `{name}`, which is neither a loop index nor a parameter"
                )))
            }
            _ => Err(LangError::flatten(
                "index expression must be built from integers, loop indices, parameters, and arithmetic".to_owned(),
            )),
        }
    }
    let v = eval(inst, e, loop_env)?;
    if v.fract() != 0.0 {
        return Err(LangError::flatten(format!(
            "index expression evaluated to non-integer {v}"
        )));
    }
    Ok(v as i64)
}

/// Resolve a dotted reference within an instance.
fn resolve_ref(
    inst: &Instance<'_>,
    path: &RefPath,
    loop_env: &HashMap<String, i64>,
) -> Result<Resolved, LangError> {
    // Loop index used as a value.
    let first = &path.segs[0];
    if path.segs.len() == 1 && first.indices.is_empty() {
        if let Some(v) = loop_env.get(&first.name) {
            return Ok(Resolved::Const(*v as f64));
        }
    }

    let mut current = inst;
    for (i, seg) in path.segs.iter().enumerate() {
        let is_last = i + 1 == path.segs.len();
        if is_last {
            // Parameter?
            if seg.indices.is_empty() {
                if let Some(v) = current.params.get(&seg.name) {
                    return Ok(Resolved::Const(*v));
                }
            }
            // Variable?
            if let Some((ty, syms)) = current.vars.get(&seg.name) {
                return match seg.indices.len() {
                    0 => Ok(Resolved::Components(syms.clone())),
                    1 => {
                        let k = eval_index(inst, &seg.indices[0], loop_env)?;
                        if k < 1 || k as usize > ty.dim {
                            return Err(LangError::flatten_at(
                                path.pos,
                                format!(
                                    "component index {k} out of bounds for `{}` (dim {})",
                                    seg.name, ty.dim
                                ),
                            ));
                        }
                        Ok(Resolved::Components(vec![syms[k as usize - 1]]))
                    }
                    _ => Err(LangError::flatten_at(
                        path.pos,
                        format!("too many indices on `{}`", seg.name),
                    )),
                };
            }
            return Err(LangError::flatten_at(
                path.pos,
                format!(
                    "`{}` is not a parameter or variable of `{}` (in `{}`)",
                    seg.name,
                    current.class.name,
                    path.display()
                ),
            ));
        }
        // Interior segment: must be a part.
        let Some(slot) = current.parts.get(&seg.name) else {
            return Err(LangError::flatten_at(
                path.pos,
                format!(
                    "`{}` is not a part of `{}` (in `{}`)",
                    seg.name,
                    current.class.name,
                    path.display()
                ),
            ));
        };
        current = match (slot.is_array, seg.indices.len()) {
            (true, 1) => {
                let k = eval_index(inst, &seg.indices[0], loop_env)?;
                if k < 1 || k as usize > slot.instances.len() {
                    return Err(LangError::flatten_at(
                        path.pos,
                        format!(
                            "instance index {k} out of bounds for `{}` (size {})",
                            seg.name,
                            slot.instances.len()
                        ),
                    ));
                }
                &slot.instances[k as usize - 1]
            }
            (false, 0) => &slot.instances[0],
            (true, 0) => {
                return Err(LangError::flatten_at(
                    path.pos,
                    format!("instance array `{}` requires an index", seg.name),
                ))
            }
            _ => {
                return Err(LangError::flatten_at(
                    path.pos,
                    format!("scalar part `{}` cannot be indexed", seg.name),
                ))
            }
        };
    }
    unreachable!("path resolution always returns at the last segment")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_unit;

    fn flat(src: &str) -> FlatModel {
        let unit = parse_unit(src).unwrap();
        crate::scope::check(&unit).unwrap();
        flatten(&unit).unwrap()
    }

    fn flat_err(src: &str) -> LangError {
        let unit = parse_unit(src).unwrap();
        flatten(&unit).unwrap_err()
    }

    #[test]
    fn flattens_simple_oscillator() {
        let m = flat(
            "model Osc;
               Real x(start = 1.0);
               Real y;
               equation
                 der(x) = y;
                 der(y) = -x;
             end Osc;",
        );
        assert_eq!(m.name, "Osc");
        assert_eq!(m.variables.len(), 2);
        assert_eq!(m.equations.len(), 2);
        assert_eq!(m.variable("x").unwrap().start, 1.0);
        assert_eq!(m.variable("y").unwrap().start, 0.0);
        assert_eq!(m.equations[0].lhs, om_expr::der("x"));
        assert_eq!(m.equations[0].rhs, om_expr::var("y"));
    }

    #[test]
    fn parameters_fold_to_constants() {
        let m = flat(
            "model M;
               parameter Real k = 2.5;
               Real x;
               equation der(x) = -k*x;
             end M;",
        );
        assert_eq!(m.parameters.len(), 1);
        assert_eq!(m.parameters[0].value, 2.5);
        // -k*x with k folded: Mul[-2.5, x]
        assert_eq!(
            m.equations[0].rhs,
            simplify(&(om_expr::num(-2.5) * om_expr::var("x")))
        );
    }

    #[test]
    fn parameter_defaults_may_reference_earlier_parameters() {
        let m = flat(
            "model M;
               parameter Real a = 2.0;
               parameter Real b = a * 3.0;
               Real x;
               equation der(x) = b;
             end M;",
        );
        assert_eq!(m.parameters[1].value, 6.0);
    }

    #[test]
    fn inheritance_brings_members_and_equations() {
        let m = flat(
            "class Base;
               parameter Real k = 1.0;
               Real x(start = 1.0);
               equation der(x) = -k*x;
             end Base;
             class Fast extends Base (k = 10.0);
             end Fast;
             model M;
               part Fast f;
             end M;",
        );
        assert_eq!(m.variables.len(), 1);
        assert_eq!(m.variables[0].sym.name(), "f.x");
        assert_eq!(m.parameters[0].value, 10.0);
        assert_eq!(
            m.equations[0].rhs,
            simplify(&(om_expr::num(-10.0) * om_expr::var("f.x")))
        );
    }

    #[test]
    fn part_bindings_override_parameters_and_starts() {
        let m = flat(
            "class Body;
               parameter Real m = 1.0;
               Real v(start = 0.0);
               equation der(v) = 9.81/m;
             end Body;
             model M;
               part Body b (m = 4.0, v = 7.0);
             end M;",
        );
        assert_eq!(m.parameters[0].value, 4.0);
        assert_eq!(m.variable("b.v").unwrap().start, 7.0);
    }

    #[test]
    fn instance_arrays_expand() {
        let m = flat(
            "class A;
               Real x(start = 1.0);
               equation der(x) = -x;
             end A;
             model M;
               part A a[3];
             end M;",
        );
        assert_eq!(m.variables.len(), 3);
        let names: Vec<&str> = m.variables.iter().map(|v| v.sym.name()).collect();
        assert_eq!(names, vec!["a[1].x", "a[2].x", "a[3].x"]);
        assert_eq!(m.equations.len(), 3);
    }

    #[test]
    fn for_loops_unroll_with_index_arithmetic() {
        let m = flat(
            "class A; Real x; end A;
             model M;
               part A a[3];
               equation
                 for i in 1:2 loop
                   der(a[i].x) = a[i+1].x;
                 end for;
                 der(a[3].x) = a[1].x;
             end M;",
        );
        assert_eq!(m.equations.len(), 3);
        assert_eq!(m.equations[0].lhs, om_expr::der("a[1].x"));
        assert_eq!(m.equations[0].rhs, om_expr::var("a[2].x"));
        assert_eq!(m.equations[1].rhs, om_expr::var("a[3].x"));
        assert_eq!(m.equations[2].rhs, om_expr::var("a[1].x"));
    }

    #[test]
    fn loop_index_as_value() {
        let m = flat(
            "class A; Real x; end A;
             model M;
               part A a[2];
               equation
                 for i in 1:2 loop
                   der(a[i].x) = i * 10.0;
                 end for;
             end M;",
        );
        assert_eq!(m.equations[0].rhs, om_expr::num(10.0));
        assert_eq!(m.equations[1].rhs, om_expr::num(20.0));
    }

    #[test]
    fn vectors_scalarize_componentwise() {
        let m = flat(
            "model M;
               Real[3] f;
               Real[3] v;
               equation
                 f = {1.0, 2.0, 3.0};
                 der(v) = f;
             end M;",
        );
        assert_eq!(m.variables.len(), 6);
        assert_eq!(m.equations.len(), 6);
        assert_eq!(m.equations[0].lhs, om_expr::var("f[1]"));
        assert_eq!(m.equations[0].rhs, om_expr::num(1.0));
        assert_eq!(m.equations[3].lhs, om_expr::der("v[1]"));
        assert_eq!(m.equations[3].rhs, om_expr::var("f[1]"));
    }

    #[test]
    fn scalar_broadcasts_over_vector() {
        let m = flat(
            "model M;
               Real[3] v;
               equation der(v) = 0.0;
             end M;",
        );
        assert_eq!(m.equations.len(), 3);
        for eq in &m.equations {
            assert_eq!(eq.rhs, om_expr::num(0.0));
        }
    }

    #[test]
    fn vector_component_access() {
        let m = flat(
            "model M;
               Real[2] f;
               Real s;
               equation
                 f = {3.0, 4.0};
                 s = sqrt(f[1]^2 + f[2]^2);
             end M;",
        );
        let eq = &m.equations[2];
        assert_eq!(eq.lhs, om_expr::var("s"));
        assert!(eq.rhs.depends_on(Symbol::intern("f[1]")));
        assert!(eq.rhs.depends_on(Symbol::intern("f[2]")));
    }

    #[test]
    fn nested_composition_qualifies_names() {
        let m = flat(
            "class Inner; Real q; end Inner;
             class Outer; part Inner i; end Outer;
             model M;
               part Outer o;
               equation der(o.i.q) = 1.0;
             end M;",
        );
        assert_eq!(m.variables[0].sym.name(), "o.i.q");
    }

    #[test]
    fn time_resolves_to_builtin() {
        let m = flat("model M; Real x; equation der(x) = time; end M;");
        assert_eq!(m.equations[0].rhs, Expr::Var(time_symbol()));
    }

    #[test]
    fn acausal_equation_is_preserved() {
        // Force equilibrium style: x + y = 0 stays as a general equation.
        let m = flat(
            "model M;
               Real x; Real y;
               equation
                 der(x) = y;
                 x + y = 0.0;
             end M;",
        );
        assert_eq!(m.equations.len(), 2);
        let eq = &m.equations[1];
        assert!(eq.lhs.as_var().is_none() || eq.lhs.as_var().is_some());
        assert_eq!(
            simplify(&eq.lhs),
            simplify(&(om_expr::var("x") + om_expr::var("y")))
        );
    }

    #[test]
    fn errors_on_dimension_mismatch() {
        let e = flat_err("model M; Real[3] v; Real[2] w; equation v = w; end M;");
        assert!(e.message.contains("incompatible dimensions"));
    }

    #[test]
    fn errors_on_out_of_bounds_instance_index() {
        let e = flat_err(
            "class A; Real x; end A;
             model M; part A a[2]; equation der(a[3].x) = 0.0; end M;",
        );
        assert!(e.message.contains("out of bounds"));
    }

    #[test]
    fn errors_on_missing_parameter_value() {
        let e = flat_err(
            "class A; parameter Real k; Real x; equation der(x) = k; end A;
             model M; part A a; end M;",
        );
        assert!(e.message.contains("has no value"));
    }

    #[test]
    fn errors_on_der_of_parameter() {
        let e = flat_err("model M; parameter Real k = 1.0; Real x; equation der(k) = x; end M;");
        assert!(e.message.contains("der() of parameter") || e.message.contains("parameter"));
    }

    #[test]
    fn part_binding_evaluates_in_enclosing_scope() {
        let m = flat(
            "class A; parameter Real k = 0.0; Real x; equation der(x) = k; end A;
             model M;
               parameter Real base = 5.0;
               part A a (k = base * 2.0);
             end M;",
        );
        let a_k = m.parameters.iter().find(|p| p.sym.name() == "a.k").unwrap();
        assert_eq!(a_k.value, 10.0);
    }
}

#[cfg(test)]
mod array_class_tests {
    use super::*;
    use crate::parser::parse_unit;

    fn flat_both(src: &str) -> (FlatModel, FlatModel) {
        let unit = parse_unit(src).unwrap();
        crate::scope::check(&unit).unwrap();
        (flatten(&unit).unwrap(), flatten_arrays(&unit).unwrap())
    }

    /// Every class iteration, instantiated from the representative, must
    /// be bitwise what the oracle scalarized: same derivative target,
    /// same right-hand side tree.
    fn assert_matches_oracle(oracle: &FlatModel, aware: &FlatModel) {
        let mut covered = 0;
        for class in &aware.classes {
            for k in 0..class.cardinality() {
                let state = class.states[k];
                let o = oracle
                    .equations
                    .iter()
                    .find(|eq| matches!(&eq.lhs, Expr::Der(s) if *s == state))
                    .unwrap_or_else(|| panic!("oracle has no der({})", state.name()));
                assert_eq!(class.rhs_at(k), o.rhs, "rhs of der({})", state.name());
                covered += 1;
            }
        }
        assert_eq!(
            aware.equations.len() + covered,
            oracle.equations.len(),
            "class coverage plus scalar equations must account for every oracle equation"
        );
        // Scalarized equations are shared verbatim with the oracle.
        for eq in &aware.equations {
            let o = oracle
                .equations
                .iter()
                .find(|o| o.lhs == eq.lhs && o.rhs == eq.rhs);
            assert!(o.is_some(), "equation {:?} not in oracle", eq.lhs);
        }
    }

    const HEAT: &str = "model Heat;
        parameter Real d = 4.0;
        parameter Real a = 0.5;
        Real[8] u;
        equation
          der(u[1]) = d*(0.0 - 2.0*u[1] + u[2]) - a*(u[1] - 0.0);
          for i in 2:7 loop
            der(u[i]) = d*(u[i-1] - 2.0*u[i] + u[i+1]) - a*(u[i] - u[i-1]);
          end for;
          der(u[8]) = d*(u[7] - 2.0*u[8] + 0.0) - a*(u[8] - u[7]);
        end Heat;";

    #[test]
    fn uniform_stencil_loop_becomes_one_class() {
        let (oracle, aware) = flat_both(HEAT);
        assert_eq!(aware.classes.len(), 1);
        assert!(aware.class_fallbacks.is_empty());
        let class = &aware.classes[0];
        assert_eq!(class.cardinality(), 6);
        assert_eq!(class.states[0].name(), "u[2]");
        assert_eq!(class.states[5].name(), "u[7]");
        // Only the two boundary equations remain scalar.
        assert_eq!(aware.equations.len(), 2);
        assert_matches_oracle(&oracle, &aware);
    }

    #[test]
    fn part_array_bodies_become_classes() {
        let (oracle, aware) = flat_both(
            "class Osc;
               parameter Real w = 2.0;
               Real x(start = 1.0); Real v;
               equation
                 der(x) = v;
                 der(v) = 0.0 - w*x;
             end Osc;
             model M;
               part Osc cells[5];
             end M;",
        );
        assert_eq!(aware.classes.len(), 2, "one class per body equation");
        assert!(aware.equations.is_empty());
        assert_eq!(aware.classes[0].cardinality(), 5);
        assert_eq!(aware.classes[0].states[2].name(), "cells[3].x");
        assert_matches_oracle(&oracle, &aware);
    }

    #[test]
    fn index_as_value_falls_back_with_reason() {
        let (oracle, aware) = flat_both(
            "model M;
               Real[4] x;
               equation
                 for i in 1:4 loop
                   der(x[i]) = i * 10.0 - x[i];
                 end for;
             end M;",
        );
        assert!(aware.classes.is_empty());
        assert_eq!(aware.class_fallbacks.len(), 1);
        assert!(aware.class_fallbacks[0]
            .reason
            .contains("index is used as a value"));
        assert_eq!(aware.equations.len(), oracle.equations.len());
        assert_matches_oracle(&oracle, &aware);
    }

    #[test]
    fn colliding_index_pattern_falls_back() {
        // x[i] and x[4-i] both name x[2] at i = 2.
        let (oracle, aware) = flat_both(
            "model M;
               Real[4] x;
               equation
                 der(x[4]) = 0.0 - x[4];
                 for i in 1:3 loop
                   der(x[i]) = x[i] + x[4-i];
                 end for;
             end M;",
        );
        assert!(aware.classes.is_empty());
        assert_eq!(aware.class_fallbacks.len(), 1);
        assert!(aware.class_fallbacks[0].reason.contains("collides"));
        assert_matches_oracle(&oracle, &aware);
    }

    #[test]
    fn digit_boundary_order_flip_falls_back_bitwise() {
        // Equal coefficients on u[i-1] and u[i+1] make the canonical
        // order depend on the names, which flips at the 9→10 digit
        // boundary. The class must not engage — and scalarization must
        // still match the oracle exactly.
        let (oracle, aware) = flat_both(
            "model M;
               Real[12] u;
               equation
                 der(u[1]) = 0.0 - u[1];
                 der(u[12]) = 0.0 - u[12];
                 for i in 2:11 loop
                   der(u[i]) = u[i-1] + u[i+1] - 2.0*u[i];
                 end for;
             end M;",
        );
        assert!(aware.classes.is_empty(), "order-flip must be detected");
        assert_eq!(aware.class_fallbacks.len(), 1);
        assert!(aware.class_fallbacks[0].reason.contains("order"));
        assert_matches_oracle(&oracle, &aware);
    }

    #[test]
    fn algebraic_loop_equations_scalarize_silently() {
        let (oracle, aware) = flat_both(
            "model M;
               Real[3] s; Real x;
               equation
                 der(x) = s[3];
                 s[1] = x;
                 for i in 2:3 loop
                   s[i] = s[i-1] + x;
                 end for;
             end M;",
        );
        assert!(aware.classes.is_empty());
        assert!(
            aware.class_fallbacks.is_empty(),
            "non-differential equations are not fallback diagnostics"
        );
        assert_eq!(aware.equations.len(), oracle.equations.len());
    }

    #[test]
    fn oracle_flatten_never_produces_classes() {
        let unit = parse_unit(HEAT).unwrap();
        crate::scope::check(&unit).unwrap();
        let m = flatten(&unit).unwrap();
        assert!(m.classes.is_empty());
        assert!(m.class_fallbacks.is_empty());
    }

    #[test]
    fn instantiated_iterations_are_simplify_fixed_points() {
        let (_, aware) = flat_both(HEAT);
        let class = &aware.classes[0];
        for k in 0..class.cardinality() {
            let inst = class.rhs_at(k);
            assert_eq!(simplify(&inst), inst, "iteration {k} must be canonical");
        }
    }
}

#[cfg(test)]
mod initial_equation_tests {
    use super::*;
    use crate::parser::parse_unit;

    fn flat(src: &str) -> FlatModel {
        let unit = parse_unit(src).unwrap();
        crate::scope::check(&unit).unwrap();
        flatten(&unit).unwrap()
    }

    #[test]
    fn initial_equation_sets_start_values() {
        let m = flat(
            "model M;
               parameter Real amp = 3.0;
               Real x; Real y;
               initial equation
                 x = amp * 2.0;
                 y = -1.0;
               equation
                 der(x) = y; der(y) = -x;
             end M;",
        );
        assert_eq!(m.variable("x").unwrap().start, 6.0);
        assert_eq!(m.variable("y").unwrap().start, -1.0);
    }

    #[test]
    fn initial_for_loop_sets_vector_profile() {
        let m = flat(
            "model M;
               Real[5] u;
               initial equation
                 for i in 1:5 loop
                   u[i] = i * 10.0;
                 end for;
               equation
                 der(u) = 0.0;
             end M;",
        );
        for i in 1..=5 {
            assert_eq!(
                m.variable(&format!("u[{i}]")).unwrap().start,
                i as f64 * 10.0
            );
        }
    }

    #[test]
    fn initial_equations_are_inherited() {
        let m = flat(
            "class Base;
               Real x;
               initial equation x = 7.0;
               equation der(x) = -x;
             end Base;
             model M; part Base b; end M;",
        );
        assert_eq!(m.variable("b.x").unwrap().start, 7.0);
    }

    #[test]
    fn initial_equation_overrides_declaration_and_binding() {
        let m = flat(
            "class A;
               Real x(start = 1.0);
               initial equation x = 9.0;
               equation der(x) = -x;
             end A;
             model M; part A a (x = 5.0); end M;",
        );
        assert_eq!(m.variable("a.x").unwrap().start, 9.0);
    }

    #[test]
    fn whole_vector_assignment_broadcasts() {
        let m = flat(
            "model M;
               Real[3] v;
               initial equation v = 4.0;
               equation der(v) = 0.0;
             end M;",
        );
        for i in 1..=3 {
            assert_eq!(m.variable(&format!("v[{i}]")).unwrap().start, 4.0);
        }
    }

    #[test]
    fn rejects_nonconstant_initial_rhs() {
        let unit = parse_unit(
            "model M;
               Real x; Real y;
               initial equation x = y;
               equation der(x) = -x; der(y) = -y;
             end M;",
        )
        .unwrap();
        let err = flatten(&unit).unwrap_err();
        assert!(err.message.contains("constant"), "{err}");
    }

    #[test]
    fn rejects_assignment_to_parameter() {
        let unit = parse_unit(
            "model M;
               parameter Real k = 1.0;
               Real x;
               initial equation k = 2.0;
               equation der(x) = -k*x;
             end M;",
        )
        .unwrap();
        let err = flatten(&unit).unwrap_err();
        assert!(err.message.contains("parameter"), "{err}");
    }
}
