//! # om-lang — the ObjectMath language frontend
//!
//! ObjectMath (paper §1, Figure 1) lets an engineer write a simulation
//! problem as an *object-oriented system of mathematical equations*:
//! classes carry variables, parameters, and equations; inheritance reuses
//! equations; composition (`part`) builds structured models; instance
//! arrays describe repeated machine elements such as the ten rollers of
//! the 2D bearing.
//!
//! This crate contains the textual frontend of the reproduction:
//!
//! * [`lexer`] / [`parser`] — concrete syntax → AST ([`ast`]),
//! * [`scope`] — name and scope analysis over the class table (the
//!   ObjectMath 4.0 redesign moved this out of Mathematica's context
//!   mechanism into a proper symbol table; same here),
//! * [`mod@flatten`] — instantiation: inheritance expansion, composition,
//!   instance arrays, `for`-equation unrolling, vector scalarization, and
//!   parameter evaluation, producing a [`flatten::FlatModel`] of scalar
//!   equations over interned symbols.
//!
//! The concrete grammar is documented in [`parser`].

pub mod ast;
pub mod error;
pub mod flatten;
pub mod lexer;
pub mod parser;
pub mod scope;

pub use error::{LangError, SourcePos};
pub use flatten::{
    flatten, flatten_arrays, ClassFallback, EqClass, FlatEquation, FlatModel, FlatVar,
    FlattenOptions, VarKind,
};
pub use parser::parse_unit;

/// Convenience: parse, scope-check, and flatten a source text in one step.
pub fn compile(source: &str) -> Result<FlatModel, LangError> {
    let unit = parser::parse_unit(source)?;
    scope::check(&unit)?;
    flatten::flatten(&unit)
}

/// Like [`compile`], but keep uniform array equations symbolic as
/// [`flatten::EqClass`]es instead of scalarizing them.
pub fn compile_arrays(source: &str) -> Result<FlatModel, LangError> {
    let unit = parser::parse_unit(source)?;
    scope::check(&unit)?;
    flatten::flatten_arrays(&unit)
}
