//! Abstract syntax tree for ObjectMath source.

use crate::error::SourcePos;

/// A compilation unit: class definitions followed by one model definition.
#[derive(Clone, Debug, PartialEq)]
pub struct Unit {
    pub classes: Vec<ClassDef>,
    pub model: ClassDef,
}

/// A class (or the model itself, which shares the same body structure —
/// the paper's `INSTANCE` sections map to `part` members of the model).
#[derive(Clone, Debug, PartialEq)]
pub struct ClassDef {
    pub name: String,
    pub pos: SourcePos,
    /// Superclass name and parameter overrides, for `extends Base(p = e)`.
    pub extends: Option<Extends>,
    pub members: Vec<Member>,
    pub equations: Vec<Equation>,
    /// `initial equation` section: constant-evaluable start-value
    /// assignments applied at instantiation.
    pub initial_equations: Vec<Equation>,
}

/// An `extends` clause.
#[derive(Clone, Debug, PartialEq)]
pub struct Extends {
    pub base: String,
    pub bindings: Vec<Binding>,
    pub pos: SourcePos,
}

/// A named binding `name = expr` (parameter override or start value).
#[derive(Clone, Debug, PartialEq)]
pub struct Binding {
    pub name: String,
    pub value: SExpr,
    pub pos: SourcePos,
}

/// Declared type: scalar `Real` or vector `Real[n]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ty {
    /// Vector dimension; 1 for scalars.
    pub dim: usize,
}

impl Ty {
    pub fn scalar() -> Ty {
        Ty { dim: 1 }
    }
    pub fn vector(dim: usize) -> Ty {
        Ty { dim }
    }
    pub fn is_scalar(self) -> bool {
        self.dim == 1
    }
}

/// A class body member.
#[derive(Clone, Debug, PartialEq)]
pub enum Member {
    /// `parameter Real g = 9.81;`
    Parameter {
        name: String,
        ty: Ty,
        default: Option<SExpr>,
        pos: SourcePos,
    },
    /// `Real x(start = 1.0);` — a continuous-time variable. Whether it is
    /// a *state* or an *algebraic* variable is decided later by which kind
    /// of equation defines it.
    Variable {
        name: String,
        ty: Ty,
        start: Option<SExpr>,
        pos: SourcePos,
    },
    /// `part Roller body[10] (r = 0.05);` — composition / instance arrays.
    Part {
        class: String,
        name: String,
        /// Number of instances; `None` for a scalar part.
        count: Option<usize>,
        bindings: Vec<Binding>,
        pos: SourcePos,
    },
}

impl Member {
    pub fn name(&self) -> &str {
        match self {
            Member::Parameter { name, .. }
            | Member::Variable { name, .. }
            | Member::Part { name, .. } => name,
        }
    }

    pub fn pos(&self) -> SourcePos {
        match self {
            Member::Parameter { pos, .. }
            | Member::Variable { pos, .. }
            | Member::Part { pos, .. } => *pos,
        }
    }
}

/// An equation or a `for` loop of equations.
#[derive(Clone, Debug, PartialEq)]
pub enum Equation {
    /// `lhs = rhs;`
    Simple {
        lhs: SExpr,
        rhs: SExpr,
        pos: SourcePos,
    },
    /// `for i in 1:10 loop … end for;`
    For {
        index: String,
        from: i64,
        to: i64,
        body: Vec<Equation>,
        pos: SourcePos,
    },
}

/// One segment of a dotted reference: `name` or `name[idx]`.
#[derive(Clone, Debug, PartialEq)]
pub struct RefSeg {
    pub name: String,
    /// Index expressions; at most one supported (vectors and instance
    /// arrays are one-dimensional).
    pub indices: Vec<SExpr>,
}

/// A dotted reference path such as `rollers[i].contact.f[2]`.
#[derive(Clone, Debug, PartialEq)]
pub struct RefPath {
    pub segs: Vec<RefSeg>,
    pub pos: SourcePos,
}

impl RefPath {
    /// A single unindexed name.
    pub fn simple(name: &str, pos: SourcePos) -> RefPath {
        RefPath {
            segs: vec![RefSeg {
                name: name.to_owned(),
                indices: Vec::new(),
            }],
            pos,
        }
    }

    /// Render like the source (`a[i].b`, `u[i+1]`, `rollers[3].x`) for
    /// error messages. Index expressions outside the literal/loop-index
    /// arithmetic subset render as `·`.
    pub fn display(&self) -> String {
        fn push_index(s: &mut String, e: &SExpr) {
            use std::fmt::Write as _;
            match e {
                SExpr::Num(n) if n.fract() == 0.0 => {
                    let _ = write!(s, "{}", *n as i64);
                }
                SExpr::Num(n) => {
                    let _ = write!(s, "{n}");
                }
                SExpr::Ref(p) if p.segs.len() == 1 && p.segs[0].indices.is_empty() => {
                    s.push_str(&p.segs[0].name);
                }
                SExpr::Bin(op, a, b) => {
                    push_index(s, a);
                    s.push(match op {
                        BinOp::Add => '+',
                        BinOp::Sub => '-',
                        BinOp::Mul => '*',
                        BinOp::Div => '/',
                        BinOp::Pow => '^',
                    });
                    push_index(s, b);
                }
                SExpr::Neg(a) => {
                    s.push('-');
                    push_index(s, a);
                }
                _ => s.push('·'),
            }
        }
        let mut s = String::new();
        for (i, seg) in self.segs.iter().enumerate() {
            if i > 0 {
                s.push('.');
            }
            s.push_str(&seg.name);
            for idx in &seg.indices {
                s.push('[');
                push_index(&mut s, idx);
                s.push(']');
            }
        }
        s
    }
}

/// Binary operators in source expressions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Pow,
}

/// Comparison operators in source expressions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RelOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

/// Source-level expression.
#[derive(Clone, Debug, PartialEq)]
pub enum SExpr {
    Num(f64),
    /// Reference to a variable/parameter/loop index via a dotted path.
    Ref(RefPath),
    /// `der(ref)`.
    Der(RefPath),
    /// The built-in free variable `time`.
    Time,
    /// Function call `sin(x)`, `atan2(y, x)`, …
    Call(String, Vec<SExpr>, SourcePos),
    Bin(BinOp, Box<SExpr>, Box<SExpr>),
    Neg(Box<SExpr>),
    Rel(RelOp, Box<SExpr>, Box<SExpr>),
    And(Box<SExpr>, Box<SExpr>),
    Or(Box<SExpr>, Box<SExpr>),
    Not(Box<SExpr>),
    If(Box<SExpr>, Box<SExpr>, Box<SExpr>),
    /// Vector literal `{a, b, c}`.
    Tuple(Vec<SExpr>),
}

impl SExpr {
    /// Walk all sub-expressions, pre-order.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a SExpr)) {
        f(self);
        match self {
            SExpr::Num(_) | SExpr::Ref(_) | SExpr::Der(_) | SExpr::Time => {}
            SExpr::Call(_, args, _) | SExpr::Tuple(args) => {
                for a in args {
                    a.walk(f);
                }
            }
            SExpr::Bin(_, a, b) | SExpr::Rel(_, a, b) | SExpr::And(a, b) | SExpr::Or(a, b) => {
                a.walk(f);
                b.walk(f);
            }
            SExpr::Neg(a) | SExpr::Not(a) => a.walk(f),
            SExpr::If(c, t, e) => {
                c.walk(f);
                t.walk(f);
                e.walk(f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refpath_display() {
        let p = RefPath {
            segs: vec![
                RefSeg {
                    name: "rollers".into(),
                    indices: vec![SExpr::Num(1.0)],
                },
                RefSeg {
                    name: "x".into(),
                    indices: vec![],
                },
            ],
            pos: SourcePos::default(),
        };
        assert_eq!(p.display(), "rollers[1].x");
    }

    #[test]
    fn refpath_display_renders_index_arithmetic() {
        let idx = SExpr::Bin(
            BinOp::Add,
            Box::new(SExpr::Ref(RefPath::simple("i", SourcePos::default()))),
            Box::new(SExpr::Num(1.0)),
        );
        let p = RefPath {
            segs: vec![RefSeg {
                name: "u".into(),
                indices: vec![idx],
            }],
            pos: SourcePos::default(),
        };
        assert_eq!(p.display(), "u[i+1]");
        // Outside the arithmetic subset the index degrades to a dot,
        // not to nothing.
        let call = SExpr::Call("floor".into(), vec![SExpr::Time], SourcePos::default());
        let q = RefPath {
            segs: vec![RefSeg {
                name: "u".into(),
                indices: vec![call],
            }],
            pos: SourcePos::default(),
        };
        assert_eq!(q.display(), "u[·]");
    }

    #[test]
    fn walk_visits_all_nodes() {
        let e = SExpr::Bin(
            BinOp::Add,
            Box::new(SExpr::Num(1.0)),
            Box::new(SExpr::Neg(Box::new(SExpr::Time))),
        );
        let mut n = 0;
        e.walk(&mut |_| n += 1);
        assert_eq!(n, 4);
    }
}
