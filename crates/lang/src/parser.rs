//! Recursive-descent parser.
//!
//! Concrete grammar (EBNF; `{}` repetition, `[]` option):
//!
//! ```text
//! unit        := { class_def } model_def EOF
//! class_def   := 'class' IDENT [ extends ] ';' body 'end' IDENT ';'
//! model_def   := 'model' IDENT ';' body 'end' IDENT ';'
//! extends     := 'extends' IDENT [ '(' bindings ')' ]
//! body        := { member | 'equation' { equation }
//!                 | 'initial' 'equation' { equation } }
//! member      := 'parameter' 'Real' [ '[' INT ']' ] IDENT [ '=' expr ] ';'
//!              | 'Real' [ '[' INT ']' ] IDENT [ '(' 'start' '=' expr ')' ] ';'
//!              | 'part' IDENT IDENT [ '[' INT ']' ] [ '(' bindings ')' ] ';'
//! equation    := 'for' IDENT 'in' INT ':' INT 'loop' { equation } 'end' 'for' ';'
//!              | expr '=' expr ';'
//! bindings    := IDENT '=' expr { ',' IDENT '=' expr }
//!
//! expr        := 'if' expr 'then' expr 'else' expr | or_expr
//! or_expr     := and_expr { 'or' and_expr }
//! and_expr    := not_expr { 'and' not_expr }
//! not_expr    := 'not' not_expr | rel_expr
//! rel_expr    := add_expr [ ('<'|'<='|'>'|'>='|'=='|'<>') add_expr ]
//! add_expr    := mul_expr { ('+'|'-') mul_expr }
//! mul_expr    := unary { ('*'|'/') unary }
//! unary       := '-' unary | '+' unary | pow_expr
//! pow_expr    := primary [ '^' unary ]
//! primary     := NUMBER | 'time' | 'der' '(' ref ')' | IDENT '(' args ')'
//!              | ref | '(' expr ')' | '{' expr { ',' expr } '}'
//! ref         := IDENT [ '[' expr ']' ] { '.' IDENT [ '[' expr ']' ] }
//! ```
//!
//! The paper's `INSTANCE BodyW[i] INHERITS Roller(W[i])` construct maps to
//! a `part Roller BodyW[10] (…)` member plus `for`-equations over the
//! instance index.

use crate::ast::*;
use crate::error::{LangError, SourcePos};
use crate::lexer::{lex, Spanned, Tok};

/// Parse a complete compilation unit.
pub fn parse_unit(source: &str) -> Result<Unit, LangError> {
    let toks = lex(source)?;
    let mut p = Parser { toks, at: 0 };
    let unit = p.unit()?;
    Ok(unit)
}

/// Parse a single expression (used by tests and by the interactive
/// harness binaries).
pub fn parse_expr(source: &str) -> Result<SExpr, LangError> {
    let toks = lex(source)?;
    let mut p = Parser { toks, at: 0 };
    let e = p.expr()?;
    p.expect(Tok::Eof)?;
    Ok(e)
}

struct Parser {
    toks: Vec<Spanned>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.at].tok
    }

    fn pos(&self) -> SourcePos {
        self.toks[self.at].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.at].tok.clone();
        if self.at + 1 < self.toks.len() {
            self.at += 1;
        }
        t
    }

    fn expect(&mut self, want: Tok) -> Result<(), LangError> {
        if *self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {}, found {}",
                want.describe(),
                self.peek().describe()
            )))
        }
    }

    fn err(&self, message: String) -> LangError {
        LangError::parse(self.pos(), message)
    }

    fn ident(&mut self) -> Result<String, LangError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(self.err(format!("expected identifier, found {}", other.describe()))),
        }
    }

    fn integer(&mut self) -> Result<i64, LangError> {
        match *self.peek() {
            Tok::Number(n) if n.fract() == 0.0 => {
                self.bump();
                Ok(n as i64)
            }
            ref other => Err(self.err(format!(
                "expected integer literal, found {}",
                other.describe()
            ))),
        }
    }

    // -- unit structure ----------------------------------------------------

    fn unit(&mut self) -> Result<Unit, LangError> {
        let mut classes = Vec::new();
        loop {
            match self.peek() {
                Tok::KwClass => classes.push(self.class_def(Tok::KwClass)?),
                Tok::KwModel => {
                    let model = self.class_def(Tok::KwModel)?;
                    self.expect(Tok::Eof)?;
                    return Ok(Unit { classes, model });
                }
                other => {
                    return Err(self.err(format!(
                        "expected `class` or `model`, found {}",
                        other.describe()
                    )))
                }
            }
        }
    }

    fn class_def(&mut self, intro: Tok) -> Result<ClassDef, LangError> {
        let pos = self.pos();
        self.expect(intro)?;
        let name = self.ident()?;
        let extends = if *self.peek() == Tok::KwExtends {
            let epos = self.pos();
            self.bump();
            let base = self.ident()?;
            let bindings = if *self.peek() == Tok::LParen {
                self.bindings()?
            } else {
                Vec::new()
            };
            Some(Extends {
                base,
                bindings,
                pos: epos,
            })
        } else {
            None
        };
        self.expect(Tok::Semicolon)?;

        let mut members = Vec::new();
        let mut equations = Vec::new();
        let mut initial_equations = Vec::new();
        loop {
            match self.peek() {
                Tok::KwParameter | Tok::KwReal | Tok::KwPart => members.push(self.member()?),
                Tok::KwInitial => {
                    self.bump();
                    self.expect(Tok::KwEquation)?;
                    while !matches!(
                        self.peek(),
                        Tok::KwEnd
                            | Tok::KwParameter
                            | Tok::KwReal
                            | Tok::KwPart
                            | Tok::KwEquation
                            | Tok::KwInitial
                    ) {
                        initial_equations.push(self.equation()?);
                    }
                }
                Tok::KwEquation => {
                    self.bump();
                    while !matches!(
                        self.peek(),
                        Tok::KwEnd
                            | Tok::KwParameter
                            | Tok::KwReal
                            | Tok::KwPart
                            | Tok::KwEquation
                            | Tok::KwInitial
                    ) {
                        equations.push(self.equation()?);
                    }
                }
                Tok::KwEnd => break,
                other => {
                    return Err(self.err(format!(
                        "expected member declaration, `equation`, `initial equation`, or `end`, found {}",
                        other.describe()
                    )))
                }
            }
        }
        self.expect(Tok::KwEnd)?;
        let end_name = self.ident()?;
        if end_name != name {
            return Err(self.err(format!("`end {end_name}` does not match `{name}`")));
        }
        self.expect(Tok::Semicolon)?;
        Ok(ClassDef {
            name,
            pos,
            extends,
            members,
            equations,
            initial_equations,
        })
    }

    fn member(&mut self) -> Result<Member, LangError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::KwParameter => {
                self.bump();
                self.expect(Tok::KwReal)?;
                let ty = self.opt_dims()?;
                let name = self.ident()?;
                let default = if *self.peek() == Tok::Assign {
                    self.bump();
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(Tok::Semicolon)?;
                Ok(Member::Parameter {
                    name,
                    ty,
                    default,
                    pos,
                })
            }
            Tok::KwReal => {
                self.bump();
                let ty = self.opt_dims()?;
                let name = self.ident()?;
                let start = if *self.peek() == Tok::LParen {
                    self.bump();
                    self.expect(Tok::KwStart)?;
                    self.expect(Tok::Assign)?;
                    let e = self.expr()?;
                    self.expect(Tok::RParen)?;
                    Some(e)
                } else {
                    None
                };
                self.expect(Tok::Semicolon)?;
                Ok(Member::Variable {
                    name,
                    ty,
                    start,
                    pos,
                })
            }
            Tok::KwPart => {
                self.bump();
                let class = self.ident()?;
                let name = self.ident()?;
                let count = if *self.peek() == Tok::LBracket {
                    self.bump();
                    let n = self.integer()?;
                    if n < 1 {
                        return Err(self.err("instance array size must be >= 1".into()));
                    }
                    self.expect(Tok::RBracket)?;
                    Some(n as usize)
                } else {
                    None
                };
                let bindings = if *self.peek() == Tok::LParen {
                    self.bindings()?
                } else {
                    Vec::new()
                };
                self.expect(Tok::Semicolon)?;
                Ok(Member::Part {
                    class,
                    name,
                    count,
                    bindings,
                    pos,
                })
            }
            other => Err(self.err(format!(
                "expected member declaration, found {}",
                other.describe()
            ))),
        }
    }

    fn opt_dims(&mut self) -> Result<Ty, LangError> {
        if *self.peek() == Tok::LBracket {
            self.bump();
            let n = self.integer()?;
            if n < 1 {
                return Err(self.err("vector dimension must be >= 1".into()));
            }
            self.expect(Tok::RBracket)?;
            Ok(Ty::vector(n as usize))
        } else {
            Ok(Ty::scalar())
        }
    }

    fn bindings(&mut self) -> Result<Vec<Binding>, LangError> {
        self.expect(Tok::LParen)?;
        let mut out = Vec::new();
        loop {
            let pos = self.pos();
            let name = self.ident()?;
            self.expect(Tok::Assign)?;
            let value = self.expr()?;
            out.push(Binding { name, value, pos });
            if *self.peek() == Tok::Comma {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(Tok::RParen)?;
        Ok(out)
    }

    fn equation(&mut self) -> Result<Equation, LangError> {
        let pos = self.pos();
        if *self.peek() == Tok::KwFor {
            self.bump();
            let index = self.ident()?;
            self.expect(Tok::KwIn)?;
            let from = self.integer()?;
            self.expect(Tok::Colon)?;
            let to = self.integer()?;
            self.expect(Tok::KwLoop)?;
            let mut body = Vec::new();
            while *self.peek() != Tok::KwEnd {
                body.push(self.equation()?);
            }
            self.expect(Tok::KwEnd)?;
            self.expect(Tok::KwFor)?;
            self.expect(Tok::Semicolon)?;
            return Ok(Equation::For {
                index,
                from,
                to,
                body,
                pos,
            });
        }
        let lhs = self.expr()?;
        self.expect(Tok::Assign)?;
        let rhs = self.expr()?;
        self.expect(Tok::Semicolon)?;
        Ok(Equation::Simple { lhs, rhs, pos })
    }

    // -- expressions -------------------------------------------------------

    fn expr(&mut self) -> Result<SExpr, LangError> {
        if *self.peek() == Tok::KwIf {
            self.bump();
            let c = self.expr()?;
            self.expect(Tok::KwThen)?;
            let t = self.expr()?;
            self.expect(Tok::KwElse)?;
            let e = self.expr()?;
            return Ok(SExpr::If(Box::new(c), Box::new(t), Box::new(e)));
        }
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<SExpr, LangError> {
        let mut lhs = self.and_expr()?;
        while *self.peek() == Tok::KwOr {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = SExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<SExpr, LangError> {
        let mut lhs = self.not_expr()?;
        while *self.peek() == Tok::KwAnd {
            self.bump();
            let rhs = self.not_expr()?;
            lhs = SExpr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<SExpr, LangError> {
        if *self.peek() == Tok::KwNot {
            self.bump();
            let inner = self.not_expr()?;
            return Ok(SExpr::Not(Box::new(inner)));
        }
        self.rel_expr()
    }

    fn rel_expr(&mut self) -> Result<SExpr, LangError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Lt => RelOp::Lt,
            Tok::Le => RelOp::Le,
            Tok::Gt => RelOp::Gt,
            Tok::Ge => RelOp::Ge,
            Tok::EqEq => RelOp::Eq,
            Tok::Ne => RelOp::Ne,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(SExpr::Rel(op, Box::new(lhs), Box::new(rhs)))
    }

    fn add_expr(&mut self) -> Result<SExpr, LangError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = SExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn mul_expr(&mut self) -> Result<SExpr, LangError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = SExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn unary(&mut self) -> Result<SExpr, LangError> {
        match self.peek() {
            Tok::Minus => {
                self.bump();
                let inner = self.unary()?;
                Ok(SExpr::Neg(Box::new(inner)))
            }
            Tok::Plus => {
                self.bump();
                self.unary()
            }
            _ => self.pow_expr(),
        }
    }

    fn pow_expr(&mut self) -> Result<SExpr, LangError> {
        let base = self.primary()?;
        if *self.peek() == Tok::Caret {
            self.bump();
            // Right-associative; exponent may carry a unary minus.
            let exp = self.unary()?;
            return Ok(SExpr::Bin(BinOp::Pow, Box::new(base), Box::new(exp)));
        }
        Ok(base)
    }

    fn primary(&mut self) -> Result<SExpr, LangError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Number(n) => {
                self.bump();
                Ok(SExpr::Num(n))
            }
            Tok::KwTime => {
                self.bump();
                Ok(SExpr::Time)
            }
            Tok::KwDer => {
                self.bump();
                self.expect(Tok::LParen)?;
                let r = self.ref_path()?;
                self.expect(Tok::RParen)?;
                Ok(SExpr::Der(r))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::LBrace => {
                self.bump();
                let mut items = vec![self.expr()?];
                while *self.peek() == Tok::Comma {
                    self.bump();
                    items.push(self.expr()?);
                }
                self.expect(Tok::RBrace)?;
                Ok(SExpr::Tuple(items))
            }
            Tok::Ident(name) => {
                // Function call or reference. A call is `ident(` with no
                // preceding dot/index.
                if self.toks[self.at + 1].tok == Tok::LParen {
                    self.bump(); // ident
                    self.bump(); // (
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        args.push(self.expr()?);
                        while *self.peek() == Tok::Comma {
                            self.bump();
                            args.push(self.expr()?);
                        }
                    }
                    self.expect(Tok::RParen)?;
                    Ok(SExpr::Call(name, args, pos))
                } else {
                    let r = self.ref_path()?;
                    Ok(SExpr::Ref(r))
                }
            }
            other => Err(self.err(format!("expected expression, found {}", other.describe()))),
        }
    }

    fn ref_path(&mut self) -> Result<RefPath, LangError> {
        let pos = self.pos();
        let mut segs = Vec::new();
        loop {
            let name = self.ident()?;
            let mut indices = Vec::new();
            if *self.peek() == Tok::LBracket {
                self.bump();
                indices.push(self.expr()?);
                self.expect(Tok::RBracket)?;
            }
            segs.push(RefSeg { name, indices });
            if *self.peek() == Tok::Dot {
                self.bump();
            } else {
                break;
            }
        }
        Ok(RefPath { segs, pos })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_model() {
        let src = "model M; Real x; equation der(x) = 1; end M;";
        let unit = parse_unit(src).unwrap();
        assert_eq!(unit.model.name, "M");
        assert_eq!(unit.model.members.len(), 1);
        assert_eq!(unit.model.equations.len(), 1);
    }

    #[test]
    fn parses_class_with_inheritance_and_override() {
        let src = "
            class Base;
              parameter Real k = 1.0;
              Real x(start = 2.0);
              equation der(x) = -k*x;
            end Base;
            model M;
              part Base b (k = 3.0);
            end M;
        ";
        let unit = parse_unit(src).unwrap();
        assert_eq!(unit.classes.len(), 1);
        let c = &unit.classes[0];
        assert_eq!(c.name, "Base");
        assert_eq!(c.members.len(), 2);
        match &unit.model.members[0] {
            Member::Part {
                class,
                name,
                count,
                bindings,
                ..
            } => {
                assert_eq!(class, "Base");
                assert_eq!(name, "b");
                assert_eq!(*count, None);
                assert_eq!(bindings.len(), 1);
                assert_eq!(bindings[0].name, "k");
            }
            other => panic!("expected part, got {other:?}"),
        }
    }

    #[test]
    fn parses_extends_clause() {
        let src = "
            class A; Real x; end A;
            class B extends A (x = 1.0); end B;
            model M; part B b; end M;
        ";
        let unit = parse_unit(src).unwrap();
        let b = &unit.classes[1];
        let ext = b.extends.as_ref().unwrap();
        assert_eq!(ext.base, "A");
        assert_eq!(ext.bindings.len(), 1);
    }

    #[test]
    fn parses_instance_arrays_and_for_equations() {
        let src = "
            class Roller; Real x; equation der(x) = 1; end Roller;
            model M;
              part Roller w[10];
              Real total;
              equation
                for i in 1:10 loop
                  der(w[i].x) = w[i].x * 2;
                end for;
                total = w[1].x;
            end M;
        ";
        let unit = parse_unit(src).unwrap();
        match &unit.model.equations[0] {
            Equation::For {
                index,
                from,
                to,
                body,
                ..
            } => {
                assert_eq!(index, "i");
                assert_eq!((*from, *to), (1, 10));
                assert_eq!(body.len(), 1);
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn parses_vector_declarations_and_literals() {
        let src = "
            model M;
              Real[3] f;
              equation f = {1, 2, 3};
            end M;
        ";
        let unit = parse_unit(src).unwrap();
        match &unit.model.members[0] {
            Member::Variable { ty, .. } => assert_eq!(ty.dim, 3),
            other => panic!("{other:?}"),
        }
        match &unit.model.equations[0] {
            Equation::Simple { rhs, .. } => {
                assert!(matches!(rhs, SExpr::Tuple(v) if v.len() == 3));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn expression_precedence() {
        // a + b*c^2 parses as a + (b*(c^2))
        let e = parse_expr("a + b*c^2").unwrap();
        match e {
            SExpr::Bin(BinOp::Add, _, rhs) => match *rhs {
                SExpr::Bin(BinOp::Mul, _, rhs2) => {
                    assert!(matches!(*rhs2, SExpr::Bin(BinOp::Pow, _, _)));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn power_is_right_associative_with_unary_exponent() {
        let e = parse_expr("x^-2").unwrap();
        match e {
            SExpr::Bin(BinOp::Pow, _, exp) => assert!(matches!(*exp, SExpr::Neg(_))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_conditionals_and_booleans() {
        let e = parse_expr("if d > 0 and not locked then d^1.5 else 0").unwrap();
        assert!(matches!(e, SExpr::If(_, _, _)));
    }

    #[test]
    fn parses_function_calls() {
        let e = parse_expr("atan2(y, x) + sin(t)").unwrap();
        match e {
            SExpr::Bin(BinOp::Add, lhs, _) => match *lhs {
                SExpr::Call(name, args, _) => {
                    assert_eq!(name, "atan2");
                    assert_eq!(args.len(), 2);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_mismatched_end_name() {
        let err = parse_unit("model M; end N;").unwrap_err();
        assert!(err.message.contains("does not match"));
    }

    #[test]
    fn rejects_garbage_after_model() {
        let err = parse_unit("model M; end M; class X; end X;").unwrap_err();
        assert!(err.message.contains("end of input"));
    }

    #[test]
    fn reports_position_of_syntax_error() {
        let err = parse_unit("model M;\n  Real ;\nend M;").unwrap_err();
        assert_eq!(err.pos.unwrap().line, 2);
    }

    #[test]
    fn dotted_indexed_reference() {
        let e = parse_expr("w[i].contact.f[2]").unwrap();
        match e {
            SExpr::Ref(p) => {
                assert_eq!(p.segs.len(), 3);
                assert_eq!(p.segs[0].name, "w");
                assert_eq!(p.segs[0].indices.len(), 1);
                assert_eq!(p.segs[2].indices.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }
}
