//! Hand-written lexer for the ObjectMath surface syntax.
//!
//! Comments are `//` to end of line; whitespace is insignificant.
//! Keywords are reserved; everything else alphanumeric (plus `_`) is an
//! identifier. Numbers are standard floating literals (`1`, `2.5`,
//! `1e-3`, `0.5e2`).

use crate::error::{LangError, SourcePos};

/// Token kinds produced by the lexer.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    // Literals & identifiers
    Number(f64),
    Ident(String),
    // Keywords
    KwModel,
    KwClass,
    KwExtends,
    KwEnd,
    KwParameter,
    KwReal,
    KwPart,
    KwEquation,
    KwInitial,
    KwStart,
    KwDer,
    KwTime,
    KwIf,
    KwThen,
    KwElse,
    KwFor,
    KwIn,
    KwLoop,
    KwAnd,
    KwOr,
    KwNot,
    // Punctuation & operators
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Semicolon,
    Colon,
    Dot,
    Assign, // '='
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq, // '=='
    Ne,   // '<>'
    /// End of input sentinel.
    Eof,
}

impl Tok {
    /// A short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            Tok::Number(n) => format!("number `{n}`"),
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Eof => "end of input".to_owned(),
            other => format!("`{}`", other.spelling()),
        }
    }

    fn spelling(&self) -> &'static str {
        match self {
            Tok::KwModel => "model",
            Tok::KwClass => "class",
            Tok::KwExtends => "extends",
            Tok::KwEnd => "end",
            Tok::KwParameter => "parameter",
            Tok::KwReal => "Real",
            Tok::KwPart => "part",
            Tok::KwEquation => "equation",
            Tok::KwInitial => "initial",
            Tok::KwStart => "start",
            Tok::KwDer => "der",
            Tok::KwTime => "time",
            Tok::KwIf => "if",
            Tok::KwThen => "then",
            Tok::KwElse => "else",
            Tok::KwFor => "for",
            Tok::KwIn => "in",
            Tok::KwLoop => "loop",
            Tok::KwAnd => "and",
            Tok::KwOr => "or",
            Tok::KwNot => "not",
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::LBracket => "[",
            Tok::RBracket => "]",
            Tok::LBrace => "{",
            Tok::RBrace => "}",
            Tok::Comma => ",",
            Tok::Semicolon => ";",
            Tok::Colon => ":",
            Tok::Dot => ".",
            Tok::Assign => "=",
            Tok::Plus => "+",
            Tok::Minus => "-",
            Tok::Star => "*",
            Tok::Slash => "/",
            Tok::Caret => "^",
            Tok::Lt => "<",
            Tok::Le => "<=",
            Tok::Gt => ">",
            Tok::Ge => ">=",
            Tok::EqEq => "==",
            Tok::Ne => "<>",
            Tok::Number(_) | Tok::Ident(_) | Tok::Eof => unreachable!(),
        }
    }
}

/// A token together with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Spanned {
    pub tok: Tok,
    pub pos: SourcePos,
}

/// Lex `source` into a token stream terminated by [`Tok::Eof`].
pub fn lex(source: &str) -> Result<Vec<Spanned>, LangError> {
    let mut out = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! push {
        ($tok:expr, $len:expr) => {{
            out.push(Spanned {
                tok: $tok,
                pos: SourcePos::new(line, col),
            });
            i += $len;
            col += $len as u32;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => push!(Tok::LParen, 1),
            ')' => push!(Tok::RParen, 1),
            '[' => push!(Tok::LBracket, 1),
            ']' => push!(Tok::RBracket, 1),
            '{' => push!(Tok::LBrace, 1),
            '}' => push!(Tok::RBrace, 1),
            ',' => push!(Tok::Comma, 1),
            ';' => push!(Tok::Semicolon, 1),
            ':' => push!(Tok::Colon, 1),
            '.' if !bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) => {
                push!(Tok::Dot, 1)
            }
            '+' => push!(Tok::Plus, 1),
            '-' => push!(Tok::Minus, 1),
            '*' => push!(Tok::Star, 1),
            '/' => push!(Tok::Slash, 1),
            '^' => push!(Tok::Caret, 1),
            '=' if bytes.get(i + 1) == Some(&b'=') => push!(Tok::EqEq, 2),
            '=' => push!(Tok::Assign, 1),
            '<' if bytes.get(i + 1) == Some(&b'=') => push!(Tok::Le, 2),
            '<' if bytes.get(i + 1) == Some(&b'>') => push!(Tok::Ne, 2),
            '<' => push!(Tok::Lt, 1),
            '>' if bytes.get(i + 1) == Some(&b'=') => push!(Tok::Ge, 2),
            '>' => push!(Tok::Gt, 1),
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == b'.' {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &source[start..i];
                let value: f64 = text.parse().map_err(|_| {
                    LangError::lex(
                        SourcePos::new(line, col),
                        format!("malformed number literal `{text}`"),
                    )
                })?;
                out.push(Spanned {
                    tok: Tok::Number(value),
                    pos: SourcePos::new(line, col),
                });
                col += (i - start) as u32;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &source[start..i];
                let tok = match word {
                    "model" => Tok::KwModel,
                    "class" => Tok::KwClass,
                    "extends" => Tok::KwExtends,
                    "end" => Tok::KwEnd,
                    "parameter" => Tok::KwParameter,
                    "Real" => Tok::KwReal,
                    "part" => Tok::KwPart,
                    "equation" => Tok::KwEquation,
                    "initial" => Tok::KwInitial,
                    "start" => Tok::KwStart,
                    "der" => Tok::KwDer,
                    "time" => Tok::KwTime,
                    "if" => Tok::KwIf,
                    "then" => Tok::KwThen,
                    "else" => Tok::KwElse,
                    "for" => Tok::KwFor,
                    "in" => Tok::KwIn,
                    "loop" => Tok::KwLoop,
                    "and" => Tok::KwAnd,
                    "or" => Tok::KwOr,
                    "not" => Tok::KwNot,
                    _ => Tok::Ident(word.to_owned()),
                };
                out.push(Spanned {
                    tok,
                    pos: SourcePos::new(line, col),
                });
                col += (i - start) as u32;
            }
            other => {
                return Err(LangError::lex(
                    SourcePos::new(line, col),
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        pos: SourcePos::new(line, col),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_keywords_and_identifiers() {
        assert_eq!(
            toks("model Foo; end Foo;"),
            vec![
                Tok::KwModel,
                Tok::Ident("Foo".into()),
                Tok::Semicolon,
                Tok::KwEnd,
                Tok::Ident("Foo".into()),
                Tok::Semicolon,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            toks("1 2.5 1e-3 0.5e2 7."),
            vec![
                Tok::Number(1.0),
                Tok::Number(2.5),
                Tok::Number(1e-3),
                Tok::Number(0.5e2),
                Tok::Number(7.0),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            toks("a = b == c <= d <> e ^ 2"),
            vec![
                Tok::Ident("a".into()),
                Tok::Assign,
                Tok::Ident("b".into()),
                Tok::EqEq,
                Tok::Ident("c".into()),
                Tok::Le,
                Tok::Ident("d".into()),
                Tok::Ne,
                Tok::Ident("e".into()),
                Tok::Caret,
                Tok::Number(2.0),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn skips_comments_and_tracks_lines() {
        let spanned = lex("a // comment\n  b").unwrap();
        assert_eq!(spanned[0].pos, SourcePos::new(1, 1));
        assert_eq!(spanned[1].pos, SourcePos::new(2, 3));
        assert_eq!(spanned[1].tok, Tok::Ident("b".into()));
    }

    #[test]
    fn dotted_reference_lexes_as_dot() {
        assert_eq!(
            toks("a.b"),
            vec![
                Tok::Ident("a".into()),
                Tok::Dot,
                Tok::Ident("b".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn rejects_unknown_characters() {
        let err = lex("a ? b").unwrap_err();
        assert!(err.message.contains('?'));
        assert_eq!(err.pos.unwrap(), SourcePos::new(1, 3));
    }

    #[test]
    fn der_and_time_are_keywords() {
        assert_eq!(toks("der time")[..2], [Tok::KwDer, Tok::KwTime]);
    }
}
