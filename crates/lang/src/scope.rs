//! Name and scope analysis.
//!
//! The original ObjectMath 3.0 left name analysis to Mathematica's context
//! mechanism, which broke down once composition was added; ObjectMath 4.0
//! introduced a proper symbol table shared between compiler and code
//! generator (paper §3.1). This pass is the reproduction of that table:
//! it checks the class graph and every reference *before* flattening, so
//! later phases can rely on well-formed input.
//!
//! Checks performed:
//!
//! * class names are unique; `extends` targets exist; inheritance is
//!   acyclic,
//! * `part` member classes exist; part nesting is acyclic,
//! * member names are unique within a class, including inherited members,
//! * `extends`/`part` bindings target parameters or variable start values
//!   of the target class,
//! * function calls name known built-ins with correct arity,
//! * every reference's first segment resolves to a member, a loop index,
//!   or `time`; segments after a part resolve within the part's class;
//!   index brackets match arrayness (instance arrays and vectors).

use crate::ast::*;
use crate::error::LangError;
use om_expr::expr::Func;
use std::collections::{HashMap, HashSet};

/// The resolved class table built by [`check`], reused by flattening.
pub struct ClassTable<'a> {
    classes: HashMap<&'a str, &'a ClassDef>,
}

impl<'a> ClassTable<'a> {
    /// Build the table from a unit, checking class-level well-formedness.
    pub fn build(unit: &'a Unit) -> Result<ClassTable<'a>, LangError> {
        let mut classes: HashMap<&str, &ClassDef> = HashMap::new();
        for c in &unit.classes {
            if classes.insert(c.name.as_str(), c).is_some() {
                return Err(LangError::scope(
                    Some(c.pos),
                    format!("duplicate class name `{}`", c.name),
                ));
            }
            if c.name == unit.model.name {
                return Err(LangError::scope(
                    Some(c.pos),
                    format!("class `{}` has the same name as the model", c.name),
                ));
            }
        }
        let table = ClassTable { classes };
        for c in &unit.classes {
            table.check_inheritance_chain(c)?;
        }
        table.check_part_acyclicity(unit)?;
        Ok(table)
    }

    /// Look up a class by name.
    pub fn get(&self, name: &str) -> Option<&'a ClassDef> {
        self.classes.get(name).copied()
    }

    fn check_inheritance_chain(&self, class: &ClassDef) -> Result<(), LangError> {
        let mut seen: HashSet<&str> = HashSet::new();
        let mut current = class;
        seen.insert(&class.name);
        while let Some(ext) = &current.extends {
            let base = self.get(&ext.base).ok_or_else(|| {
                LangError::scope(Some(ext.pos), format!("unknown base class `{}`", ext.base))
            })?;
            if !seen.insert(&base.name) {
                return Err(LangError::scope(
                    Some(ext.pos),
                    format!("inheritance cycle through `{}`", base.name),
                ));
            }
            current = base;
        }
        Ok(())
    }

    fn check_part_acyclicity(&self, unit: &Unit) -> Result<(), LangError> {
        // DFS over the "contains a part of class" relation, following
        // inheritance so parts of base classes are included.
        fn visit<'a>(
            table: &ClassTable<'a>,
            class: &'a ClassDef,
            stack: &mut Vec<&'a str>,
            done: &mut HashSet<&'a str>,
        ) -> Result<(), LangError> {
            if done.contains(class.name.as_str()) {
                return Ok(());
            }
            if stack.contains(&class.name.as_str()) {
                return Err(LangError::scope(
                    Some(class.pos),
                    format!("composition cycle through class `{}`", class.name),
                ));
            }
            stack.push(&class.name);
            for (member, _) in table.effective_members(class) {
                if let Member::Part { class: pc, pos, .. } = member {
                    let part_class = table.get(pc).ok_or_else(|| {
                        LangError::scope(Some(*pos), format!("unknown part class `{pc}`"))
                    })?;
                    visit(table, part_class, stack, done)?;
                }
            }
            stack.pop();
            done.insert(&class.name);
            Ok(())
        }
        let mut done = HashSet::new();
        for c in &unit.classes {
            visit(self, c, &mut Vec::new(), &mut done)?;
        }
        visit(self, &unit.model, &mut Vec::new(), &mut done)
    }

    /// All members of `class` including inherited ones, base-class members
    /// first. The second tuple element is the defining class name (for
    /// diagnostics).
    pub fn effective_members(&self, class: &'a ClassDef) -> Vec<(&'a Member, &'a str)> {
        let mut chain: Vec<&ClassDef> = Vec::new();
        let mut current = class;
        loop {
            chain.push(current);
            match &current.extends {
                // Unknown bases are reported by check_inheritance_chain;
                // here we just stop.
                Some(ext) => match self.get(&ext.base) {
                    Some(base) => current = base,
                    None => break,
                },
                None => break,
            }
        }
        let mut out = Vec::new();
        for c in chain.iter().rev() {
            for m in &c.members {
                out.push((m, c.name.as_str()));
            }
        }
        out
    }

    /// All equations of `class` including inherited ones, base-class
    /// equations first.
    pub fn effective_equations(&self, class: &'a ClassDef) -> Vec<&'a Equation> {
        let mut chain: Vec<&ClassDef> = Vec::new();
        let mut current = class;
        loop {
            chain.push(current);
            match &current.extends {
                Some(ext) => match self.get(&ext.base) {
                    Some(base) => current = base,
                    None => break,
                },
                None => break,
            }
        }
        let mut out = Vec::new();
        for c in chain.iter().rev() {
            out.extend(c.equations.iter());
        }
        out
    }

    /// All `initial equation`s of `class` including inherited ones,
    /// base-class equations first.
    pub fn effective_initial_equations(&self, class: &'a ClassDef) -> Vec<&'a Equation> {
        let mut chain: Vec<&ClassDef> = Vec::new();
        let mut current = class;
        loop {
            chain.push(current);
            match &current.extends {
                Some(ext) => match self.get(&ext.base) {
                    Some(base) => current = base,
                    None => break,
                },
                None => break,
            }
        }
        let mut out = Vec::new();
        for c in chain.iter().rev() {
            out.extend(c.initial_equations.iter());
        }
        out
    }

    /// The chain of parameter-override bindings from `class` up through its
    /// bases (`extends B(p = …)`), nearest class first.
    pub fn extends_bindings(&self, class: &'a ClassDef) -> Vec<&'a Binding> {
        let mut out = Vec::new();
        let mut current = class;
        while let Some(ext) = &current.extends {
            out.extend(ext.bindings.iter());
            match self.get(&ext.base) {
                Some(base) => current = base,
                None => break,
            }
        }
        out
    }
}

/// Run all scope checks on the unit.
pub fn check(unit: &Unit) -> Result<(), LangError> {
    let table = ClassTable::build(unit)?;
    for class in unit.classes.iter().chain(std::iter::once(&unit.model)) {
        check_class(&table, class)?;
    }
    Ok(())
}

fn check_class(table: &ClassTable<'_>, class: &ClassDef) -> Result<(), LangError> {
    let members = table.effective_members(class);

    // Unique member names across the inheritance chain.
    let mut seen: HashMap<&str, &str> = HashMap::new();
    for (m, owner) in &members {
        if let Some(prev_owner) = seen.insert(m.name(), owner) {
            return Err(LangError::scope(
                Some(m.pos()),
                format!(
                    "member `{}` in `{}` conflicts with member of the same name in `{}`",
                    m.name(),
                    owner,
                    prev_owner
                ),
            ));
        }
    }

    // Bindings in extends clauses and part declarations must target
    // parameters or variables (start-value overrides) of the target class.
    // Each class checks only its *direct* extends clause; bases are
    // covered when `check` visits them.
    if let Some(ext) = &class.extends {
        for b in &ext.bindings {
            check_binding_target(table, b, &ext.base)?;
        }
    }
    for (m, _) in &members {
        if let Member::Part {
            class: pc,
            bindings,
            ..
        } = m
        {
            for b in bindings {
                check_binding_target(table, b, pc)?;
            }
        }
    }

    // Expression-level checks in equations, defaults, and start values.
    let mut env = RefEnv {
        table,
        class,
        loop_indices: Vec::new(),
    };
    for (m, _) in &members {
        match m {
            Member::Parameter {
                default: Some(e), ..
            } => env.check_expr(e)?,
            Member::Variable { start: Some(e), .. } => env.check_expr(e)?,
            _ => {}
        }
    }
    let equations = table.effective_equations(class);
    for eq in equations {
        env.check_equation(eq)?;
    }
    for eq in table.effective_initial_equations(class) {
        env.check_equation(eq)?;
    }
    Ok(())
}

fn check_binding_target(
    table: &ClassTable<'_>,
    b: &Binding,
    target_class: &str,
) -> Result<(), LangError> {
    let Some(target) = table.get(target_class) else {
        // Reported elsewhere (unknown class).
        return Ok(());
    };
    let ok = table.effective_members(target).iter().any(|(m, _)| {
        m.name() == b.name && matches!(m, Member::Parameter { .. } | Member::Variable { .. })
    });
    if !ok {
        return Err(LangError::scope(
            Some(b.pos),
            format!(
                "binding target `{}` is not a parameter or variable of class `{}`",
                b.name, target_class
            ),
        ));
    }
    Ok(())
}

struct RefEnv<'a, 'u> {
    table: &'a ClassTable<'u>,
    class: &'u ClassDef,
    loop_indices: Vec<String>,
}

impl RefEnv<'_, '_> {
    fn check_equation(&mut self, eq: &Equation) -> Result<(), LangError> {
        match eq {
            Equation::Simple { lhs, rhs, .. } => {
                self.check_expr(lhs)?;
                self.check_expr(rhs)
            }
            Equation::For {
                index,
                from,
                to,
                body,
                pos,
            } => {
                if from > to {
                    return Err(LangError::scope(
                        Some(*pos),
                        format!("empty loop range {from}:{to}"),
                    ));
                }
                if self.loop_indices.iter().any(|i| i == index) {
                    return Err(LangError::scope(
                        Some(*pos),
                        format!("loop index `{index}` shadows an enclosing loop index"),
                    ));
                }
                self.loop_indices.push(index.clone());
                for e in body {
                    self.check_equation(e)?;
                }
                self.loop_indices.pop();
                Ok(())
            }
        }
    }

    fn check_expr(&mut self, e: &SExpr) -> Result<(), LangError> {
        match e {
            SExpr::Num(_) | SExpr::Time => Ok(()),
            SExpr::Ref(path) => self.check_ref(path),
            SExpr::Der(path) => self.check_ref(path),
            SExpr::Call(name, args, pos) => {
                let f = Func::from_name(name).ok_or_else(|| {
                    LangError::scope(Some(*pos), format!("unknown function `{name}`"))
                })?;
                if args.len() != f.arity() {
                    return Err(LangError::scope(
                        Some(*pos),
                        format!(
                            "function `{name}` takes {} argument(s), got {}",
                            f.arity(),
                            args.len()
                        ),
                    ));
                }
                for a in args {
                    self.check_expr(a)?;
                }
                Ok(())
            }
            SExpr::Bin(_, a, b) | SExpr::Rel(_, a, b) | SExpr::And(a, b) | SExpr::Or(a, b) => {
                self.check_expr(a)?;
                self.check_expr(b)
            }
            SExpr::Neg(a) | SExpr::Not(a) => self.check_expr(a),
            SExpr::If(c, t, e2) => {
                self.check_expr(c)?;
                self.check_expr(t)?;
                self.check_expr(e2)
            }
            SExpr::Tuple(xs) => {
                for x in xs {
                    self.check_expr(x)?;
                }
                Ok(())
            }
        }
    }

    /// Resolve a dotted path against the member structure.
    fn check_ref(&mut self, path: &RefPath) -> Result<(), LangError> {
        let first = &path.segs[0];
        // Loop indices are scalar, unindexed, and terminate the path.
        if self.loop_indices.contains(&first.name) {
            if path.segs.len() > 1 || !first.indices.is_empty() {
                return Err(LangError::scope(
                    Some(path.pos),
                    format!("loop index `{}` cannot be indexed or dotted", first.name),
                ));
            }
            return Ok(());
        }
        // Walk the path through the class structure.
        let mut current_class = self.class;
        for (i, seg) in path.segs.iter().enumerate() {
            let members = self.table.effective_members(current_class);
            let Some((member, _)) = members.iter().find(|(m, _)| m.name() == seg.name) else {
                return Err(LangError::scope(
                    Some(path.pos),
                    format!(
                        "`{}` is not a member of class `{}` (in reference `{}`)",
                        seg.name,
                        current_class.name,
                        path.display()
                    ),
                ));
            };
            let is_last = i + 1 == path.segs.len();
            match member {
                Member::Parameter { ty, .. } | Member::Variable { ty, .. } => {
                    if !is_last {
                        return Err(LangError::scope(
                            Some(path.pos),
                            format!(
                                "cannot select into scalar/vector `{}` in `{}`",
                                seg.name,
                                path.display()
                            ),
                        ));
                    }
                    if ty.is_scalar() && !seg.indices.is_empty() {
                        return Err(LangError::scope(
                            Some(path.pos),
                            format!("`{}` is scalar and cannot be indexed", seg.name),
                        ));
                    }
                    // Vector variables may be referenced whole (unindexed)
                    // or per component; index expressions are checked by
                    // the generic expression walk below.
                }
                Member::Part { class, count, .. } => {
                    if is_last {
                        return Err(LangError::scope(
                            Some(path.pos),
                            format!(
                                "reference `{}` names a part, not a variable",
                                path.display()
                            ),
                        ));
                    }
                    match (count, seg.indices.len()) {
                        (Some(_), 1) | (None, 0) => {}
                        (Some(_), 0) => {
                            return Err(LangError::scope(
                                Some(path.pos),
                                format!("instance array `{}` requires an index", seg.name),
                            ))
                        }
                        _ => {
                            return Err(LangError::scope(
                                Some(path.pos),
                                format!("scalar part `{}` cannot be indexed", seg.name),
                            ))
                        }
                    }
                    // Unknown part classes are reported by ClassTable::build.
                    if let Some(c) = self.table.get(class) {
                        current_class = c;
                    } else {
                        return Ok(());
                    }
                }
            }
            for idx in &seg.indices {
                self.check_expr(idx)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_unit;

    fn check_src(src: &str) -> Result<(), LangError> {
        check(&parse_unit(src).unwrap())
    }

    #[test]
    fn accepts_wellformed_unit() {
        check_src(
            "
            class Body;
              parameter Real m = 1.0;
              Real x; Real v;
              equation der(x) = v; der(v) = -x/m;
            end Body;
            model M;
              part Body b[3] (m = 2.0);
              Real s;
              equation
                for i in 1:3 loop
                  s = b[i].x;
                end for;
            end M;
            ",
        )
        .unwrap();
    }

    #[test]
    fn rejects_unknown_base_class() {
        let err = check_src("class A extends Nope; end A; model M; end M;").unwrap_err();
        assert!(err.message.contains("unknown base class"));
    }

    #[test]
    fn rejects_inheritance_cycle() {
        let err = check_src("class A extends B; end A; class B extends A; end B; model M; end M;")
            .unwrap_err();
        assert!(err.message.contains("cycle"));
    }

    #[test]
    fn rejects_composition_cycle() {
        let err = check_src("class A; part B b; end A; class B; part A a; end B; model M; end M;")
            .unwrap_err();
        assert!(err.message.contains("composition cycle"));
    }

    #[test]
    fn rejects_duplicate_member_across_inheritance() {
        let err = check_src(
            "
            class A; Real x; end A;
            class B extends A; Real x; end B;
            model M; part B b; end M;
            ",
        )
        .unwrap_err();
        assert!(err.message.contains("conflicts"));
    }

    #[test]
    fn rejects_unknown_member_reference() {
        let err = check_src("model M; Real x; equation der(x) = y; end M;").unwrap_err();
        assert!(err.message.contains("not a member"));
    }

    #[test]
    fn rejects_unknown_function_and_bad_arity() {
        let err = check_src("model M; Real x; equation der(x) = frob(x); end M;").unwrap_err();
        assert!(err.message.contains("unknown function"));
        let err = check_src("model M; Real x; equation der(x) = sin(x, x); end M;").unwrap_err();
        assert!(err.message.contains("argument"));
    }

    #[test]
    fn rejects_indexing_scalar_variable() {
        let err = check_src("model M; Real x; equation der(x) = x[1]; end M;").unwrap_err();
        assert!(err.message.contains("cannot be indexed"));
    }

    #[test]
    fn rejects_missing_index_on_instance_array() {
        let err = check_src(
            "
            class A; Real x; end A;
            model M; part A a[2]; Real s; equation s = a.x; end M;
            ",
        )
        .unwrap_err();
        assert!(err.message.contains("requires an index"));
    }

    #[test]
    fn rejects_binding_to_nonexistent_parameter() {
        let err = check_src(
            "
            class A; Real x; end A;
            model M; part A a (nope = 1.0); end M;
            ",
        )
        .unwrap_err();
        assert!(err.message.contains("binding target"));
    }

    #[test]
    fn rejects_part_reference_as_value() {
        let err = check_src(
            "
            class A; Real x; end A;
            model M; part A a; Real s; equation s = a; end M;
            ",
        )
        .unwrap_err();
        assert!(err.message.contains("names a part"));
    }

    #[test]
    fn loop_index_is_visible_inside_loop_only() {
        let err = check_src(
            "
            model M; Real s;
            equation
              for i in 1:2 loop s = i; end for;
              s = i;
            end M;
            ",
        )
        .unwrap_err();
        assert!(err.message.contains("not a member"));
    }

    #[test]
    fn rejects_empty_loop_range() {
        let err = check_src("model M; Real s; equation for i in 3:1 loop s = i; end for; end M;")
            .unwrap_err();
        assert!(err.message.contains("empty loop range"));
    }
}
