//! Diagnostics for the language frontend.

use std::fmt;

/// A position in the source text (1-based line and column).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct SourcePos {
    pub line: u32,
    pub col: u32,
}

impl SourcePos {
    pub fn new(line: u32, col: u32) -> SourcePos {
        SourcePos { line, col }
    }
}

impl fmt::Display for SourcePos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Any error produced while lexing, parsing, scope-checking, or flattening
/// an ObjectMath model.
#[derive(Clone, Debug, PartialEq)]
pub struct LangError {
    /// Which phase reported the error.
    pub phase: Phase,
    /// Position in the source, when known.
    pub pos: Option<SourcePos>,
    /// Human-readable message.
    pub message: String,
}

/// Frontend phases, for error attribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    Lex,
    Parse,
    Scope,
    Flatten,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Scope => "scope",
            Phase::Flatten => "flatten",
        };
        f.write_str(s)
    }
}

impl LangError {
    pub fn new(phase: Phase, pos: Option<SourcePos>, message: impl Into<String>) -> LangError {
        LangError {
            phase,
            pos,
            message: message.into(),
        }
    }

    pub fn lex(pos: SourcePos, message: impl Into<String>) -> LangError {
        Self::new(Phase::Lex, Some(pos), message)
    }

    pub fn parse(pos: SourcePos, message: impl Into<String>) -> LangError {
        Self::new(Phase::Parse, Some(pos), message)
    }

    pub fn scope(pos: Option<SourcePos>, message: impl Into<String>) -> LangError {
        Self::new(Phase::Scope, pos, message)
    }

    pub fn flatten(message: impl Into<String>) -> LangError {
        Self::new(Phase::Flatten, None, message)
    }

    /// A flatten-phase error carrying the source position it arose from.
    /// Prefer this over [`LangError::flatten`] wherever a position is in
    /// hand, so diagnostics on inherited equations point at the defining
    /// class line.
    pub fn flatten_at(pos: SourcePos, message: impl Into<String>) -> LangError {
        Self::new(Phase::Flatten, Some(pos), message)
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(p) => write!(f, "{} error at {}: {}", self.phase, p, self.message),
            None => write!(f, "{} error: {}", self.phase, self.message),
        }
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position_and_phase() {
        let e = LangError::parse(SourcePos::new(3, 14), "expected `;`");
        assert_eq!(e.to_string(), "parse error at 3:14: expected `;`");
        let e = LangError::flatten("bad model");
        assert_eq!(e.to_string(), "flatten error: bad model");
    }
}
