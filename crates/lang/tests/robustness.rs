//! Robustness property tests for the frontend: no input should ever
//! panic the lexer or parser — they must either succeed or return a
//! proper diagnostic.

use om_lang::parser::{parse_expr, parse_unit};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary ASCII input never panics the pipeline front door.
    #[test]
    fn arbitrary_ascii_never_panics(src in "[ -~\n]{0,200}") {
        let _ = parse_unit(&src);
        let _ = parse_expr(&src);
    }

    /// Token soup from the language's own vocabulary never panics and
    /// never loops forever.
    #[test]
    fn token_soup_never_panics(words in prop::collection::vec(
        prop::sample::select(vec![
            "model", "class", "extends", "end", "parameter", "Real",
            "part", "equation", "initial", "start", "der", "time", "if",
            "then", "else", "for", "in", "loop", "and", "or", "not",
            "x", "y", "foo", "1", "2.5", "1e-3",
            "(", ")", "[", "]", "{", "}", ",", ";", ":", ".",
            "=", "==", "+", "-", "*", "/", "^", "<", "<=", ">", ">=", "<>",
        ]),
        0..40,
    )) {
        let src = words.join(" ");
        let _ = parse_unit(&src);
    }

    /// Structured-but-randomized models parse, and parse errors (if any)
    /// carry positions.
    #[test]
    fn randomized_models_roundtrip(
        n_vars in 1usize..5,
        k in -10i32..10,
        use_vector in proptest::bool::ANY,
    ) {
        let mut src = String::from("model M;\n");
        for i in 0..n_vars {
            if use_vector && i == 0 {
                src.push_str("  Real[3] v0;\n");
            } else {
                src.push_str(&format!("  Real x{i}(start = {k}.0);\n"));
            }
        }
        src.push_str("equation\n");
        for i in 0..n_vars {
            if use_vector && i == 0 {
                src.push_str("  der(v0) = 0.0;\n");
            } else {
                src.push_str(&format!("  der(x{i}) = -x{i} + {k}.0;\n"));
            }
        }
        src.push_str("end M;\n");
        let unit = parse_unit(&src).expect("generated model parses");
        om_lang::scope::check(&unit).expect("scope-checks");
        let flat = om_lang::flatten(&unit).expect("flattens");
        prop_assert_eq!(
            flat.variables.len(),
            if use_vector { n_vars + 2 } else { n_vars }
        );
    }

    /// Every reported error position is within the source bounds.
    #[test]
    fn error_positions_are_in_bounds(src in "[ -~\n]{1,120}") {
        if let Err(e) = parse_unit(&src) {
            if let Some(pos) = e.pos {
                let line_count = src.lines().count().max(1) as u32;
                prop_assert!(pos.line >= 1 && pos.line <= line_count + 1,
                    "line {} of {line_count}", pos.line);
            }
        }
    }
}
