//! Quickstart: compile an ObjectMath model, extract parallelism, and
//! simulate it with a parallel RHS.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use objectmath::analysis::{build_dependency_graph, partition_by_scc};
use objectmath::codegen::CodeGenerator;
use objectmath::ir::causalize;
use objectmath::runtime::{ParallelRhs, WorkerPool};
use objectmath::solver::{dopri5, Tolerances};

fn main() {
    // 1. An object-oriented mathematical model: a damped oscillator
    //    written as acausal equations (note `m*der(v)` on the left).
    let source = "
        class Body;
          parameter Real m = 2.0;
          parameter Real k = 8.0;
          parameter Real c = 0.4;
          Real x(start = 1.0);
          Real v(start = 0.0);
          Real f;
          equation
            der(x) = v;
            m * der(v) = f;
            f + k*x + c*v = 0.0;
        end Body;

        model QuickStart;
          part Body body;
        end QuickStart;
    ";

    // 2. Frontend: parse → scope-check → flatten → causalize.
    let flat = objectmath::lang::compile(source).expect("model compiles");
    println!(
        "flattened: {} variables, {} equations",
        flat.variables.len(),
        flat.equations.len()
    );
    let ir = causalize(&flat).expect("model causalizes");
    println!(
        "internal form: {} states, {} algebraic assignments",
        ir.dim(),
        ir.algebraics.len()
    );

    // 3. Dependency analysis (the paper's equation-system level).
    let dep = build_dependency_graph(&ir);
    let part = partition_by_scc(&dep);
    println!("strongly connected components: {:?}", part.scc_sizes());

    // 4. Code generation: equation-level tasks, CSE, LPT schedule.
    let program = CodeGenerator::default().generate(&ir);
    let workers = 2;
    let schedule = program.schedule(workers);
    println!(
        "tasks: {}, makespan estimate: {} flops on {workers} workers (imbalance {:.3})",
        program.graph.tasks.len(),
        schedule.makespan,
        schedule.imbalance()
    );

    // 5. Run: the ODE solver (supervisor) drives the parallel RHS.
    let pool = WorkerPool::new(program.graph, workers, schedule.assignment);
    let mut rhs = ParallelRhs::new(pool, 16);
    let sol = dopri5(
        &mut rhs,
        0.0,
        &ir.initial_state(),
        10.0,
        &Tolerances::default(),
    )
    .expect("integration succeeds");
    println!(
        "integrated to t = {} in {} steps ({} RHS calls)",
        sol.t_end(),
        sol.stats.steps,
        sol.stats.rhs_calls
    );
    println!(
        "final state: x = {:+.6}, v = {:+.6}",
        sol.y_end()[0],
        sol.y_end()[1]
    );

    // Damped oscillation: analytic check for the curious.
    let (m, k, c) = (2.0, 8.0, 0.4);
    let wn = f64::sqrt(k / m);
    let zeta = c / (2.0 * f64::sqrt(k * m));
    let wd = wn * f64::sqrt(1.0 - zeta * zeta);
    let t = sol.t_end();
    let env = (-zeta * wn * t).exp();
    let x_exact = env * ((wd * t).cos() + zeta * wn / wd * (wd * t).sin());
    println!("analytic solution: x = {x_exact:+.6}");
}
