//! A tour of the code generator on the Figure 11 example: normal form,
//! type-annotated prefix intermediate code, generated parallel Fortran 90
//! and C++, and the compiled bytecode.
//!
//! ```text
//! cargo run --release --example codegen_tour
//! ```

use objectmath::codegen::{emit_cpp, emit_fortran, CodeGenerator, GenOptions};
use objectmath::expr::print::normal_form;
use objectmath::expr::{full_form_typed, Expr};
use objectmath::models::oscillator;

fn main() {
    let sys = oscillator::ir();
    // No task merging: Figure 11 shows one equation per worker.
    let generator = CodeGenerator::new(GenOptions {
        merge_threshold: 0,
        ..GenOptions::default()
    });

    println!("== Normal form (paper Figure 11, top panel) ==");
    let time_vars: std::collections::BTreeSet<_> = sys.states.iter().map(|s| s.sym).collect();
    print!("{{ {{ ");
    for (k, d) in sys.derivs.iter().enumerate() {
        if k > 0 {
            print!(", ");
        }
        print!(
            "{} == {}",
            normal_form(&Expr::Der(d.state), &time_vars),
            normal_form(&d.rhs, &time_vars)
        );
    }
    println!(" }}, {{ t, tstart, tend }} }}");

    println!("\n== Type-annotated prefix form (middle panel) ==");
    println!("{}", generator.intermediate_code(&sys));

    let program = generator.generate(&sys);
    let sched = program.schedule(2);

    println!("== Generated parallel Fortran 90 (bottom panel) ==");
    let f90 = emit_fortran::emit_parallel(
        &program.tasks,
        &sched.assignment,
        2,
        &sys,
        &generator.options.cost_model,
    );
    println!("{}", f90.text);

    println!("== Generated parallel C++ ==");
    let cpp = emit_cpp::emit_parallel(
        &program.tasks,
        &sched.assignment,
        2,
        &sys,
        &generator.options.cost_model,
    );
    println!("{}", cpp.text);

    println!("== Compiled task bytecode ==");
    for task in &program.graph.tasks {
        println!(
            "task `{}` (cost {} flops, reads states {:?}):",
            task.label, task.static_cost, task.reads_states
        );
        for instr in &task.program.instrs {
            println!("    {instr:?}");
        }
    }

    println!("\n== Full-form of a derivative marker, typed ==");
    println!("{}", full_form_typed(&Expr::Der(sys.states[0].sym)));
}
