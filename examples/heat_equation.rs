//! PDE extension demo (paper §6): a 1D advection–diffusion equation,
//! discretized by the method of lines *in the modeling language*, run
//! through the parallel pipeline.
//!
//! ```text
//! cargo run --release --example heat_equation [cells] [workers]
//! ```

use objectmath::codegen::{CodeGenerator, GenOptions};
use objectmath::models::heat1d::{self, HeatConfig};
use objectmath::runtime::{ParallelRhs, WorkerPool};
use objectmath::solver::{dopri5, Tolerances};

fn main() {
    let mut args = std::env::args().skip(1);
    let cells: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(96);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    let cfg = HeatConfig {
        cells,
        alpha: 1.0,
        ..HeatConfig::default()
    };
    println!("== 1D heat equation, {cells} cells (method of lines) ==");
    let sys = heat1d::ir(&cfg);
    println!(
        "ODE system: {} equations, all derivable in parallel",
        sys.dim()
    );

    let generator = CodeGenerator::new(GenOptions {
        merge_threshold: 24,
        ..GenOptions::default()
    });
    let program = generator.generate(&sys);
    let schedule = program.schedule(workers);
    println!(
        "tasks: {} on {workers} workers, LPT imbalance {:.3}",
        program.graph.tasks.len(),
        schedule.imbalance()
    );

    let pool = WorkerPool::new(program.graph, workers, schedule.assignment);
    let mut rhs = ParallelRhs::new(pool, 32);
    let t_end = 0.05;
    let tol = Tolerances {
        rtol: 1e-8,
        atol: 1e-11,
        ..Tolerances::default()
    };
    let sol =
        dopri5(&mut rhs, 0.0, &sys.initial_state(), t_end, &tol).expect("integration succeeds");
    println!(
        "integrated to t = {t_end} in {} steps ({} RHS calls)",
        sol.stats.steps, sol.stats.rhs_calls
    );

    // The sin(πx) initial profile is the first eigenmode: it decays at
    // the known discrete rate, so the PDE solve has an exact answer.
    let lambda = cfg.discrete_eigenvalue(1);
    let decay = (-lambda * t_end).exp();
    let mid = sys
        .find_state(&format!("u[{}]", cells.div_ceil(2)))
        .expect("state");
    println!(
        "peak temperature: computed {:.8}, analytic {:.8} (λ₁ = {lambda:.3})",
        sol.y_end()[mid],
        sys.initial_state()[mid] * decay
    );

    // A low-resolution rendering of the final temperature profile.
    println!("\nfinal profile:");
    let samples = 24usize;
    for row in 0..8 {
        let threshold = 1.0 - row as f64 / 8.0;
        let mut line = String::new();
        for s in 0..samples {
            let cell = 1 + s * (cells - 1) / (samples - 1);
            let idx = sys.find_state(&format!("u[{cell}]")).expect("state");
            line.push(if sol.y_end()[idx] >= threshold * decay {
                '#'
            } else {
                ' '
            });
        }
        println!("  |{line}|");
    }
    println!("  +{}+", "-".repeat(samples));
}
