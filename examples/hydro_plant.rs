//! Equation-system-level parallelism on the hydroelectric power plant
//! (paper Figure 3): SCC partitioning, pipeline schedule, DOT export,
//! and a partitioned co-simulation with independent step sizes.
//!
//! ```text
//! cargo run --release --example hydro_plant [--dot]
//! ```

use objectmath::analysis::{build_dependency_graph, partition_by_scc, to_dot};
use objectmath::models::hydro;
use objectmath::solver::partitioned::CoMethod;
use objectmath::solver::{CoSimulation, Coupling, SubsystemSpec, Tolerances};

fn main() {
    let want_dot = std::env::args().any(|a| a == "--dot");
    let sys = hydro::ir();
    println!("== Hydroelectric power plant ==");
    println!(
        "{} states, {} algebraic equations",
        sys.dim(),
        sys.algebraics.len()
    );

    let dep = build_dependency_graph(&sys);
    let part = partition_by_scc(&dep);
    println!("SCC sizes (largest first): {:?}", part.scc_sizes());
    println!("pipeline levels:");
    for (lvl, subs) in part.levels.iter().enumerate() {
        let labels: Vec<String> = subs
            .iter()
            .map(|&s| {
                let sub = &part.subsystems[s];
                format!(
                    "[{} eqs: {}…]",
                    sub.states.len() + sub.algebraics.len(),
                    sub.states
                        .first()
                        .or(sub.algebraics.first())
                        .map(|x| x.name())
                        .unwrap_or("?")
                )
            })
            .collect();
        println!("  level {lvl}: {}", labels.join(" "));
    }

    if want_dot {
        println!("\n--- dependency graph (Graphviz) ---");
        println!("{}", to_dot(&dep, "HydroPlant"));
        return;
    }

    // Build a two-subsystem co-simulation by hand: the actuator chain
    // (upstream, slow) and everything else (the main SCC + integrators),
    // demonstrating the independent-step-size benefit of §2.3.
    let full = objectmath::ir::IrEvaluator::new(&sys).expect("verified IR");
    let servo_states: Vec<usize> = (1..=hydro::N_ANGLE_SECTIONS)
        .map(|k| sys.find_state(&format!("servo.a[{k}]")).expect("state"))
        .collect();
    let other_states: Vec<usize> = (0..sys.dim())
        .filter(|i| !servo_states.contains(i))
        .collect();
    let y0 = sys.initial_state();

    // Subsystem 0: the actuator chain (self-contained).
    let servo_idx = servo_states.clone();
    let dim_full = sys.dim();
    let servo_rhs = {
        let evalr = objectmath::ir::IrEvaluator::new(&sys).expect("verified IR");
        let servo_idx = servo_idx.clone();
        let y_template = y0.clone();
        move |t: f64, y: &[f64], _u: &[f64], d: &mut [f64]| {
            let mut full_y = y_template.clone();
            for (slot, &i) in servo_idx.iter().enumerate() {
                full_y[i] = y[slot];
            }
            let mut full_d = vec![0.0; dim_full];
            evalr.rhs(t, &full_y, &mut full_d);
            for (slot, &i) in servo_idx.iter().enumerate() {
                d[slot] = full_d[i];
            }
        }
    };

    // Subsystem 1: the rest, reading the 5 servo angles as inputs.
    let other_idx = other_states.clone();
    let plant_rhs = {
        let evalr = objectmath::ir::IrEvaluator::new(&sys).expect("verified IR");
        let other_idx = other_idx.clone();
        let servo_idx = servo_idx.clone();
        let y_template = y0.clone();
        move |t: f64, y: &[f64], u: &[f64], d: &mut [f64]| {
            let mut full_y = y_template.clone();
            for (slot, &i) in other_idx.iter().enumerate() {
                full_y[i] = y[slot];
            }
            for (slot, &i) in servo_idx.iter().enumerate() {
                full_y[i] = u[slot];
            }
            let mut full_d = vec![0.0; dim_full];
            evalr.rhs(t, &full_y, &mut full_d);
            for (slot, &i) in other_idx.iter().enumerate() {
                d[slot] = full_d[i];
            }
        }
    };

    let mut cosim = CoSimulation {
        subsystems: vec![
            SubsystemSpec {
                name: "actuators".into(),
                dim: servo_states.len(),
                n_inputs: 0,
                rhs: Box::new(servo_rhs),
                y0: servo_states.iter().map(|&i| y0[i]).collect(),
            },
            SubsystemSpec {
                name: "plant".into(),
                dim: other_states.len(),
                n_inputs: servo_states.len(),
                rhs: Box::new(plant_rhs),
                y0: other_states.iter().map(|&i| y0[i]).collect(),
            },
        ],
        couplings: (0..servo_states.len())
            .map(|k| Coupling {
                dst_sub: 1,
                dst_input: k,
                src_sub: 0,
                src_state: k,
            })
            .collect(),
    };
    let result = cosim
        .solve(0.0, 200.0, 40, CoMethod::Dopri5(Tolerances::default()))
        .expect("co-simulation succeeds");
    println!("\n--- partitioned co-simulation (200 s, 40 macro steps) ---");
    for (k, spec) in ["actuators", "plant"].iter().enumerate() {
        println!(
            "  {spec:10} mean step {:.4} s, {} RHS calls",
            result.mean_steps[k], result.stats[k].rhs_calls
        );
    }
    let level_slot = other_states
        .iter()
        .position(|&i| i == sys.find_state("level").expect("state"))
        .expect("level in plant subsystem");
    println!(
        "  dam level after 200 s: {:.3} m (set point 10.0)",
        result.finals[1][level_slot]
    );

    // Sequential full-system solve for reference.
    let mut mono =
        objectmath::solver::FnSystem::new(sys.dim(), move |t, y: &[f64], d: &mut [f64]| {
            full.rhs(t, y, d);
        });
    let sol = objectmath::solver::dopri5(&mut mono, 0.0, &y0, 200.0, &Tolerances::default())
        .expect("monolithic solve");
    let level_idx = sys.find_state("level").expect("state");
    println!(
        "  monolithic reference level: {:.3} m ({} RHS calls)",
        sol.y_end()[level_idx],
        sol.stats.rhs_calls
    );
}
