//! The paper's flagship workload: parallel simulation of the 2D rolling
//! bearing (Figures 4–6), comparing serial and parallel RHS evaluation
//! and printing the dependency structure the analysis finds.
//!
//! ```text
//! cargo run --release --example bearing_simulation [rollers] [workers]
//! ```

use objectmath::analysis::{build_dependency_graph, partition_by_scc};
use objectmath::codegen::{CodeGenerator, GenOptions};
use objectmath::models::bearing2d::{self, BearingConfig};
use objectmath::runtime::{ParallelRhs, WorkerPool};
use objectmath::solver::{dopri5, FnSystem, OdeSystem, Tolerances};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let rollers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    let cfg = BearingConfig {
        rollers,
        waviness: 4,
        ..BearingConfig::default()
    };
    println!("== 2D rolling bearing, {rollers} rollers, {workers} workers ==");
    let sys = bearing2d::ir(&cfg);
    println!(
        "model: {} states, {} algebraic equations",
        sys.dim(),
        sys.algebraics.len()
    );

    // Equation-system-level analysis: the bearing famously does NOT
    // partition (one giant SCC plus the revolutions counter).
    let dep = build_dependency_graph(&sys);
    let part = partition_by_scc(&dep);
    println!(
        "SCC sizes: {:?}  (paper: all equations but one in one SCC)",
        part.scc_sizes()
    );

    // Equation-level parallel code.
    let generator = CodeGenerator::new(GenOptions {
        merge_threshold: 32,
        ..GenOptions::default()
    });
    let program = generator.generate(&sys);
    let schedule = program.schedule(workers);
    println!(
        "tasks: {} (total {} flops), LPT imbalance {:.3}",
        program.graph.tasks.len(),
        program.graph.total_cost(),
        schedule.imbalance()
    );

    let tol = Tolerances {
        rtol: 1e-6,
        atol: 1e-10,
        max_steps: 5_000_000,
        ..Tolerances::default()
    };
    let t_end = 2e-3;
    let y0 = sys.initial_state();

    // Serial baseline.
    let reference = objectmath::ir::IrEvaluator::new(&sys).expect("verified IR");
    let mut serial = FnSystem::new(sys.dim(), move |t, y: &[f64], d: &mut [f64]| {
        reference.rhs(t, y, d);
    });
    let start = Instant::now();
    let serial_sol = dopri5(&mut serial, 0.0, &y0, t_end, &tol).expect("serial solve");
    let serial_time = start.elapsed();
    println!(
        "serial:   {} RHS calls in {serial_time:?}",
        serial_sol.stats.rhs_calls
    );

    // Parallel run through the worker pool.
    let pool = WorkerPool::new(program.graph, workers, schedule.assignment);
    let mut rhs = ParallelRhs::new(pool, 32);
    let start = Instant::now();
    let par_sol = dopri5(&mut rhs, 0.0, &y0, t_end, &tol).expect("parallel solve");
    let par_time = start.elapsed();
    println!(
        "parallel: {} RHS calls in {par_time:?} ({:.0} RHS calls/s)",
        par_sol.stats.rhs_calls,
        rhs.rhs_calls_per_sec()
    );
    println!(
        "scheduler overhead: {:.4}% ({} reschedules)",
        100.0 * rhs.scheduler.overhead_fraction(par_time),
        rhs.scheduler.reschedules
    );

    // Agreement between serial and parallel trajectories.
    let y_idx = sys.find_state("y").expect("state exists");
    let wi_idx = sys.find_state("wi").expect("state exists");
    println!(
        "final ring drop: serial {:.3e} m, parallel {:.3e} m",
        serial_sol.y_end()[y_idx],
        par_sol.y_end()[y_idx]
    );
    println!(
        "final shaft speed: serial {:.3} rad/s, parallel {:.3} rad/s",
        serial_sol.y_end()[wi_idx],
        par_sol.y_end()[wi_idx]
    );
    let max_diff = serial_sol
        .y_end()
        .iter()
        .zip(par_sol.y_end())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |serial − parallel| = {max_diff:.3e}");

    // A taste of the RHS throughput measurement behind Figure 12.
    let mut dydt = vec![0.0; rhs.dim()];
    let start = Instant::now();
    let calls = 2000;
    for k in 0..calls {
        rhs.rhs(k as f64 * 1e-6, &y0, &mut dydt);
    }
    let dt = start.elapsed();
    println!(
        "steady-state throughput: {:.0} RHS calls/s on {workers} host workers",
        calls as f64 / dt.as_secs_f64()
    );
}
