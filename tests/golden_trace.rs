//! Golden trace test: a fixed 2-worker pipeline run produces a stable,
//! schema-valid chrome-trace event sequence.
//!
//! Timestamps and thread ids are nondeterministic, so the snapshot holds
//! the *normalized* structure: per-thread `(phase, name)` sequences with
//! worker threads identified by their deterministic `om-worker-N.E`
//! names. Timestamp monotonicity and `B`/`E` nesting are checked
//! structurally by `validate_chrome_json`, which fails on any trace whose
//! spans are unbalanced or whose clock runs backwards within a thread.
//!
//! Regenerate the snapshot after an intentional instrumentation change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_trace
//! ```

use objectmath::codegen::CodeGenerator;
use objectmath::ir::causalize;
use objectmath::runtime::WorkerPool;

const GOLDEN_PATH: &str = "tests/golden/trace_2worker.txt";

/// Map a raw thread name onto a stable track label.
fn track_label(name: &str) -> String {
    if let Some(rest) = name.strip_prefix("om-worker-") {
        // "om-worker-1.0" -> "worker-1" (the epoch is a respawn counter;
        // this run has no faults, but strip it anyway for robustness).
        let id = rest.split('.').next().unwrap_or(rest);
        format!("worker-{id}")
    } else {
        // The test thread driving the pool (its name varies by harness).
        "supervisor".to_owned()
    }
}

#[test]
fn two_worker_pipeline_trace_matches_golden() {
    let source = std::fs::read_to_string("examples/oscillator.om").expect("example model");
    let flat = objectmath::lang::compile(&source).expect("compile");
    let ir = causalize(&flat).expect("causalize");

    // Enable recording BEFORE building the pool (metric handles and the
    // worker busy-ns counters are resolved at construction/spawn time).
    om_obs::init(&om_obs::ObsConfig::enabled());

    let program = CodeGenerator::default().generate(&ir);
    let sched = program.schedule(2);
    let pool_result = {
        let mut pool = WorkerPool::new(program.graph, 2, sched.assignment);
        let y0 = ir.initial_state();
        let mut dydt = vec![0.0; y0.len()];
        for k in 0..3 {
            pool.try_rhs(k as f64 * 0.1, &y0, &mut dydt)
                .expect("pool rhs");
        }
        dydt
    };
    assert!(pool_result.iter().all(|v| v.is_finite()));
    // The pool (and its worker threads) is dropped here, so every worker
    // has flushed its span buffer into the global sink.

    om_obs::flush_thread();
    let trace = om_obs::collect();
    let json = om_obs::chrome::to_chrome_json(&trace);
    om_obs::init(&om_obs::ObsConfig::disabled());

    // Structural validity: required fields, LIFO B/E nesting per thread,
    // monotonic per-thread timestamps, no unclosed spans.
    let check = om_obs::chrome::validate_chrome_json(&json).expect("schema-valid chrome trace");
    assert!(check.events > 0, "trace is empty");

    // Normalize: per-track event sequences keyed by stable labels.
    let mut normalized = String::new();
    let mut tracks: Vec<(String, &om_obs::chrome::TrackCheck)> = check
        .tracks
        .values()
        .map(|t| (track_label(t.name.as_deref().unwrap_or("?")), t))
        .collect();
    tracks.sort_by(|a, b| a.0.cmp(&b.0));
    for (label, track) in &tracks {
        normalized.push_str(&format!("== {label} (max depth {}) ==\n", track.max_depth));
        for (ph, name) in &track.sequence {
            normalized.push_str(&format!("{ph} {name}\n"));
        }
    }

    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all("tests/golden").expect("mkdir");
        std::fs::write(GOLDEN_PATH, &normalized).expect("write golden");
        eprintln!("golden snapshot regenerated at {GOLDEN_PATH}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .unwrap_or_else(|e| panic!("missing {GOLDEN_PATH} ({e}); run with UPDATE_GOLDEN=1"));
    assert_eq!(
        normalized, golden,
        "trace structure changed; if intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test --test golden_trace"
    );
}
