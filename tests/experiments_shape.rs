//! Integration tests asserting the *shape* of the paper's experimental
//! results (who wins, where crossovers fall) on the actual models — the
//! same claims EXPERIMENTS.md quantifies with the bench harness.

use objectmath::analysis::{build_dependency_graph, partition_by_scc};
use objectmath::codegen::comm::MessagePolicy;
use objectmath::codegen::{lpt, CodeGenerator, GenOptions};
use objectmath::models::bearing2d::{self, BearingConfig};
use objectmath::models::hydro;
use objectmath::runtime::sim::{simulate_rhs_time, simulate_serial_time};
use objectmath::runtime::MachineSpec;

fn bearing_graph(cfg: &BearingConfig) -> objectmath::codegen::TaskGraph {
    let ir = bearing2d::ir(cfg);
    CodeGenerator::new(GenOptions {
        merge_threshold: 32,
        ..GenOptions::default()
    })
    .generate(&ir)
    .graph
}

fn speedup(g: &objectmath::codegen::TaskGraph, w: usize, m: &MachineSpec) -> f64 {
    let costs: Vec<u64> = g.tasks.iter().map(|t| t.static_cost).collect();
    let sched = lpt(&costs, w);
    let sim = simulate_rhs_time(g, &sched.assignment, w, m, MessagePolicy::WholeState);
    simulate_serial_time(g, m) / sim.total
}

/// Figure 12 shape: the SPARCcenter (4 µs) scales to more processors
/// than the Parsytec (140 µs); the Parsytec peaks early.
#[test]
fn figure12_shape_on_the_bearing_model() {
    let g = bearing_graph(&BearingConfig {
        waviness: 4,
        ..BearingConfig::default()
    });
    let sparc = MachineSpec::sparc_center_2000();
    let parsytec = MachineSpec::parsytec_gcpp();

    let sparc_curve: Vec<f64> = (1..=16).map(|w| speedup(&g, w, &sparc)).collect();
    let parsytec_curve: Vec<f64> = (1..=16).map(|w| speedup(&g, w, &parsytec)).collect();

    let argmax = |v: &[f64]| {
        v.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i + 1)
            .expect("nonempty")
    };
    let peak_parsytec = argmax(&parsytec_curve);
    let peak_sparc = argmax(&sparc_curve);

    // The distributed-memory machine peaks at a small worker count…
    assert!(
        (2..=8).contains(&peak_parsytec),
        "parsytec peak at {peak_parsytec}: {parsytec_curve:?}"
    );
    // …while the shared-memory machine keeps scaling past it.
    assert!(
        peak_sparc > peak_parsytec,
        "sparc {peak_sparc} vs parsytec {peak_parsytec}"
    );
    // At the parsytec peak, the SPARC achieves a higher speedup.
    assert!(sparc_curve[peak_parsytec - 1] > parsytec_curve[peak_parsytec - 1]);
    // And adding processors beyond the parsytec peak hurts it.
    assert!(parsytec_curve[15] < parsytec_curve[peak_parsytec - 1]);
}

/// §4: "the performance is better if we have a larger problem" — more
/// rollers and heavier right-hand sides push the achievable speedup up.
#[test]
fn granularity_extends_scalability() {
    let small = bearing_graph(&BearingConfig {
        rollers: 6,
        waviness: 0,
        ..BearingConfig::default()
    });
    let large = bearing_graph(&BearingConfig {
        rollers: 16,
        waviness: 12,
        ..BearingConfig::default()
    });
    let parsytec = MachineSpec::parsytec_gcpp();
    let best = |g: &objectmath::codegen::TaskGraph| {
        (1..=16)
            .map(|w| speedup(g, w, &parsytec))
            .fold(0.0f64, f64::max)
    };
    let best_small = best(&small);
    let best_large = best(&large);
    assert!(
        best_large > 1.5 * best_small,
        "small {best_small} large {best_large}"
    );
}

/// §2.5.1: the bearing does not partition at the equation-system level
/// (2 SCCs, all work in one), while the hydro plant does (main SCC +
/// actuator SCC + singletons over ≥2 pipeline levels).
#[test]
fn equation_system_level_is_application_dependent() {
    let bearing = bearing2d::ir(&BearingConfig::default());
    let part = partition_by_scc(&build_dependency_graph(&bearing));
    assert_eq!(part.scc_sizes().len(), 2);
    // The revolutions counter hangs *downstream* of the big SCC, so the
    // partition is a trivial 2-stage pipeline with no width at all.
    assert_eq!(part.max_parallel_width(), 1);
    assert_eq!(part.levels.len(), 2);

    let plant = hydro::ir();
    let part = partition_by_scc(&build_dependency_graph(&plant));
    assert!(part.scc_sizes().len() >= 5);
    assert!(part.levels.len() >= 2);
    assert!(part.max_parallel_width() >= 3);
}

/// §3.3: per-task CSE (parallel) produces more extracted subexpressions
/// in more lines than global CSE (serial) on the bearing model.
#[test]
fn codegen_statistics_directionality() {
    let ir = bearing2d::ir(&BearingConfig::default());
    let generator = CodeGenerator::default();
    let stats = generator.stats(&ir, 8);
    assert!(
        stats.parallel_f90.total_lines > stats.serial_f90.total_lines,
        "parallel {} vs serial {}",
        stats.parallel_f90.total_lines,
        stats.serial_f90.total_lines
    );
    assert!(
        stats.serial_f90.cse_count > 0,
        "global CSE found nothing to share"
    );
    // Declarations are a large fraction of the generated code, as in the
    // paper (4 709 of 10 913 lines).
    let decl_fraction =
        stats.parallel_f90.decl_lines as f64 / stats.parallel_f90.total_lines as f64;
    assert!(decl_fraction > 0.15, "declaration fraction {decl_fraction}");
    // The intermediate form is much larger than the source, which is
    // larger than nothing — sanity of the reported pipeline expansion.
    assert!(stats.intermediate_lines > 100);
}

/// The future-work message composition (§3.2.3) cannot be worse than
/// whole-state broadcast on any machine.
#[test]
fn composed_messages_never_lose() {
    let g = bearing_graph(&BearingConfig::default());
    let costs: Vec<u64> = g.tasks.iter().map(|t| t.static_cost).collect();
    for machine in [
        MachineSpec::sparc_center_2000(),
        MachineSpec::parsytec_gcpp(),
    ] {
        for w in [2, 4, 8] {
            let sched = lpt(&costs, w);
            let whole = simulate_rhs_time(
                &g,
                &sched.assignment,
                w,
                &machine,
                MessagePolicy::WholeState,
            );
            let composed =
                simulate_rhs_time(&g, &sched.assignment, w, &machine, MessagePolicy::Composed);
            assert!(
                composed.total <= whole.total + 1e-12,
                "{} w={w}: composed {} > whole {}",
                machine.name,
                composed.total,
                whole.total
            );
        }
    }
}
