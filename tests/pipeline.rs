//! End-to-end integration tests: ObjectMath source → frontend → internal
//! form → code generation → parallel execution → numerical solution,
//! validated against closed-form mathematics.

use objectmath::codegen::{CodeGenerator, CseMode, GenOptions};
use objectmath::ir::causalize;
use objectmath::runtime::{ParallelRhs, WorkerPool};
use objectmath::solver::{dopri5, rk4, Tolerances};

fn pipeline(source: &str, options: GenOptions, workers: usize) -> ParallelRhs {
    let flat = objectmath::lang::compile(source).expect("compiles");
    let ir = causalize(&flat).expect("causalizes");
    objectmath::ir::verify_compilable(&ir).expect("verifies");
    let program = CodeGenerator::new(options).generate(&ir);
    let schedule = program.schedule(workers);
    ParallelRhs::new(
        WorkerPool::new(program.graph, workers, schedule.assignment),
        16,
    )
}

#[test]
fn exponential_decay_through_full_pipeline() {
    let mut rhs = pipeline(
        "model Decay; parameter Real k = 0.7; Real x(start = 2.0);
         equation der(x) = -k*x; end Decay;",
        GenOptions::default(),
        2,
    );
    let sol = rk4(&mut rhs, 0.0, &[2.0], 3.0, 1e-3).unwrap();
    let exact = 2.0 * (-0.7f64 * 3.0).exp();
    assert!((sol.y_end()[0] - exact).abs() < 1e-9);
}

#[test]
fn coupled_oscillator_with_inheritance_and_parts() {
    // Two coupled mass-springs built with inheritance; the analytic
    // normal-mode frequencies are √(k/m) and √(3k/m).
    let source = "
        class Mass;
          parameter Real m = 1.0;
          parameter Real k = 1.0;
          Real x;
          Real v;
          Real f;
          equation
            der(x) = v;
            m*der(v) = f;
        end Mass;
        model TwoMass;
          part Mass a (x = 1.0);
          part Mass b (x = 1.0);
          equation
            a.f = -a.x - (a.x - b.x);
            b.f = -b.x - (b.x - a.x);
        end TwoMass;
    ";
    // Symmetric start (1, 1): pure mode 1, x(t) = cos(t).
    let mut rhs = pipeline(source, GenOptions::default(), 3);
    let t_end = 2.0 * std::f64::consts::PI;
    let tol = Tolerances {
        rtol: 1e-9,
        atol: 1e-12,
        ..Tolerances::default()
    };
    let flat = objectmath::lang::compile(source).unwrap();
    let ir = causalize(&flat).unwrap();
    let sol = dopri5(&mut rhs, 0.0, &ir.initial_state(), t_end, &tol).unwrap();
    let a_x = ir.find_state("a.x").unwrap();
    let b_x = ir.find_state("b.x").unwrap();
    assert!((sol.y_end()[a_x] - 1.0).abs() < 1e-6, "{:?}", sol.y_end());
    assert!((sol.y_end()[b_x] - 1.0).abs() < 1e-6);
}

#[test]
fn every_generator_option_combination_agrees_with_reference() {
    let source = "
        class Contact;
          parameter Real k = 100.0;
          Real x(start = 0.5);
          Real v(start = -1.0);
          Real f;
          equation
            der(x) = v;
            der(v) = f - 9.81;
            f = if x < 0.0 then -k*x - 2.0*v else 0.0;
        end Contact;
        model Bouncer;
          part Contact c1;
          part Contact c2 (x = 0.8, v = 0.3);
          Real coupling;
          equation
            coupling = 0.1*(c2.x - c1.x) + exp(sin(c1.x)*0.2);
        end Bouncer;
    ";
    let flat = objectmath::lang::compile(source).unwrap();
    let ir = causalize(&flat).unwrap();
    let reference = objectmath::ir::IrEvaluator::new(&ir).unwrap();
    let y0 = ir.initial_state();
    let mut expect = vec![0.0; ir.dim()];
    reference.rhs(0.25, &y0, &mut expect);

    for cse in [CseMode::Off, CseMode::PerTask, CseMode::Global] {
        for inline in [true, false] {
            for workers in [1, 2, 4] {
                let mut rhs = pipeline(
                    source,
                    GenOptions {
                        cse,
                        inline_algebraics: inline,
                        ..GenOptions::default()
                    },
                    workers,
                );
                use objectmath::solver::OdeSystem;
                let mut got = vec![0.0; ir.dim()];
                rhs.rhs(0.25, &y0, &mut got);
                for i in 0..ir.dim() {
                    assert!(
                        (expect[i] - got[i]).abs() < 1e-12,
                        "cse={cse:?} inline={inline} workers={workers} slot={i}"
                    );
                }
            }
        }
    }
}

#[test]
fn runtime_settable_start_values_change_the_trajectory() {
    // "It is essential that the start values for the simulation can be
    // changed without re-compilation" (§3.2).
    let source = "model M; Real x(start = 1.0);
                  equation der(x) = -x; end M;";
    let flat = objectmath::lang::compile(source).unwrap();
    let mut ir = causalize(&flat).unwrap();
    assert!(ir.set_start("x", 5.0));
    let program = CodeGenerator::default().generate(&ir);
    let schedule = program.schedule(1);
    let mut rhs = ParallelRhs::new(WorkerPool::new(program.graph, 1, schedule.assignment), 0);
    let sol = rk4(&mut rhs, 0.0, &ir.initial_state(), 1.0, 1e-3).unwrap();
    assert!((sol.y_end()[0] - 5.0 * (-1.0f64).exp()).abs() < 1e-8);
}

#[test]
fn all_paper_models_run_through_the_parallel_pipeline() {
    use objectmath::models::{bearing2d, hydro, oscillator, servo};
    use objectmath::solver::OdeSystem;
    let sources = vec![
        oscillator::source(),
        servo::source(),
        hydro::source(),
        bearing2d::source(&bearing2d::BearingConfig {
            rollers: 6,
            ..bearing2d::BearingConfig::default()
        }),
    ];
    for source in sources {
        let flat = objectmath::lang::compile(&source).expect("compiles");
        let ir = causalize(&flat).expect("causalizes");
        objectmath::ir::verify_compilable(&ir).expect("verifies");
        let reference = objectmath::ir::IrEvaluator::new(&ir).unwrap();
        let program = CodeGenerator::default().generate(&ir);
        let schedule = program.schedule(3);
        let mut rhs = ParallelRhs::new(WorkerPool::new(program.graph, 3, schedule.assignment), 8);
        let y0 = ir.initial_state();
        let mut expect = vec![0.0; ir.dim()];
        let mut got = vec![0.0; ir.dim()];
        reference.rhs(0.0, &y0, &mut expect);
        rhs.rhs(0.0, &y0, &mut got);
        for i in 0..ir.dim() {
            assert!(
                (expect[i] - got[i]).abs() < 1e-10 * (1.0 + expect[i].abs()),
                "model {} slot {i}: {} vs {}",
                ir.name,
                expect[i],
                got[i]
            );
        }
    }
}

#[test]
fn stiff_model_solved_by_lsoda_switcher_through_pipeline() {
    let source = "
        model Stiff;
          parameter Real lambda = 900.0;
          Real x(start = 0.0);
          Real slow(start = 1.0);
          equation
            der(x) = -lambda*(x - cos(time));
            der(slow) = -0.1*slow;
        end Stiff;
    ";
    let mut rhs = pipeline(source, GenOptions::default(), 2);
    let opts = objectmath::solver::LsodaOptions::default();
    let sol = objectmath::solver::lsoda(&mut rhs, 0.0, &[0.0, 1.0], 2.0, &opts).unwrap();
    assert!((sol.solution.y_end()[0] - (2.0f64).cos()).abs() < 1e-2);
    assert!((sol.solution.y_end()[1] - (-0.2f64).exp()).abs() < 1e-4);
    assert!(sol.stiff_fraction() > 0.2, "{}", sol.stiff_fraction());
}
