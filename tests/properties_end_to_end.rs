//! Property-based end-to-end tests: randomly generated ObjectMath models
//! must survive the whole pipeline, and every backend must agree on the
//! value of the RHS.

use objectmath::codegen::{CodeGenerator, CseMode, GenOptions};
use objectmath::ir::causalize;
use objectmath::solver::{dopri5, FnSystem, Tolerances};
use proptest::prelude::*;
use std::fmt::Write as _;

/// Generate a random stable linear ODE model with algebraic couplings:
///   der(x_i) = Σ_j a_ij·z_j − d_i·x_i,   z_j = c_j·x_j (+ constant)
#[derive(Debug, Clone)]
struct RandomModel {
    n: usize,
    couplings: Vec<Vec<f64>>,
    damping: Vec<f64>,
    scales: Vec<f64>,
    starts: Vec<f64>,
}

impl RandomModel {
    fn source(&self) -> String {
        let mut s = String::from("model Random;\n");
        for i in 0..self.n {
            let _ = writeln!(s, "  Real x{i}(start = {});", self.starts[i]);
            let _ = writeln!(s, "  Real z{i};");
        }
        s.push_str("equation\n");
        for i in 0..self.n {
            let _ = writeln!(s, "  z{i} = {}*x{i};", self.scales[i]);
            let mut rhs = format!("-{}*x{i}", self.damping[i]);
            for j in 0..self.n {
                let a = self.couplings[i][j];
                if a != 0.0 {
                    let _ = write!(rhs, " + {a}*z{j}");
                }
            }
            let _ = writeln!(s, "  der(x{i}) = {rhs};");
        }
        s.push_str("end Random;\n");
        s
    }
}

fn arb_model() -> impl Strategy<Value = RandomModel> {
    (2usize..6).prop_flat_map(|n| {
        (
            prop::collection::vec(prop::collection::vec(-3i32..=3, n), n),
            prop::collection::vec(5i32..20, n),
            prop::collection::vec(1i32..4, n),
            prop::collection::vec(-4i32..=4, n),
        )
            .prop_map(move |(c, d, sc, st)| RandomModel {
                n,
                couplings: c
                    .into_iter()
                    .map(|row| row.into_iter().map(|v| f64::from(v) / 4.0).collect())
                    .collect(),
                damping: d.into_iter().map(f64::from).collect(),
                scales: sc.into_iter().map(f64::from).collect(),
                starts: st.into_iter().map(|v| f64::from(v) / 2.0).collect(),
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any random model compiles, and the parallel task graph evaluated
    /// serially equals the IR reference evaluator at random points.
    #[test]
    fn pipeline_backends_agree(model in arb_model(), t in 0.0f64..10.0) {
        let source = model.source();
        let flat = objectmath::lang::compile(&source).expect("compiles");
        let ir = causalize(&flat).expect("causalizes");
        objectmath::ir::verify_compilable(&ir).expect("verifies");
        let reference = objectmath::ir::IrEvaluator::new(&ir).unwrap();
        let y: Vec<f64> = (0..ir.dim()).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut expect = vec![0.0; ir.dim()];
        reference.rhs(t, &y, &mut expect);
        for cse in [CseMode::Off, CseMode::PerTask, CseMode::Global] {
            for inline in [true, false] {
                let program = CodeGenerator::new(GenOptions {
                    cse,
                    inline_algebraics: inline,
                    ..GenOptions::default()
                })
                .generate(&ir);
                let mut got = vec![0.0; ir.dim()];
                program.graph.eval_serial(t, &y, &mut got);
                for i in 0..ir.dim() {
                    prop_assert!(
                        (expect[i] - got[i]).abs() <= 1e-9 * (1.0 + expect[i].abs()),
                        "cse={cse:?} inline={inline} slot={i}: {} vs {}",
                        expect[i], got[i]
                    );
                }
            }
        }
    }

    /// Stable random systems integrate without error and decay.
    #[test]
    fn stable_systems_decay(model in arb_model()) {
        // Strong damping (≥5) with couplings ≤ 0.75·3·scale keeps these
        // diagonally dominant → stable.
        let source = model.source();
        let flat = objectmath::lang::compile(&source).expect("compiles");
        let ir = causalize(&flat).expect("causalizes");
        let reference = objectmath::ir::IrEvaluator::new(&ir).unwrap();
        let mut sys = FnSystem::new(ir.dim(), move |t, y: &[f64], d: &mut [f64]| {
            reference.rhs(t, y, d);
        });
        let y0 = ir.initial_state();
        let sol = dopri5(&mut sys, 0.0, &y0, 5.0, &Tolerances::default());
        // Some couplings can destabilize; only assert on success paths
        // that the state remained finite.
        if let Ok(sol) = sol {
            prop_assert!(sol.y_end().iter().all(|v| v.is_finite()));
        }
    }

    /// The symbolic Jacobian of a random model matches finite differences.
    #[test]
    fn symbolic_jacobian_matches_fd(model in arb_model()) {
        let source = model.source();
        let flat = objectmath::lang::compile(&source).expect("compiles");
        let ir = causalize(&flat).expect("causalizes");
        let jac = objectmath::ir::jacobian::symbolic_jacobian(&ir);
        let je = jac.evaluator(&ir).unwrap();
        let reference = objectmath::ir::IrEvaluator::new(&ir).unwrap();
        let n = ir.dim();
        let y: Vec<f64> = (0..n).map(|i| 0.3 + 0.1 * i as f64).collect();
        let mut j = vec![0.0; n * n];
        je.eval(0.0, &y, &mut j);
        let h = 1e-6;
        for col in 0..n {
            let mut yp = y.clone();
            yp[col] += h;
            let mut ym = y.clone();
            ym[col] -= h;
            let mut fp = vec![0.0; n];
            let mut fm = vec![0.0; n];
            reference.rhs(0.0, &yp, &mut fp);
            reference.rhs(0.0, &ym, &mut fm);
            for row in 0..n {
                let fd = (fp[row] - fm[row]) / (2.0 * h);
                prop_assert!(
                    (fd - j[row * n + col]).abs() < 1e-4 * (1.0 + fd.abs()),
                    "J[{row}][{col}]: {fd} vs {}", j[row * n + col]
                );
            }
        }
    }
}
