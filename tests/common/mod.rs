//! Shared helpers for the CLI integration suites (`sweep_cli`,
//! `serve_cli`): locating the built `omc` binary, per-process temp
//! paths, and the canonical oscillator model fixture.
//!
//! Lives in `tests/common/` (not `tests/common.rs`) so the harness does
//! not compile it as a test target of its own.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Output};

/// The freshly built `omc` under test.
pub fn omc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_omc"))
}

/// A temp path namespaced by test process id (parallel test binaries
/// must not collide).
pub fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("omc_it_{}_{name}", std::process::id()))
}

/// Write the canonical two-state oscillator fixture and return its path.
pub fn write_model(name: &str) -> PathBuf {
    let path = tmp(&format!("{name}.om"));
    let mut f = std::fs::File::create(&path).expect("create model file");
    f.write_all(
        b"model Osc;
  Real x(start = 1.0);
  Real y;
  equation
    der(x) = y;
    der(y) = -x;
end Osc;
",
    )
    .expect("write model");
    path
}

/// Run `omc` with `args`, capturing output.
pub fn run(args: &[&str]) -> Output {
    let mut cmd = omc();
    cmd.args(args);
    cmd.output().expect("run omc")
}
