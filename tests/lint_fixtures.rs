//! Seeded-bad fixture models under `tests/lint/`: each `.om` file carries
//! `// expect: OMxxx @ line:col` comments and must produce *exactly* that
//! diagnostic set — same codes, same positions, nothing extra. `0:0`
//! means a position-less diagnostic (whole-system findings).
//!
//! A fixture containing a `// lint: array-aware` line is linted through
//! the array-aware pipeline (symbolic classes + loop-task schedules)
//! instead of the scalarizing oracle.

use objectmath::lint::{lint_source_with, LintOptions};
use std::path::Path;

/// Parse every `// expect: OMxxx @ line:col` comment in a fixture.
fn parse_expectations(source: &str, file: &Path) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    for (i, line) in source.lines().enumerate() {
        let Some(rest) = line.trim().strip_prefix("// expect:") else {
            continue;
        };
        let rest = rest.trim();
        let (code, pos) = rest.split_once('@').unwrap_or_else(|| {
            panic!(
                "{}:{}: malformed expectation `{rest}`",
                file.display(),
                i + 1
            )
        });
        let (l, c) = pos.trim().split_once(':').unwrap_or_else(|| {
            panic!(
                "{}:{}: expected line:col in `{rest}`",
                file.display(),
                i + 1
            )
        });
        out.push((
            code.trim().to_string(),
            l.trim().parse().expect("line number"),
            c.trim().parse().expect("column number"),
        ));
    }
    assert!(
        !out.is_empty(),
        "{}: fixture has no `// expect:` comments",
        file.display()
    );
    out
}

#[test]
fn every_fixture_fires_exactly_its_expected_diagnostics() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint");
    let mut fixtures = 0;
    let mut codes_seen: Vec<String> = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/lint directory")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("om"))
        .collect();
    entries.sort();

    for path in entries {
        fixtures += 1;
        let source = std::fs::read_to_string(&path).expect("read fixture");
        let mut expected = parse_expectations(&source, &path);
        let array_aware = source.lines().any(|l| l.trim() == "// lint: array-aware");
        let report = lint_source_with(&source, LintOptions { array_aware });
        let mut actual: Vec<(String, usize, usize)> = report
            .diagnostics
            .iter()
            .map(|d| (d.code.to_string(), d.pos.line as usize, d.pos.col as usize))
            .collect();
        expected.sort();
        actual.sort();
        assert_eq!(
            actual,
            expected,
            "{}: diagnostics differ from expectations; actual report:\n{}",
            path.display(),
            report.render_text(path.to_str().unwrap())
        );
        codes_seen.extend(expected.into_iter().map(|(c, _, _)| c));
    }

    // The fixture corpus must exercise a healthy slice of the code table.
    codes_seen.sort();
    codes_seen.dedup();
    assert!(fixtures >= 13, "only {fixtures} fixtures");
    assert!(
        codes_seen.len() >= 12,
        "fixtures cover only {} distinct codes: {:?}",
        codes_seen.len(),
        codes_seen
    );
}
