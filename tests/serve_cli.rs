//! End-to-end tests for `omc serve` + `omc request` over a real Unix
//! socket: warm-registry reuse across requests, typed overload
//! shedding, and graceful SIGTERM drain — the same sequence the
//! `serve-smoke` CI job runs.

mod common;

use common::{omc, run, tmp, write_model};
use std::path::Path;
use std::process::{Child, Stdio};
use std::time::{Duration, Instant};

/// Start `omc serve --socket ...` and wait for the socket to appear.
fn start_serve(socket: &Path, extra: &[&str]) -> Child {
    let mut cmd = omc();
    cmd.args(["serve", "--socket", socket.to_str().unwrap()]);
    cmd.args(extra);
    cmd.stderr(Stdio::null());
    let child = cmd.spawn().expect("spawn omc serve");
    let deadline = Instant::now() + Duration::from_secs(10);
    while !socket.exists() {
        assert!(Instant::now() < deadline, "socket never appeared");
        std::thread::sleep(Duration::from_millis(20));
    }
    child
}

/// SIGTERM the service and assert the graceful-drain exit code (0, not
/// the 128+15 a default-disposition kill would produce).
fn drain(mut child: Child) {
    let term = std::process::Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success(), "kill -TERM failed");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            assert_eq!(status.code(), Some(0), "drain must exit 0, got {status:?}");
            return;
        }
        assert!(Instant::now() < deadline, "serve did not drain within 10s");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn warm_registry_reuse_and_graceful_drain() {
    let model = write_model("serve_warm");
    let socket = tmp("serve_warm.sock");
    let _ = std::fs::remove_file(&socket);
    let server = start_serve(&socket, &["--concurrency", "2"]);

    // Two identical requests on one connection: the first compiles
    // (cold), the second reuses the warm registry entry.
    let out = run(&[
        model.to_str().unwrap(),
        "request",
        "--socket",
        socket.to_str().unwrap(),
        "--grid",
        "x=0.9:1.1:4",
        "--tend",
        "0.2",
        "--h",
        "0.01",
        "--repeat",
        "2",
        "--stats",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"registry\":\"cold\""), "{stdout}");
    assert!(stdout.contains("\"registry\":\"warm\""), "{stdout}");
    // The stats line proves the reuse with real registry counters.
    assert!(stdout.contains("\"hits\":1"), "{stdout}");
    assert!(stdout.contains("\"misses\":1"), "{stdout}");
    assert_eq!(
        stdout.matches("\"type\":\"scenario\"").count(),
        8,
        "4 scenarios x 2 requests: {stdout}"
    );

    drain(server);
    assert!(!socket.exists(), "drain must remove the socket file");
    std::fs::remove_file(&model).ok();
}

#[test]
fn overloaded_request_gets_typed_shed_and_exit_9() {
    let model = write_model("serve_shed");
    let socket = tmp("serve_shed.sock");
    let _ = std::fs::remove_file(&socket);
    let server = start_serve(&socket, &["--max-scenarios", "2"]);

    let out = run(&[
        model.to_str().unwrap(),
        "request",
        "--socket",
        socket.to_str().unwrap(),
        "--grid",
        "x=0.5:1.5:6",
        "--tend",
        "0.2",
    ]);
    assert_eq!(
        out.status.code(),
        Some(9),
        "documented shed exit code; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"type\":\"overloaded\""), "{stdout}");
    assert!(stdout.contains("\"reason\":\"inflight\""), "{stdout}");
    assert!(stdout.contains("\"retry_ms\":"), "{stdout}");
    // Nothing was executed for the shed request.
    assert!(!stdout.contains("\"type\":\"scenario\""), "{stdout}");

    drain(server);
    std::fs::remove_file(&model).ok();
}

#[test]
fn stdio_mode_serves_a_session_without_a_socket() {
    use std::io::Write as _;

    let mut cmd = omc();
    cmd.args(["serve", "--stdio"]);
    cmd.stdin(Stdio::piped());
    cmd.stdout(Stdio::piped());
    cmd.stderr(Stdio::null());
    let mut child = cmd.spawn().expect("spawn omc serve --stdio");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(
            b"{\"id\":\"r1\",\"op\":\"run\",\"model\":{\"source\":\"model M; Real x(start=1.0); equation der(x) = -x; end M;\"},\"scenarios\":[{\"x\":1.0},{\"x\":2.0}],\"tend\":0.1,\"h\":0.01}\n{\"id\":\"s\",\"op\":\"stats\"}\n",
        )
        .expect("write requests");
    // Dropping stdin closes it: EOF ends the session cleanly.
    let out = child.wait_with_output().expect("wait");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"type\":\"accepted\""), "{stdout}");
    assert_eq!(
        stdout.matches("\"type\":\"scenario\"").count(),
        2,
        "{stdout}"
    );
    assert!(stdout.contains("\"type\":\"done\""), "{stdout}");
    assert!(stdout.contains("\"type\":\"stats\""), "{stdout}");
}

#[test]
fn request_against_missing_socket_is_an_io_error() {
    let model = write_model("serve_nosock");
    let out = run(&[
        model.to_str().unwrap(),
        "request",
        "--socket",
        "/tmp/omc_definitely_not_listening.sock",
        "--grid",
        "x=1:2:2",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot connect"), "{stderr}");
    std::fs::remove_file(&model).ok();
}

#[test]
fn serve_without_transport_is_a_usage_error() {
    let out = run(&["serve"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--socket") && stderr.contains("--stdio"),
        "{stderr}"
    );
}
