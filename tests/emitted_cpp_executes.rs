//! Compile-and-run fidelity test for the C++ emitter: the generated
//! `rhs()` is compiled with the system C++ compiler, executed on test
//! states, and compared against the reference evaluator — the closest
//! modern equivalent of the paper's "generated code is compiled by
//! cc/F90 and linked with the runtime system".
//!
//! Skipped (with a message) when no C++ compiler is installed.

use objectmath::codegen::emit_cpp;
use objectmath::expr::CostModel;
use objectmath::ir::{causalize, IrEvaluator};
use std::io::Write as _;
use std::process::Command;

fn cxx() -> Option<&'static str> {
    ["g++", "clang++", "c++"].into_iter().find(|candidate| {
        Command::new(candidate)
            .arg("--version")
            .output()
            .map(|o| o.status.success())
            .unwrap_or(false)
    })
}

fn compile_and_run(source_cpp: &str, dim: usize, t: f64, y: &[f64]) -> Vec<f64> {
    let dir = std::env::temp_dir().join(format!("om_cpp_test_{}_{}", std::process::id(), dim));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let src_path = dir.join("rhs.cpp");
    let bin_path = dir.join("rhs_test");

    // Driver main(): argv = t y0 y1 …; prints dydt one per line.
    let mut full = String::from(source_cpp);
    full.push_str(&format!(
        r#"
#include <cstdio>
#include <cstdlib>
int main(int argc, char** argv) {{
    (void)argc;
    double t = std::atof(argv[1]);
    (void)t;
    double yin[{dim}];
    double yout[{dim}];
    for (int i = 0; i < {dim}; i++) yin[i] = std::atof(argv[2 + i]);
    rhs(yin, yout);
    for (int i = 0; i < {dim}; i++) std::printf("%.17g\n", yout[i]);
    return 0;
}}
"#
    ));
    let mut f = std::fs::File::create(&src_path).expect("write source");
    f.write_all(full.as_bytes()).expect("write source");
    drop(f);

    let compiler = cxx().expect("checked by caller");
    let out = Command::new(compiler)
        .args(["-O1", "-o"])
        .arg(&bin_path)
        .arg(&src_path)
        .output()
        .expect("run compiler");
    assert!(
        out.status.success(),
        "C++ compilation failed:\n{}\n--- source ---\n{full}",
        String::from_utf8_lossy(&out.stderr)
    );

    let mut cmd = Command::new(&bin_path);
    cmd.arg(format!("{t}"));
    for v in y {
        cmd.arg(format!("{v:.17e}"));
    }
    let out = cmd.output().expect("run generated binary");
    assert!(out.status.success());
    String::from_utf8(out.stdout)
        .expect("utf8")
        .lines()
        .map(|l| l.parse().expect("float"))
        .collect()
}

fn check_model(source: &str, y: &[f64]) {
    let Some(_) = cxx() else {
        eprintln!("no C++ compiler found; skipping emitted-C++ execution test");
        return;
    };
    let flat = objectmath::lang::compile(source).expect("compiles");
    let ir = causalize(&flat).expect("causalizes");
    let emitted = emit_cpp::emit_serial(&ir, &CostModel::default());
    // The serial C++ signature takes no time parameter; restrict test
    // models to autonomous systems (no `time`).
    let reference = IrEvaluator::new(&ir).unwrap();
    let mut expect = vec![0.0; ir.dim()];
    reference.rhs(0.0, y, &mut expect);
    let got = compile_and_run(&emitted.text, ir.dim(), 0.0, y);
    assert_eq!(got.len(), ir.dim());
    for i in 0..ir.dim() {
        let scale = 1.0 + expect[i].abs();
        assert!(
            (got[i] - expect[i]).abs() < 1e-12 * scale,
            "slot {i}: g++ {} vs reference {}\n{}",
            got[i],
            expect[i],
            emitted.text
        );
    }
}

#[test]
fn oscillator_cpp_matches_reference() {
    check_model(
        "model Osc; Real x(start=1.0); Real y;
         equation der(x) = y; der(y) = -x; end Osc;",
        &[0.3, -0.7],
    );
}

#[test]
fn nonlinear_functions_cpp_matches_reference() {
    check_model(
        "model M;
           Real a(start=0.5); Real b(start=0.2); Real c(start=1.5);
           Real aux;
           equation
             aux = exp(sin(a) + cos(b)) + sqrt(c*c + 1.0);
             der(a) = aux * tanh(b) - a^3.0;
             der(b) = atan2(a, c) + log(c + 2.0) - abs(b - a);
             der(c) = max(-1.0, min(1.0, a*b)) + sign(a) * 0.125;
         end M;",
        &[0.5, 0.2, 1.5],
    );
}

#[test]
fn conditional_contact_cpp_matches_reference() {
    let source = "model Contact;
         parameter Real k = 50.0;
         Real x(start = -0.1); Real v(start = 2.0);
         Real f;
         equation
           f = if x < 0.0 then -k*x - 0.5*v else 0.0;
           der(x) = v;
           der(v) = f - 9.81;
       end Contact;";
    // Both branches of the conditional.
    check_model(source, &[-0.2, 1.0]);
    check_model(source, &[0.3, -1.0]);
}

#[test]
fn bearing_cpp_matches_reference() {
    use objectmath::models::bearing2d::{self, BearingConfig};
    let Some(_) = cxx() else {
        eprintln!("no C++ compiler found; skipping");
        return;
    };
    let cfg = BearingConfig {
        rollers: 4,
        waviness: 2,
        ..BearingConfig::default()
    };
    let ir = bearing2d::ir(&cfg);
    let emitted = emit_cpp::emit_serial(&ir, &CostModel::default());
    let reference = IrEvaluator::new(&ir).unwrap();
    // Perturb the initial state so contacts activate.
    let mut y = ir.initial_state();
    let y_idx = ir.find_state("y").unwrap();
    y[y_idx] = -8.0e-5;
    let mut expect = vec![0.0; ir.dim()];
    reference.rhs(0.0, &y, &mut expect);
    let got = compile_and_run(&emitted.text, ir.dim(), 0.0, &y);
    for i in 0..ir.dim() {
        let scale = 1.0 + expect[i].abs();
        assert!(
            (got[i] - expect[i]).abs() < 1e-9 * scale,
            "slot {i} ({}): g++ {} vs reference {}",
            ir.states[i].sym.name(),
            got[i],
            expect[i]
        );
    }
}
