//! Integration tests for `omc sweep`: exit codes, manifest files, and
//! the checkpoint/resume cycle, exercised through the real binary.

mod common;

use common::{run, tmp, write_model};

#[test]
fn clean_sweep_exits_zero_and_writes_manifest() {
    let model = write_model("clean");
    let manifest = tmp("clean_manifest.json");
    let out = run(&[
        model.to_str().unwrap(),
        "sweep",
        "--grid",
        "x=0.9:1.1:8",
        "--grid",
        "y=-0.1:0.1:2",
        "--tend",
        "0.2",
        "--h",
        "0.01",
        "--manifest",
        manifest.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("16 scenarios = 16 completed"), "{stdout}");
    let doc = std::fs::read_to_string(&manifest).expect("manifest written");
    assert!(doc.contains("\"scenarios\": 16"), "{doc}");
    assert!(doc.contains("\"skipped\": 0"), "{doc}");
    assert!(doc.contains("\"unaccounted\": 0"), "{doc}");
    std::fs::remove_file(&manifest).ok();
    std::fs::remove_file(&model).ok();
}

#[test]
fn faulted_sweep_exits_partial_failure() {
    let model = write_model("faulted");
    let manifest = tmp("faulted_manifest.json");
    let out = run(&[
        model.to_str().unwrap(),
        "sweep",
        "--grid",
        "x=0.5:1.5:64",
        "--tend",
        "0.2",
        "--h",
        "0.01",
        "--fault-seed",
        "7",
        "--deadline-ms",
        "300",
        "--straggle-ms",
        "600",
        "--manifest",
        manifest.to_str().unwrap(),
    ]);
    // Documented partial-failure exit code.
    assert_eq!(
        out.status.code(),
        Some(8),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = std::fs::read_to_string(&manifest).expect("manifest written");
    assert!(doc.contains("\"scenarios\": 64"), "{doc}");
    assert!(doc.contains("\"skipped\": 0"), "{doc}");
    assert!(doc.contains("\"unaccounted\": 0"), "{doc}");
    // Something actually failed, in a typed state.
    assert!(
        doc.contains("\"status\":\"quarantined\"") || doc.contains("\"status\":\"deadline\""),
        "{doc}"
    );
    std::fs::remove_file(&manifest).ok();
    std::fs::remove_file(&model).ok();
}

#[test]
fn interrupted_then_resumed_matches_uninterrupted_manifest() {
    let model = write_model("resume");
    let checkpoint = tmp("resume.ckpt.jsonl");
    let uninterrupted = tmp("resume_oracle.json");
    let resumed = tmp("resume_final.json");
    let _ = std::fs::remove_file(&checkpoint);

    let base: &[&str] = &[
        "sweep",
        "--grid",
        "x=0.8:1.2:20",
        "--tend",
        "0.2",
        "--h",
        "0.01",
    ];

    // Oracle: sequential, uninterrupted.
    let out = run(&[
        &[model.to_str().unwrap()],
        base,
        &[
            "--concurrency",
            "1",
            "--manifest",
            uninterrupted.to_str().unwrap(),
        ],
    ]
    .concat());
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Interrupted run: 7 fresh scenarios, then stop → exit 8 (skipped).
    let out = run(&[
        &[model.to_str().unwrap()],
        base,
        &[
            "--checkpoint",
            checkpoint.to_str().unwrap(),
            "--stop-after",
            "7",
        ],
    ]
    .concat());
    assert_eq!(
        out.status.code(),
        Some(8),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("13 skipped"), "{stdout}");

    // Resume: carries the 7 forward, finishes the rest → exit 0.
    let out = run(&[
        &[model.to_str().unwrap()],
        base,
        &[
            "--checkpoint",
            checkpoint.to_str().unwrap(),
            "--resume",
            "--manifest",
            resumed.to_str().unwrap(),
        ],
    ]
    .concat());
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("7 from checkpoint"), "{stdout}");

    let a = std::fs::read(&uninterrupted).unwrap();
    let b = std::fs::read(&resumed).unwrap();
    assert_eq!(
        a, b,
        "resumed manifest must be byte-identical to the oracle"
    );

    for p in [&checkpoint, &uninterrupted, &resumed, &model] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn sweep_without_scenarios_is_a_usage_error() {
    let model = write_model("noargs");
    let out = run(&[model.to_str().unwrap(), "sweep"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--params") || stderr.contains("--grid"),
        "{stderr}"
    );
    std::fs::remove_file(&model).ok();
}

#[test]
fn unknown_state_in_grid_is_a_usage_error() {
    let model = write_model("badstate");
    let out = run(&[model.to_str().unwrap(), "sweep", "--grid", "bogus=0:1:4"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bogus"), "{stderr}");
    std::fs::remove_file(&model).ok();
}

#[test]
fn sweep_params_json_file_drives_scenarios() {
    let model = write_model("params");
    let params = tmp("params.json");
    std::fs::write(
        &params,
        "[{\"x\": 1.5}, {\"x\": 2.0, \"y\": 0.1}, {\"x\": 0.5}]",
    )
    .unwrap();
    let manifest = tmp("params_manifest.json");
    let out = run(&[
        model.to_str().unwrap(),
        "sweep",
        "--params",
        params.to_str().unwrap(),
        "--tend",
        "0.2",
        "--h",
        "0.01",
        "--manifest",
        manifest.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = std::fs::read_to_string(&manifest).unwrap();
    assert!(doc.contains("\"scenarios\": 3"), "{doc}");
    assert!(doc.contains("\"completed\": 3"), "{doc}");
    std::fs::remove_file(&params).ok();
    std::fs::remove_file(&manifest).ok();
    std::fs::remove_file(&model).ok();
}
