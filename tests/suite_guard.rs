//! Suite guard: every test file must actually contain tests.
//!
//! An integration-test file that compiles to zero `#[test]` functions
//! silently shrinks the suite (cargo happily reports `0 passed`). This
//! meta-test scans every `tests/*.rs` file in the workspace — the root
//! package and every crate — and fails loudly if one defines no tests,
//! so a refactor that strips or `cfg`s-away tests cannot land unnoticed.

use std::path::{Path, PathBuf};

/// Collect `tests/*.rs` for the root package and every workspace crate.
fn test_files() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut dirs = vec![root.join("tests")];
    if let Ok(crates) = std::fs::read_dir(root.join("crates")) {
        for entry in crates.flatten() {
            dirs.push(entry.path().join("tests"));
        }
    }
    let mut files = Vec::new();
    for dir in dirs {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

/// Does the source define at least one runnable test? `#[test]` functions
/// and `proptest!` blocks (which expand to `#[test]` functions) count.
fn defines_tests(src: &str) -> bool {
    src.contains("#[test]") || src.contains("proptest!")
}

#[test]
fn every_test_file_defines_at_least_one_test() {
    let files = test_files();
    // Floor raised as suites land (PR 7 added vm_batch_props and
    // ensemble_batch; PR 8 added array_loops; PR 9 added sym_parity;
    // PR 10 added serve_cli, serve_differential, and serve_quota_props —
    // tests/common/ is a helper module, not a test target, and the scan
    // is non-recursive so it rightly doesn't count); a drop below the
    // floor means files went missing.
    assert!(
        files.len() >= 30,
        "suite guard found only {} test files — the scan itself is broken",
        files.len()
    );
    let mut empty = Vec::new();
    for path in &files {
        let src = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        if !defines_tests(&src) {
            empty.push(path.display().to_string());
        }
    }
    assert!(
        empty.is_empty(),
        "test files that compile to ZERO tests (add tests or delete the file): {empty:#?}"
    );
}

/// `#[ignore]` is for tests that cannot run in this environment, not a
/// parking lot. Keep the suite honest: every ignore must carry a reason
/// string (`#[ignore = "why"]`).
#[test]
fn ignored_tests_carry_a_reason() {
    let mut bare = Vec::new();
    for path in &test_files() {
        let src = std::fs::read_to_string(path).expect("readable test file");
        for (i, line) in src.lines().enumerate() {
            let t = line.trim();
            if t == "#[ignore]" {
                bare.push(format!("{}:{}", path.display(), i + 1));
            }
        }
    }
    assert!(
        bare.is_empty(),
        "bare #[ignore] without a reason: {bare:#?}"
    );
}
