//! Golden tests pinning the textual outputs of Figure 11.

use objectmath::codegen::{emit_fortran, CodeGenerator, GenOptions};
use objectmath::expr::print::normal_form;
use objectmath::expr::Expr;
use objectmath::models::oscillator;
use std::collections::BTreeSet;

#[test]
fn normal_form_matches_figure_11_top_panel() {
    let sys = oscillator::ir();
    let time_vars: BTreeSet<_> = sys.states.iter().map(|s| s.sym).collect();
    let mut rendered = Vec::new();
    for d in &sys.derivs {
        rendered.push(format!(
            "{} == {}",
            normal_form(&Expr::Der(d.state), &time_vars),
            normal_form(&d.rhs, &time_vars)
        ));
    }
    assert_eq!(rendered, vec!["x'[t] == y[t]", "y'[t] == -x[t]"]);
}

#[test]
fn prefix_form_matches_figure_11_middle_panel() {
    let sys = oscillator::ir();
    let text = CodeGenerator::default().intermediate_code(&sys);
    let expected = "\
List[
  List[
    Equal[Derivative[1][om$Type[x, om$Real]][om$Type[t, om$Real]], om$Type[y, om$Real]],
    Equal[Derivative[1][om$Type[y, om$Real]][om$Type[t, om$Real]], Minus[om$Type[x, om$Real]]]
  ],
  List[t, om$Type[tstart, om$Real], om$Type[tend, om$Real]]
]
";
    assert_eq!(text, expected);
}

#[test]
fn fortran_matches_figure_11_bottom_panel_shape() {
    let sys = oscillator::ir();
    let generator = CodeGenerator::new(GenOptions {
        merge_threshold: 0,
        ..GenOptions::default()
    });
    let program = generator.generate(&sys);
    let sched = program.schedule(2);
    let src = emit_fortran::emit_parallel(
        &program.tasks,
        &sched.assignment,
        2,
        &sys,
        &generator.options.cost_model,
    );
    // Both workers get exactly one equation; worker order depends on LPT
    // tie-breaking, so check the per-case contents rather than order.
    let text = &src.text;
    let expected_lines = [
        "subroutine RHS(workerid, yin, yout)",
        "  integer workerid",
        "  real(double) yin(2), yout(2)",
        "  select case (workerid)",
        "  case (1)",
        "  case (2)",
        "    y = yin(2)",
        "    xdot = y",
        "    yout(1) = xdot",
        "    x = yin(1)",
        "    ydot = -x",
        "    yout(2) = ydot",
        "  end select",
        "end subroutine",
    ];
    for line in expected_lines {
        assert!(text.contains(line), "missing line `{line}` in:\n{text}");
    }
    // One equation per case: the xdot and ydot assignments are in
    // different cases.
    let case2 = text.split("case (2)").nth(1).expect("has case 2");
    let case1 = text
        .split("case (1)")
        .nth(1)
        .expect("has case 1")
        .split("case (2)")
        .next()
        .expect("case 1 body");
    assert!(case1.contains("dot") && case2.contains("dot"));
    assert_ne!(
        case1.contains("xdot"),
        case2.contains("xdot"),
        "each worker computes exactly one derivative\n{text}"
    );
}

#[test]
fn generated_code_statistics_are_reported() {
    let sys = oscillator::ir();
    let stats = CodeGenerator::default().stats(&sys, 2);
    assert_eq!(stats.n_states, 2);
    assert_eq!(stats.n_equations, 2);
    assert!(stats.intermediate_lines >= 7);
    assert!(stats.parallel_f90.total_lines >= 14);
    assert_eq!(stats.parallel_f90.cse_count, 0);
}
