//! Integration tests for the `omc` compiler driver.

use std::io::Write as _;
use std::process::Command;

fn omc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_omc"))
}

fn write_model(name: &str, body: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("omc_test_{}_{name}.om", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("create model file");
    f.write_all(body.as_bytes()).expect("write model");
    path
}

const OSC: &str = "model Osc;
  Real x(start = 1.0);
  Real y;
  equation
    der(x) = y;
    der(y) = -x;
end Osc;
";

#[test]
fn analyze_reports_sccs() {
    let path = write_model("analyze", OSC);
    let out = omc().arg(&path).arg("analyze").output().expect("run omc");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("2 states"), "{text}");
    assert!(text.contains("SCC sizes"), "{text}");
}

#[test]
fn analyze_dot_is_graphviz() {
    let path = write_model("dot", OSC);
    let out = omc()
        .arg(&path)
        .args(["analyze", "--dot"])
        .output()
        .expect("run omc");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("digraph"), "{text}");
}

#[test]
fn emit_f90_and_cpp_and_mma() {
    let path = write_model("emit", OSC);
    for (lang, needle) in [
        ("f90", "subroutine RHS"),
        ("cpp", "void rhs"),
        ("mma", "Derivative[1]"),
    ] {
        let out = omc()
            .arg(&path)
            .args(["emit", "--lang", lang])
            .output()
            .expect("run omc");
        assert!(out.status.success(), "--lang {lang}");
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains(needle), "--lang {lang}: {text}");
    }
}

#[test]
fn simulate_solves_the_oscillator() {
    let path = write_model("simulate", OSC);
    let t = std::f64::consts::PI; // half period: x = -1
    let out = omc()
        .arg(&path)
        .args(["simulate", "--tend", &t.to_string(), "--rtol", "1e-9"])
        .output()
        .expect("run omc");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let x_line = text.lines().find(|l| l.trim_start().starts_with("x ")).expect("x line");
    let value: f64 = x_line.split('=').nth(1).unwrap().trim().parse().unwrap();
    assert!((value + 1.0).abs() < 1e-5, "{value}");
}

#[test]
fn simulate_with_parallel_workers_and_overrides() {
    let path = write_model("parallel", OSC);
    let out = omc()
        .arg(&path)
        .args([
            "simulate",
            "--tend",
            "1.0",
            "--workers",
            "2",
            "--set",
            "x=0.0",
            "--set",
            "y=2.0",
        ])
        .output()
        .expect("run omc");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    // x(t) = 2 sin t with x(0)=0, y(0)=2.
    let x_line = text.lines().find(|l| l.trim_start().starts_with("x ")).expect("x line");
    let value: f64 = x_line.split('=').nth(1).unwrap().trim().parse().unwrap();
    assert!((value - 2.0 * 1.0f64.sin()).abs() < 1e-4, "{value}");
}

#[test]
fn tasks_prints_schedule() {
    let path = write_model("tasks", OSC);
    let out = omc()
        .arg(&path)
        .args(["tasks", "--workers", "2"])
        .output()
        .expect("run omc");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("schedule on 2 workers"), "{text}");
}

#[test]
fn bad_model_reports_position() {
    let path = write_model("bad", "model M;\n  Real ;\nend M;");
    let out = omc().arg(&path).arg("analyze").output().expect("run omc");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("2:"), "{text}");
}

#[test]
fn unknown_state_override_fails_cleanly() {
    let path = write_model("badset", OSC);
    let out = omc()
        .arg(&path)
        .args(["simulate", "--set", "nope=1.0"])
        .output()
        .expect("run omc");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("nope"));
}
