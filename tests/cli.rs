//! Integration tests for the `omc` compiler driver.

use std::io::Write as _;
use std::process::Command;

fn omc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_omc"))
}

fn write_model(name: &str, body: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("omc_test_{}_{name}.om", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("create model file");
    f.write_all(body.as_bytes()).expect("write model");
    path
}

const OSC: &str = "model Osc;
  Real x(start = 1.0);
  Real y;
  equation
    der(x) = y;
    der(y) = -x;
end Osc;
";

#[test]
fn analyze_reports_sccs() {
    let path = write_model("analyze", OSC);
    let out = omc().arg(&path).arg("analyze").output().expect("run omc");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("2 states"), "{text}");
    assert!(text.contains("SCC sizes"), "{text}");
}

#[test]
fn analyze_dot_is_graphviz() {
    let path = write_model("dot", OSC);
    let out = omc()
        .arg(&path)
        .args(["analyze", "--dot"])
        .output()
        .expect("run omc");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("digraph"), "{text}");
}

#[test]
fn emit_f90_and_cpp_and_mma() {
    let path = write_model("emit", OSC);
    for (lang, needle) in [
        ("f90", "subroutine RHS"),
        ("cpp", "void rhs"),
        ("mma", "Derivative[1]"),
    ] {
        let out = omc()
            .arg(&path)
            .args(["emit", "--lang", lang])
            .output()
            .expect("run omc");
        assert!(out.status.success(), "--lang {lang}");
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains(needle), "--lang {lang}: {text}");
    }
}

#[test]
fn simulate_solves_the_oscillator() {
    let path = write_model("simulate", OSC);
    let t = std::f64::consts::PI; // half period: x = -1
    let out = omc()
        .arg(&path)
        .args(["simulate", "--tend", &t.to_string(), "--rtol", "1e-9"])
        .output()
        .expect("run omc");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let x_line = text
        .lines()
        .find(|l| l.trim_start().starts_with("x "))
        .expect("x line");
    let value: f64 = x_line.split('=').nth(1).unwrap().trim().parse().unwrap();
    assert!((value + 1.0).abs() < 1e-5, "{value}");
}

#[test]
fn simulate_with_parallel_workers_and_overrides() {
    let path = write_model("parallel", OSC);
    let out = omc()
        .arg(&path)
        .args([
            "simulate",
            "--tend",
            "1.0",
            "--workers",
            "2",
            "--set",
            "x=0.0",
            "--set",
            "y=2.0",
        ])
        .output()
        .expect("run omc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // x(t) = 2 sin t with x(0)=0, y(0)=2.
    let x_line = text
        .lines()
        .find(|l| l.trim_start().starts_with("x "))
        .expect("x line");
    let value: f64 = x_line.split('=').nth(1).unwrap().trim().parse().unwrap();
    assert!((value - 2.0 * 1.0f64.sin()).abs() < 1e-4, "{value}");
}

#[test]
fn tasks_prints_schedule() {
    let path = write_model("tasks", OSC);
    let out = omc()
        .arg(&path)
        .args(["tasks", "--workers", "2"])
        .output()
        .expect("run omc");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("schedule on 2 workers"), "{text}");
}

#[test]
fn lint_clean_model_exits_zero() {
    let path = write_model("lint_clean", OSC);
    let out = omc().arg(&path).arg("lint").output().expect("run omc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("0 error(s), 0 warning(s)"), "{text}");
}

#[test]
fn lint_errors_exit_5() {
    // Unresolved reference: a lint error.
    let path = write_model(
        "lint_err",
        "model M;\n  Real x(start=1.0);\nequation\n  der(x) = -x + nope;\nend M;\n",
    );
    let out = omc().arg(&path).arg("lint").output().expect("run omc");
    assert_eq!(out.status.code(), Some(5));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("error[OM010]"), "{text}");
    assert!(text.contains("4:17"), "{text}");
}

const WARNY: &str = "model W;
  Real x(start=1.0);
  Real dead;
equation
  der(x) = -x;
  dead = x * 2.0;
end W;
";

#[test]
fn lint_deny_warnings_exits_6() {
    let path = write_model("lint_warn", WARNY);
    // Without --deny, warnings do not fail the run…
    let out = omc().arg(&path).arg("lint").output().expect("run omc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    // …with it, they do.
    let out = omc()
        .arg(&path)
        .args(["lint", "--deny", "warnings"])
        .output()
        .expect("run omc");
    assert_eq!(out.status.code(), Some(6));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("warning[OM020]"), "{text}");
    assert!(text.contains("warning[OM021]"), "{text}");
}

#[test]
fn lint_deny_info_exits_7() {
    // A state without a start value: info-level only.
    let path = write_model(
        "lint_info",
        "model I;\n  Real x;\nequation\n  der(x) = -x;\nend I;\n",
    );
    let out = omc()
        .arg(&path)
        .args(["lint", "--deny", "warnings"])
        .output()
        .expect("run omc");
    assert!(out.status.success(), "info must pass --deny warnings");
    let out = omc()
        .arg(&path)
        .args(["lint", "--deny", "info"])
        .output()
        .expect("run omc");
    assert_eq!(out.status.code(), Some(7));
    assert!(String::from_utf8_lossy(&out.stdout).contains("info[OM022]"));
}

#[test]
fn lint_json_is_machine_readable() {
    let path = write_model("lint_json", WARNY);
    let out = omc()
        .arg(&path)
        .args(["lint", "--json"])
        .output()
        .expect("run omc");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("{\"file\":"), "{text}");
    assert!(text.contains("\"code\":\"OM020\""), "{text}");
    assert!(
        text.contains("\"summary\":{\"error\":0,\"warning\":2,\"info\":0}"),
        "{text}"
    );
}

#[test]
fn lint_rejects_bad_deny_class() {
    let path = write_model("lint_baddeny", OSC);
    let out = omc()
        .arg(&path)
        .args(["lint", "--deny", "everything"])
        .output()
        .expect("run omc");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--deny"));
}

#[test]
fn bad_model_reports_position() {
    let path = write_model("bad", "model M;\n  Real ;\nend M;");
    let out = omc().arg(&path).arg("analyze").output().expect("run omc");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("2:"), "{text}");
}

#[test]
fn unknown_state_override_fails_cleanly() {
    let path = write_model("badset", OSC);
    let out = omc()
        .arg(&path)
        .args(["simulate", "--set", "nope=1.0"])
        .output()
        .expect("run omc");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("nope"));
}

#[test]
fn simulate_trace_writes_valid_chrome_json() {
    let path = write_model("trace", OSC);
    let trace_path =
        std::env::temp_dir().join(format!("omc_test_{}.trace.json", std::process::id()));
    let out = omc()
        .arg(&path)
        .args(["simulate", "--tend", "0.5", "--workers", "2", "--trace"])
        .arg(&trace_path)
        .args(["--metrics"])
        .output()
        .expect("run omc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("== metrics =="), "{stderr}");
    assert!(stderr.contains("runtime.rhs_calls"), "{stderr}");

    let doc = std::fs::read_to_string(&trace_path).expect("trace file written");
    let check = om_obs::chrome::validate_chrome_json(&doc).expect("valid chrome trace");
    assert!(check.events > 0, "trace has no events");
    // Supervisor spans and both worker tracks are present.
    let names: Vec<&str> = check
        .tracks
        .values()
        .filter_map(|t| t.name.as_deref())
        .collect();
    // At least one worker track (the tiny model's tasks may all fuse
    // onto one worker) plus the supervisor track.
    assert!(
        names.iter().any(|n| n.starts_with("om-worker-")),
        "{names:?}"
    );
    assert!(
        check
            .tracks
            .values()
            .any(|t| t.sequence.iter().any(|(_, n)| n == "rhs.eval")),
        "no rhs.eval spans in the trace"
    );
    let _ = std::fs::remove_file(&trace_path);
}

#[test]
fn metrics_without_workers_reports_solver_counters() {
    let path = write_model("metrics_serial", OSC);
    let out = omc()
        .arg(&path)
        .args(["simulate", "--tend", "0.5", "--metrics"])
        .output()
        .expect("run omc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("solver.rhs_calls"), "{stderr}");
    assert!(stderr.contains("solver.steps_accepted"), "{stderr}");
}
