//! # ObjectMath-rs
//!
//! A Rust reproduction of *"Generating Parallel Code from Object Oriented
//! Mathematical Models"* (Andersson & Fritzson, PPoPP 1995): an
//! object-oriented equation-modeling language, a symbolic compilation
//! pipeline that extracts parallelism from equation-based models, and a
//! supervisor/worker parallel runtime driven by an ODE solver suite.
//!
//! This facade crate re-exports the workspace crates under stable module
//! names; see each crate's documentation for details:
//!
//! * [`expr`] — symbolic expression engine (the Mathematica replacement),
//! * [`lang`] — ObjectMath language frontend and model flattening,
//! * [`ir`] — ODE internal form and causalization,
//! * [`analysis`] — dependency graphs, strongly connected components,
//!   equation-system-level partitioning,
//! * [`codegen`] — CSE, task partitioning, LPT scheduling, bytecode and
//!   Fortran 90 / C++ emission,
//! * [`lint`] — whole-model static analyzer and generated-schedule race
//!   detector (`omc lint`),
//! * [`runtime`] — supervisor/worker parallel runtime and machine models,
//! * [`solver`] — ODE solvers (explicit, multistep, BDF, LSODA-style
//!   switching, partitioned co-simulation),
//! * [`models`] — the paper's application models.
//!
//! The whole pipeline in one breath — compile a model, causalize it,
//! and integrate:
//!
//! ```
//! let src = "model Osc;
//!   Real x(start = 1.0);
//!   Real y;
//!   equation
//!     der(x) = y;
//!     der(y) = -x;
//! end Osc;";
//! let flat = objectmath::lang::compile(src).unwrap();
//! let ir = objectmath::ir::causalize(&flat).unwrap();
//! assert_eq!(ir.initial_state(), vec![1.0, 0.0]);
//! ```

pub use om_analysis as analysis;
pub use om_codegen as codegen;
pub use om_expr as expr;
pub use om_ir as ir;
pub use om_lang as lang;
pub use om_lint as lint;
pub use om_models as models;
pub use om_runtime as runtime;
pub use om_solver as solver;

#[cfg(test)]
mod tests {
    const OSC: &str = "model Osc;
      Real x(start = 1.0);
      Real y;
      equation
        der(x) = y;
        der(y) = -x;
    end Osc;";

    /// The facade re-exports compose: source → flatten → causalize →
    /// codegen → LPT schedule, all through the `objectmath::*` paths.
    #[test]
    fn facade_pipeline_composes() {
        let flat = crate::lang::compile(OSC).expect("compile");
        let ir = crate::ir::causalize(&flat).expect("causalize");
        assert_eq!(ir.initial_state().len(), 2);
        let program = crate::codegen::CodeGenerator::default().generate(&ir);
        let sched = program.schedule(2);
        assert_eq!(sched.assignment.len(), program.graph.tasks.len());
    }
}
