//! `omc` — the ObjectMath-rs compiler driver.
//!
//! A command-line front door over the whole pipeline, in the spirit of
//! the interactive environment of paper Figure 2 / the batch flow of
//! Figure 7:
//!
//! ```text
//! omc MODEL.om analyze                  # SCCs, pipeline levels, DOT
//! omc MODEL.om lint [--json] [--deny warnings|info]   # static analysis
//! omc MODEL.om emit --lang f90|cpp|mma  # generated code on stdout
//! omc MODEL.om tasks --workers N        # task table + LPT schedule
//! omc MODEL.om simulate --tend T [--workers N] [--solver dopri5|rk4|abm|bdf|lsoda]
//!               [--set state=value]...  # run, print final state
//! ```

use objectmath::analysis::{build_dependency_graph, partition_by_scc, to_dot};
use objectmath::codegen::{emit_cpp, emit_fortran, CodeGenerator, ModelRegistry};
use objectmath::ir::{causalize, OdeIr};
use objectmath::runtime::ensemble::json;
use objectmath::runtime::{
    run_sweep, ExecutorPool, FaultConfig, FaultPlan, ParallelRhs, RuntimeError, ScenarioRunConfig,
    ScenarioSpec, ServeConfig, Server, Strategy, SweepConfig, SweepError, SweepFaultPlan,
};
use objectmath::solver::{
    abm4, bdf, dopri5, lsoda, rk4, BdfOptions, LsodaOptions, OdeSystem, SolveError, Tolerances,
};
use std::fmt;
use std::process::ExitCode;
use std::time::Duration;

/// Typed CLI failure; each class maps to a distinct exit code so scripts
/// can tell a user error from a numerical failure from a runtime fault.
#[derive(Debug)]
enum CliError {
    /// Bad command line (exit 2).
    Usage(String),
    /// File system problem (exit 1).
    Io(String),
    /// Model does not compile (exit 1).
    Compile(String),
    /// The integration failed numerically (exit 3).
    Solve(SolveError),
    /// The parallel runtime failed (exit 4).
    Runtime(RuntimeError),
    /// `lint` found problems; the code separates errors (5) from denied
    /// warnings (6) and denied info (7) so CI can gate on each class.
    Lint { code: u8, summary: String },
    /// The sweep driver could not run at all (bad checkpoint, bad
    /// config): exit 2 for configuration, 1 for checkpoint I/O.
    Sweep(SweepError),
    /// The sweep ran to the end but not every scenario completed: the
    /// documented partial-failure exit code 8. The manifest (written
    /// before this error is raised) accounts for every scenario.
    SweepPartial { summary: String },
    /// `omc request` was shed by the service's admission control: the
    /// documented load-shedding exit code 9. Nothing executed; the
    /// typed reason says which quota tripped.
    Overloaded { reason: String },
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Io(_) | CliError::Compile(_) => 1,
            CliError::Solve(_) => 3,
            CliError::Runtime(_) => 4,
            CliError::Lint { code, .. } => *code,
            CliError::Sweep(SweepError::Config(_)) => 2,
            CliError::Sweep(_) => 1,
            CliError::SweepPartial { .. } => 8,
            CliError::Overloaded { .. } => 9,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Io(m) => write!(f, "{m}"),
            CliError::Compile(m) => write!(f, "error: {m}"),
            CliError::Solve(e) => write!(f, "solver error: {e}"),
            CliError::Runtime(e) => write!(f, "runtime error: {e}"),
            CliError::Lint { summary, .. } => write!(f, "lint: {summary}"),
            CliError::Sweep(e) => write!(f, "{e}"),
            CliError::SweepPartial { summary } => write!(f, "sweep partial failure: {summary}"),
            CliError::Overloaded { reason } => write!(f, "request shed by service: {reason}"),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("omc: {error}");
            ExitCode::from(error.exit_code())
        }
    }
}

fn usage() -> String {
    "usage: omc <model.om> <analyze|lint|emit|tasks|simulate|sweep|request> [options]\n\
     \x20      omc serve <--socket PATH|--stdio> [options]\n\
     \n\
     model: a .om file path, or a parameterized builtin name\n\
            (heat1d | bearing2d | bearing3d)\n\
       --size N                    override the builtin's size: heat1d\n\
                                   interior cells, bearing roller count\n\
       --array-aware               keep instance arrays symbolic (array\n\
                                   classes + loop tasks); default fully\n\
                                   scalarizes, the bitwise oracle\n\
     \n\
     commands:\n\
       analyze                     dependency graph, SCCs, pipeline levels\n\
         --dot                     print Graphviz instead of the table\n\
       lint                        static analysis + schedule race detection;\n\
                                   with --array-aware, lints the symbolic\n\
                                   array pipeline and verifies loop-task\n\
                                   schedules with the affine dependence\n\
                                   engine (no expansion on clean schedules)\n\
         --json                    machine-readable JSON report on stdout\n\
         --deny warnings|info      also fail on warnings (exit 6) or on\n\
                                   warnings+info (exit 7); errors always exit 5\n\
       lint --explain OM0xx        describe a diagnostic code: severity,\n\
                                   summary, explanation, minimal example\n\
                                   (no model operand)\n\
       emit                        generated code on stdout\n\
         --lang f90|cpp|mma        target language (default f90)\n\
         --serial                  serial code with global CSE\n\
         --workers N               workers for the parallel version (default 4)\n\
       tasks                       task partitioning and LPT schedule\n\
         --workers N               (default 4)\n\
       simulate                    integrate and print the final state\n\
         --tend T                  end time (default 1.0)\n\
         --solver NAME             dopri5|rk4|abm|bdf|lsoda (default dopri5)\n\
         --workers N               parallel RHS workers (default 1 = serial)\n\
         --executor barrier|ws     parallel execution strategy (default barrier;\n\
                                   ws = dependency-driven work stealing)\n\
         --set state=value         override a start value (repeatable)\n\
         --rtol R --atol A         tolerances (default 1e-6 / 1e-9)\n\
         --h H                     fixed step for rk4 (default (tend-t0)/1000)\n\
         --fault-seed SEED         seeded worker-level fault plan (chaos runs;\n\
                                   forces the barrier executor's recovery path)\n\
       sweep                       run N parameter scenarios over one compiled model\n\
         --params FILE             scenario vectors: .json (array of objects) or\n\
                                   .csv (header = state names)\n\
         --grid state=a:b:n        linspace scenarios (repeatable; flags combine\n\
                                   as a cartesian product)\n\
         --tend T --h H            fixed-step RK4 span per scenario (bit-reproducible)\n\
         --concurrency N           scenario workers (default 4)\n\
         --workers N               ODE workers per scenario (default 1 = serial)\n\
         --executor barrier|ws     executor when --workers > 1\n\
         --batch K                 evaluate K scenarios per batched integration\n\
                                   (SoA lanes, bitwise-identical to --batch 1;\n\
                                   requires --workers 1, else falls back to 1)\n\
         --deadline-ms MS          per-scenario wall-clock deadline\n\
         --max-rhs N               per-scenario RHS call budget\n\
         --retries N               retries for transient faults (default 2)\n\
         --checkpoint FILE         append-only JSONL checkpoint\n\
         --resume                  carry terminal outcomes forward from --checkpoint\n\
         --manifest FILE           write the deterministic manifest JSON\n\
         --stop-after N            admit only N scenarios (interruption test hook)\n\
         --fault-seed SEED         seeded per-scenario fault plan (panic/straggle/NaN)\n\
         --fault-rates P,S,N       per-mille rates for the seeded plan (default 60,40,50)\n\
         --straggle-ms MS          injected straggler sleep (default 50)\n\
       serve                       resident ensemble service: JSONL requests over\n\
                                   a Unix socket, compiled models stay warm across\n\
                                   requests (no model operand; SIGTERM drains\n\
                                   gracefully: in-flight requests finish, exit 0)\n\
         --socket PATH             listen on a Unix socket at PATH\n\
         --stdio                   serve stdin/stdout instead (CI and scripting;\n\
                                   EOF drains)\n\
         --concurrency N           resident scenario workers (default 4)\n\
         --registry-cap N          warm compiled models kept (LRU eviction past\n\
                                   this; 0 = unbounded; default 32)\n\
         --max-scenarios N         per-request scenario quota (default 1024)\n\
         --max-inflight N          service-wide in-flight scenario cap (default 4096)\n\
         --rate-burst B            per-client token-bucket burst, in requests\n\
                                   (0 = no rate limit; default 0)\n\
         --rate-per-sec R          per-client sustained request rate (default 0)\n\
       request                     client for `omc serve`: send the model + a\n\
                                   scenario batch, print the JSONL response\n\
                                   transcript on stdout\n\
         --socket PATH             connect to a serving `omc serve --socket PATH`\n\
         --grid/--params/--tend/--h/--deadline-ms/--max-rhs/--retries/\n\
         --workers/--executor/--batch   exactly as for sweep\n\
         --repeat N                send the request N times on one connection\n\
                                   (the 2nd+ hit the warm registry; default 1)\n\
         --stats                   also send an op:\"stats\" request at the end\n\
                                   (`omc request --stats --socket PATH` alone\n\
                                   queries stats without running anything)\n\
     \n\
     observability (any command):\n\
       --trace FILE.json           write a chrome://tracing / Perfetto trace\n\
       --metrics                   print span totals and metrics to stderr\n\
     \n\
     exit codes: 0 ok; 1 io/compile/checkpoint; 2 usage; 3 solver; 4 runtime;\n\
                 5/6/7 lint errors/denied warnings/denied info;\n\
                 8 sweep/request partial failure (some scenarios quarantined,\n\
                 past deadline, or skipped — see the manifest/transcript);\n\
                 9 request shed by service admission control (typed reason)"
        .to_owned()
}

/// Resolve a builtin model name (`heat1d`, `bearing2d`, `bearing3d`) to
/// generated source, applying the `--size` override. A path that names a
/// real file always wins, so a model file called `heat1d` still loads.
fn builtin_source(path: &str, opts: &Flags) -> Result<Option<String>, CliError> {
    if std::path::Path::new(path).exists() {
        return Ok(None);
    }
    if matches!(path, "heat1d" | "bearing2d" | "bearing3d") && opts.size == Some(0) {
        return Err(CliError::Usage("--size must be >= 1".to_owned()));
    }
    let source = match path {
        "heat1d" => {
            // The builtin uses the *distributed* stencil with advection on
            // (the E15 configuration): its sibling terms are ordered by
            // pairwise-distinct constant coefficients, so `--array-aware`
            // classifies the interior rows into one array class. The
            // nested form from `source()` deliberately falls back to
            // scalarization (tied neighbor coefficients).
            let mut cfg = objectmath::models::heat1d::HeatConfig {
                velocity: 0.4,
                ..Default::default()
            };
            if let Some(n) = opts.size {
                cfg.cells = n;
            }
            objectmath::models::heat1d::source_distributed(&cfg)
        }
        "bearing2d" => {
            let mut cfg = objectmath::models::bearing2d::BearingConfig::default();
            if let Some(n) = opts.size {
                cfg.rollers = n;
            }
            objectmath::models::bearing2d::source(&cfg)
        }
        "bearing3d" => {
            let mut cfg = objectmath::models::bearing3d::Bearing3dConfig::default();
            if let Some(n) = opts.size {
                cfg.rollers = n;
            }
            objectmath::models::bearing3d::source(&cfg)
        }
        _ => return Ok(None),
    };
    Ok(Some(source))
}

fn run(args: &[String]) -> Result<(), CliError> {
    if args.len() < 2 {
        return Err(CliError::Usage(usage()));
    }
    // `omc lint --explain OM0xx` takes no model operand: the first arg
    // IS the command.
    if args[0] == "lint" && args[1] == "--explain" {
        let code = args.get(2).ok_or_else(|| {
            CliError::Usage("lint --explain needs a diagnostic code (e.g. OM040)".to_owned())
        })?;
        return explain(code);
    }

    // `omc serve` is a resident process, not a per-model invocation: no
    // model operand (models arrive inside requests).
    if args[0] == "serve" {
        let opts = parse_flags(&args[1..])?;
        if opts.trace.is_some() || opts.metrics {
            om_obs::init(&om_obs::ObsConfig::enabled());
        }
        let result = serve_cmd(&opts);
        let export = export_obs(&opts);
        return result.and(export);
    }

    // `omc request --stats --socket PATH` queries service stats without
    // a model operand; `omc MODEL request ...` (below) runs scenarios.
    if args[0] == "request" {
        let opts = parse_flags(&args[1..])?;
        if !opts.stats {
            return Err(CliError::Usage(
                "request without a model operand needs --stats (to run scenarios: \
                 omc MODEL request --socket PATH ...)"
                    .into(),
            ));
        }
        return request_cmd(None, &opts);
    }

    let path = &args[0];
    let command = args[1].as_str();
    let opts = parse_flags(&args[2..])?;

    // Switch recording on before any instrumented object is built (pools
    // cache their metric handles at construction time).
    if opts.trace.is_some() || opts.metrics {
        om_obs::init(&om_obs::ObsConfig::enabled());
    }

    let source = match builtin_source(path, &opts)? {
        Some(generated) => generated,
        None => std::fs::read_to_string(path)
            .map_err(|e| CliError::Io(format!("cannot read `{path}`: {e}")))?,
    };

    // `lint` runs before (and instead of) the normal compile: its whole
    // point is producing diagnostics for models the pipeline rejects.
    if command == "lint" {
        let result = lint(path, &source, &opts);
        let export = export_obs(&opts);
        return result.and(export);
    }

    // `sweep` compiles through the content-hashed model registry (compile
    // once, reuse across scenarios) instead of the one-shot path below.
    if command == "sweep" {
        let result = sweep(&source, &opts);
        let export = export_obs(&opts);
        return result.and(export);
    }

    // `request` ships the raw source to a resident `omc serve` process —
    // the service compiles (or reuses) it, not this client.
    if command == "request" {
        let result = request_cmd(Some(&source), &opts);
        let export = export_obs(&opts);
        return result.and(export);
    }

    let flat = if opts.array_aware {
        objectmath::lang::compile_arrays(&source)
    } else {
        objectmath::lang::compile(&source)
    }
    .map_err(|e| CliError::Compile(e.to_string()))?;
    let mut ir = causalize(&flat).map_err(|e| CliError::Compile(e.to_string()))?;
    objectmath::ir::verify_compilable(&ir).map_err(|e| CliError::Compile(e.to_string()))?;

    let result = match command {
        "analyze" => analyze(&ir, &opts),
        "emit" => emit(&ir, &opts),
        "tasks" => tasks(&ir, &opts),
        "simulate" => simulate(&mut ir, &opts),
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`\n{}",
            usage()
        ))),
    };
    // Export even after a failed command — a trace of a failing run is
    // exactly when you want one — but keep the command's error.
    let export = export_obs(&opts);
    result.and(export)
}

/// Write `--trace` / print `--metrics` output. Worker pools have been
/// dropped by the time the command returns, so every worker thread has
/// flushed its span buffer.
fn export_obs(opts: &Flags) -> Result<(), CliError> {
    if opts.trace.is_none() && !opts.metrics {
        return Ok(());
    }
    om_obs::flush_thread();
    let trace = om_obs::collect();
    if let Some(path) = &opts.trace {
        let json = om_obs::chrome::to_chrome_json(&trace);
        std::fs::write(path, &json)
            .map_err(|e| CliError::Io(format!("cannot write `{path}`: {e}")))?;
        eprintln!(
            "[trace: {} events on {} threads -> {path}]",
            trace.events.len(),
            trace.threads.len()
        );
    }
    if opts.metrics {
        eprint!("{}", om_obs::summary(&trace));
    }
    Ok(())
}

#[derive(Default)]
struct Flags {
    dot: bool,
    serial: bool,
    json: bool,
    deny: Option<String>,
    lang: String,
    solver: String,
    executor: Strategy,
    workers: usize,
    tend: f64,
    rtol: f64,
    atol: f64,
    h: f64,
    sets: Vec<(String, f64)>,
    trace: Option<String>,
    metrics: bool,
    // sweep / chaos options
    params: Option<String>,
    grid: Vec<String>,
    concurrency: usize,
    batch: usize,
    deadline_ms: u64,
    max_rhs: u64,
    retries: u32,
    checkpoint: Option<String>,
    resume: bool,
    manifest: Option<String>,
    stop_after: Option<usize>,
    fault_seed: Option<u64>,
    fault_rates: (u32, u32, u32),
    straggle_ms: u64,
    size: Option<usize>,
    array_aware: bool,
    // serve / request options
    socket: Option<String>,
    stdio: bool,
    registry_cap: usize,
    max_scenarios: usize,
    max_inflight: usize,
    rate_burst: f64,
    rate_per_sec: f64,
    repeat: usize,
    stats: bool,
}

fn parse_flags(rest: &[String]) -> Result<Flags, CliError> {
    let mut f = Flags {
        lang: "f90".into(),
        solver: "dopri5".into(),
        workers: 0,
        tend: 1.0,
        rtol: 1e-6,
        atol: 1e-9,
        h: 0.0,
        concurrency: 4,
        batch: 1,
        retries: 2,
        fault_rates: (60, 40, 50),
        straggle_ms: 50,
        registry_cap: 32,
        max_scenarios: 1024,
        max_inflight: 4096,
        repeat: 1,
        ..Flags::default()
    };
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("flag {name} needs a value")))
        };
        match flag.as_str() {
            "--size" => {
                f.size = Some(
                    value("--size")?
                        .parse()
                        .map_err(|e| CliError::Usage(format!("--size: {e}")))?,
                )
            }
            "--array-aware" => f.array_aware = true,
            "--dot" => f.dot = true,
            "--serial" => f.serial = true,
            "--json" => f.json = true,
            "--deny" => f.deny = Some(value("--deny")?),
            "--metrics" => f.metrics = true,
            "--trace" => f.trace = Some(value("--trace")?),
            "--lang" => f.lang = value("--lang")?,
            "--solver" => f.solver = value("--solver")?,
            "--executor" => {
                f.executor = value("--executor")?
                    .parse()
                    .map_err(|e| CliError::Usage(format!("--executor: {e}")))?
            }
            "--workers" => {
                f.workers = value("--workers")?
                    .parse()
                    .map_err(|e| CliError::Usage(format!("--workers: {e}")))?
            }
            "--tend" => {
                f.tend = value("--tend")?
                    .parse()
                    .map_err(|e| CliError::Usage(format!("--tend: {e}")))?
            }
            "--rtol" => {
                f.rtol = value("--rtol")?
                    .parse()
                    .map_err(|e| CliError::Usage(format!("--rtol: {e}")))?
            }
            "--atol" => {
                f.atol = value("--atol")?
                    .parse()
                    .map_err(|e| CliError::Usage(format!("--atol: {e}")))?
            }
            "--h" => {
                f.h = value("--h")?
                    .parse()
                    .map_err(|e| CliError::Usage(format!("--h: {e}")))?
            }
            "--set" => {
                let spec = value("--set")?;
                let (name, val) = spec.split_once('=').ok_or_else(|| {
                    CliError::Usage(format!("--set expects state=value, got `{spec}`"))
                })?;
                let val: f64 = val
                    .parse()
                    .map_err(|e| CliError::Usage(format!("--set {name}: {e}")))?;
                f.sets.push((name.to_owned(), val));
            }
            "--params" => f.params = Some(value("--params")?),
            "--grid" => f.grid.push(value("--grid")?),
            "--concurrency" => {
                f.concurrency = value("--concurrency")?
                    .parse()
                    .map_err(|e| CliError::Usage(format!("--concurrency: {e}")))?
            }
            "--batch" => {
                f.batch = value("--batch")?
                    .parse()
                    .map_err(|e| CliError::Usage(format!("--batch: {e}")))?
            }
            "--deadline-ms" => {
                f.deadline_ms = value("--deadline-ms")?
                    .parse()
                    .map_err(|e| CliError::Usage(format!("--deadline-ms: {e}")))?
            }
            "--max-rhs" => {
                f.max_rhs = value("--max-rhs")?
                    .parse()
                    .map_err(|e| CliError::Usage(format!("--max-rhs: {e}")))?
            }
            "--retries" => {
                f.retries = value("--retries")?
                    .parse()
                    .map_err(|e| CliError::Usage(format!("--retries: {e}")))?
            }
            "--checkpoint" => f.checkpoint = Some(value("--checkpoint")?),
            "--resume" => f.resume = true,
            "--manifest" => f.manifest = Some(value("--manifest")?),
            "--stop-after" => {
                f.stop_after = Some(
                    value("--stop-after")?
                        .parse()
                        .map_err(|e| CliError::Usage(format!("--stop-after: {e}")))?,
                )
            }
            "--fault-seed" => {
                f.fault_seed = Some(
                    value("--fault-seed")?
                        .parse()
                        .map_err(|e| CliError::Usage(format!("--fault-seed: {e}")))?,
                )
            }
            "--fault-rates" => {
                let spec = value("--fault-rates")?;
                let parts: Vec<&str> = spec.split(',').collect();
                let parse = |s: &str| -> Result<u32, CliError> {
                    s.trim()
                        .parse()
                        .map_err(|e| CliError::Usage(format!("--fault-rates `{spec}`: {e}")))
                };
                if parts.len() != 3 {
                    return Err(CliError::Usage(format!(
                        "--fault-rates expects panic,straggle,nan per-mille, got `{spec}`"
                    )));
                }
                f.fault_rates = (parse(parts[0])?, parse(parts[1])?, parse(parts[2])?);
            }
            "--straggle-ms" => {
                f.straggle_ms = value("--straggle-ms")?
                    .parse()
                    .map_err(|e| CliError::Usage(format!("--straggle-ms: {e}")))?
            }
            "--socket" => f.socket = Some(value("--socket")?),
            "--stdio" => f.stdio = true,
            "--registry-cap" => {
                f.registry_cap = value("--registry-cap")?
                    .parse()
                    .map_err(|e| CliError::Usage(format!("--registry-cap: {e}")))?
            }
            "--max-scenarios" => {
                f.max_scenarios = value("--max-scenarios")?
                    .parse()
                    .map_err(|e| CliError::Usage(format!("--max-scenarios: {e}")))?
            }
            "--max-inflight" => {
                f.max_inflight = value("--max-inflight")?
                    .parse()
                    .map_err(|e| CliError::Usage(format!("--max-inflight: {e}")))?
            }
            "--rate-burst" => {
                f.rate_burst = value("--rate-burst")?
                    .parse()
                    .map_err(|e| CliError::Usage(format!("--rate-burst: {e}")))?
            }
            "--rate-per-sec" => {
                f.rate_per_sec = value("--rate-per-sec")?
                    .parse()
                    .map_err(|e| CliError::Usage(format!("--rate-per-sec: {e}")))?
            }
            "--repeat" => {
                f.repeat = value("--repeat")?
                    .parse()
                    .map_err(|e| CliError::Usage(format!("--repeat: {e}")))?
            }
            "--stats" => f.stats = true,
            other => {
                return Err(CliError::Usage(format!(
                    "unknown flag `{other}`\n{}",
                    usage()
                )))
            }
        }
    }
    Ok(f)
}

/// Run the whole-model static analyzer and the generated-schedule race
/// detector, print the report (text or `--json`), and turn the severity
/// classes into exit codes: errors → 5; with `--deny warnings` any
/// warning → 6; with `--deny info` any warning or info → 6/7.
fn lint(path: &str, source: &str, opts: &Flags) -> Result<(), CliError> {
    use objectmath::lint::Severity;

    let deny_warnings = matches!(opts.deny.as_deref(), Some("warnings") | Some("info"));
    let deny_info = opts.deny.as_deref() == Some("info");
    if let Some(other) = opts.deny.as_deref() {
        if other != "warnings" && other != "info" {
            return Err(CliError::Usage(format!(
                "--deny expects `warnings` or `info`, got `{other}`"
            )));
        }
    }

    let report = objectmath::lint::lint_source_with(
        source,
        objectmath::lint::LintOptions {
            array_aware: opts.array_aware,
        },
    );
    if opts.json {
        println!("{}", report.render_json(path));
    } else {
        print!("{}", report.render_text(path));
    }

    let errors = report.count(Severity::Error);
    let warnings = report.count(Severity::Warn);
    let info = report.count(Severity::Info);
    if errors > 0 {
        Err(CliError::Lint {
            code: 5,
            summary: format!("{errors} error(s)"),
        })
    } else if deny_warnings && warnings > 0 {
        Err(CliError::Lint {
            code: 6,
            summary: format!("{warnings} warning(s) denied by --deny"),
        })
    } else if deny_info && info > 0 {
        Err(CliError::Lint {
            code: 7,
            summary: format!("{info} info diagnostic(s) denied by --deny info"),
        })
    } else {
        Ok(())
    }
}

/// `omc lint --explain OM0xx`: print a code's registered severity,
/// summary, longer explanation, owning pass, and minimal example — all
/// straight from the registry, so the help cannot drift from the
/// analyzer.
fn explain(code: &str) -> Result<(), CliError> {
    let Some(info) = objectmath::lint::code_info(code) else {
        let known: Vec<&str> = objectmath::lint::CODES.iter().map(|c| c.code).collect();
        return Err(CliError::Usage(format!(
            "unknown diagnostic code `{code}`; known codes: {}",
            known.join(", ")
        )));
    };
    println!("{} ({}): {}", info.code, info.severity, info.summary);
    if let Some(p) = objectmath::lint::PASSES
        .iter()
        .find(|p| p.codes.contains(&info.code))
    {
        println!("pass: {} — {}", p.name, p.description);
    }
    println!();
    println!("{}", info.explain);
    println!();
    println!("example:");
    for line in info.example.lines() {
        println!("  {line}");
    }
    Ok(())
}

fn analyze(ir: &OdeIr, opts: &Flags) -> Result<(), CliError> {
    let dep = build_dependency_graph(ir);
    if opts.dot {
        print!("{}", to_dot(&dep, &ir.name));
        return Ok(());
    }
    let part = partition_by_scc(&dep);
    println!(
        "model `{}`: {} states, {} algebraic equations, {} dependencies",
        ir.name,
        ir.dim(),
        ir.algebraics.len(),
        dep.graph.edge_count()
    );
    println!("SCC sizes (largest first): {:?}", part.scc_sizes());
    for (lvl, subs) in part.levels.iter().enumerate() {
        let summary: Vec<String> = subs
            .iter()
            .map(|&s| {
                let sub = &part.subsystems[s];
                let size = sub.states.len() + sub.algebraics.len();
                let head = sub
                    .states
                    .first()
                    .or(sub.algebraics.first())
                    .map(|x| x.name())
                    .unwrap_or("?");
                format!("[{size}: {head}…]")
            })
            .collect();
        println!("level {lvl}: {}", summary.join(" "));
    }
    Ok(())
}

fn emit(ir: &OdeIr, opts: &Flags) -> Result<(), CliError> {
    let generator = CodeGenerator::default();
    let workers = if opts.workers == 0 { 4 } else { opts.workers };
    match (opts.lang.as_str(), opts.serial) {
        ("mma", _) => print!("{}", generator.intermediate_code(ir)),
        ("f90", true) => print!(
            "{}",
            emit_fortran::emit_serial(ir, &generator.options.cost_model).text
        ),
        ("cpp", true) => print!(
            "{}",
            emit_cpp::emit_serial(ir, &generator.options.cost_model).text
        ),
        ("f90", false) | ("cpp", false) => {
            let program = generator.generate(ir);
            let sched = program.schedule(workers);
            let src = if opts.lang == "f90" {
                emit_fortran::emit_parallel(
                    &program.tasks,
                    &sched.assignment,
                    workers,
                    ir,
                    &generator.options.cost_model,
                )
            } else {
                emit_cpp::emit_parallel(
                    &program.tasks,
                    &sched.assignment,
                    workers,
                    ir,
                    &generator.options.cost_model,
                )
            };
            print!("{}", src.text);
        }
        (other, _) => {
            return Err(CliError::Usage(format!(
                "unknown --lang `{other}` (f90|cpp|mma)"
            )))
        }
    }
    Ok(())
}

fn tasks(ir: &OdeIr, opts: &Flags) -> Result<(), CliError> {
    let workers = if opts.workers == 0 { 4 } else { opts.workers };
    let program = CodeGenerator::default().generate(ir);
    let sched = program.schedule(workers);
    println!(
        "{} tasks, total {} flops, schedule on {workers} workers \
         (makespan {}, imbalance {:.3}):",
        program.graph.tasks.len(),
        program.graph.total_cost(),
        sched.makespan,
        sched.imbalance()
    );
    println!(
        "{:<5} {:<28} {:>10} {:>7}",
        "id", "label", "flops", "worker"
    );
    for task in &program.graph.tasks {
        println!(
            "{:<5} {:<28} {:>10} {:>7}",
            task.id,
            truncate(&task.label, 28),
            task.static_cost,
            sched.assignment[task.id]
        );
    }
    Ok(())
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_owned()
    } else {
        let cut: String = s.chars().take(n - 1).collect();
        format!("{cut}…")
    }
}

/// Parse `--grid state=a:b:n` into `(name, linspace)`.
fn parse_grid(spec: &str) -> Result<(String, Vec<f64>), CliError> {
    let err = || {
        CliError::Usage(format!(
            "--grid expects state=start:end:count, got `{spec}`"
        ))
    };
    let (name, range) = spec.split_once('=').ok_or_else(err)?;
    let parts: Vec<&str> = range.split(':').collect();
    if parts.len() != 3 {
        return Err(err());
    }
    let a: f64 = parts[0].parse().map_err(|_| err())?;
    let b: f64 = parts[1].parse().map_err(|_| err())?;
    let n: usize = parts[2].parse().map_err(|_| err())?;
    if n == 0 {
        return Err(err());
    }
    let values = if n == 1 {
        vec![a]
    } else {
        (0..n)
            .map(|i| a + (b - a) * i as f64 / (n - 1) as f64)
            .collect()
    };
    Ok((name.to_owned(), values))
}

/// Scenario vectors from `--grid` flags: the cartesian product of the
/// per-state linspaces, in flag order (last flag varies fastest).
fn grid_scenarios(grids: &[String]) -> Result<Vec<Vec<(String, f64)>>, CliError> {
    let axes: Vec<(String, Vec<f64>)> = grids
        .iter()
        .map(|g| parse_grid(g))
        .collect::<Result<_, _>>()?;
    let mut combos: Vec<Vec<(String, f64)>> = vec![Vec::new()];
    for (name, values) in &axes {
        let mut next = Vec::with_capacity(combos.len() * values.len());
        for combo in &combos {
            for v in values {
                let mut extended = combo.clone();
                extended.push((name.clone(), *v));
                next.push(extended);
            }
        }
        combos = next;
    }
    Ok(combos)
}

/// Scenario vectors from a `--params` file: JSON (array of objects) or
/// CSV (header row of state names).
fn params_scenarios(path: &str) -> Result<Vec<Vec<(String, f64)>>, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Io(format!("cannot read `{path}`: {e}")))?;
    if path.ends_with(".json") {
        let doc =
            json::parse(&text).map_err(|e| CliError::Usage(format!("--params {path}: {e}")))?;
        let rows = doc
            .as_arr()
            .ok_or_else(|| CliError::Usage(format!("--params {path}: expected a JSON array")))?;
        rows.iter()
            .map(|row| {
                let fields = row.as_obj().ok_or_else(|| {
                    CliError::Usage(format!("--params {path}: each element must be an object"))
                })?;
                fields
                    .iter()
                    .map(|(k, v)| {
                        v.as_f64().map(|x| (k.clone(), x)).ok_or_else(|| {
                            CliError::Usage(format!("--params {path}: `{k}` must be a number"))
                        })
                    })
                    .collect()
            })
            .collect()
    } else {
        // CSV: header = state names, one scenario per row.
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header: Vec<&str> = lines
            .next()
            .ok_or_else(|| CliError::Usage(format!("--params {path}: empty file")))?
            .split(',')
            .map(str::trim)
            .collect();
        lines
            .enumerate()
            .map(|(row, line)| {
                let cells: Vec<&str> = line.split(',').map(str::trim).collect();
                if cells.len() != header.len() {
                    return Err(CliError::Usage(format!(
                        "--params {path}: row {} has {} cells, header has {}",
                        row + 2,
                        cells.len(),
                        header.len()
                    )));
                }
                header
                    .iter()
                    .zip(&cells)
                    .map(|(name, cell)| {
                        cell.parse::<f64>()
                            .map(|x| (name.to_string(), x))
                            .map_err(|e| {
                                CliError::Usage(format!("--params {path}: row {}: {e}", row + 2))
                            })
                    })
                    .collect()
            })
            .collect()
    }
}

/// The resilient ensemble driver: compile once through the registry, run
/// every scenario to a terminal typed state, account for all of them.
fn sweep(source: &str, opts: &Flags) -> Result<(), CliError> {
    let registry = ModelRegistry::new();
    let model = registry
        .get_or_compile(source)
        .map_err(|e| CliError::Compile(e.to_string()))?;

    let mut vectors = Vec::new();
    if let Some(path) = &opts.params {
        vectors.extend(params_scenarios(path)?);
    }
    if !opts.grid.is_empty() {
        vectors.extend(grid_scenarios(&opts.grid)?);
    }
    if vectors.is_empty() {
        return Err(CliError::Usage(
            "sweep needs scenarios: --params FILE and/or --grid state=a:b:n".into(),
        ));
    }
    // Fail fast on unknown state names (before spinning anything up).
    for vector in &vectors {
        for (name, _) in vector {
            if model.ir().find_state(name).is_none() {
                return Err(CliError::Usage(format!(
                    "sweep: no state named `{name}` in model `{}`",
                    model.ir().name
                )));
            }
        }
    }
    let scenarios: Vec<ScenarioSpec> = vectors
        .into_iter()
        .enumerate()
        .map(|(i, overrides)| ScenarioSpec::new(i, overrides))
        .collect();

    let faults = match opts.fault_seed {
        Some(seed) => {
            let (p, s, n) = opts.fault_rates;
            SweepFaultPlan::seeded(
                seed,
                scenarios.len(),
                p,
                s,
                n,
                Duration::from_millis(opts.straggle_ms),
            )
        }
        None => SweepFaultPlan::none(),
    };
    let h = if opts.h > 0.0 {
        opts.h
    } else {
        opts.tend / 1000.0
    };
    let cfg = SweepConfig {
        run: ScenarioRunConfig {
            t0: 0.0,
            tend: opts.tend,
            h,
            deadline: (opts.deadline_ms > 0).then(|| Duration::from_millis(opts.deadline_ms)),
            max_rhs_calls: opts.max_rhs,
            max_retries: opts.retries,
            ..ScenarioRunConfig::default()
        },
        concurrency: opts.concurrency.max(1),
        workers: opts.workers.max(1),
        strategy: opts.executor,
        batch: opts.batch.max(1),
        faults,
        checkpoint: opts.checkpoint.as_ref().map(std::path::PathBuf::from),
        resume: opts.resume,
        stop_after: opts.stop_after,
        ..SweepConfig::default()
    };

    if opts.batch > 1 && opts.workers > 1 {
        eprintln!(
            "[sweep: --batch {} ignored with --workers {} — batching and \
             per-scenario pools compete for the same cores; running scalar]",
            opts.batch, opts.workers
        );
    }
    let result = run_sweep(&model, &scenarios, &cfg).map_err(CliError::Sweep)?;
    let manifest = &result.manifest;
    let report = &result.report;

    if let Some(path) = &opts.manifest {
        std::fs::write(path, manifest.render_json())
            .map_err(|e| CliError::Io(format!("cannot write `{path}`: {e}")))?;
    }
    println!(
        "sweep `{}` [{}]: {} scenarios = {} completed, {} quarantined, \
         {} deadline-exceeded, {} skipped ({} unaccounted)",
        model.ir().name,
        model.key(),
        manifest.scenarios(),
        manifest.completed(),
        manifest.quarantined(),
        manifest.deadline_exceeded(),
        manifest.skipped(),
        manifest.unaccounted(),
    );
    println!(
        "  {} fresh + {} from checkpoint in {:.3}s ({:.1} scenarios/s, p50 {:.2}ms, \
         p99 {:.2}ms, strategy {}, batch {}, registry {} hit(s) {} miss(es))",
        report.fresh,
        report.from_checkpoint,
        report.wall.as_secs_f64(),
        report.throughput_per_sec(),
        report.latency_percentile_ns(0.50) as f64 / 1e6,
        report.latency_percentile_ns(0.99) as f64 / 1e6,
        report.effective_strategy,
        report.effective_batch,
        registry.hits(),
        registry.misses(),
    );
    if report.degraded {
        eprintln!(
            "[sweep degraded: concurrency shed to {} after deadline storms]",
            report.final_concurrency
        );
    }

    if manifest.completed() == manifest.scenarios() {
        Ok(())
    } else {
        Err(CliError::SweepPartial {
            summary: format!(
                "{} of {} scenarios did not complete ({} quarantined, {} past deadline, {} skipped)",
                manifest.scenarios() - manifest.completed(),
                manifest.scenarios(),
                manifest.quarantined(),
                manifest.deadline_exceeded(),
                manifest.skipped(),
            ),
        })
    }
}

/// `omc serve`: run the resident ensemble service until SIGTERM/SIGINT
/// (graceful drain) or, in `--stdio` mode, stdin EOF.
fn serve_cmd(opts: &Flags) -> Result<(), CliError> {
    let cfg = ServeConfig {
        pool_threads: opts.concurrency.max(1),
        registry_capacity: opts.registry_cap,
        max_scenarios_per_request: opts.max_scenarios,
        max_inflight: opts.max_inflight,
        rate_burst: opts.rate_burst,
        rate_per_sec: opts.rate_per_sec,
    };
    let server = Server::new(cfg);
    sigterm::install(server.drain_flag());

    if opts.stdio {
        eprintln!(
            "[omc serve: stdio mode, {} workers]",
            opts.concurrency.max(1)
        );
        return server
            .run_stdio()
            .map_err(|e| CliError::Io(format!("serve: {e}")));
    }
    let socket = opts
        .socket
        .as_deref()
        .ok_or_else(|| CliError::Usage("serve needs --socket PATH or --stdio".into()))?;
    eprintln!(
        "[omc serve: listening on {socket}, {} workers, registry cap {}]",
        opts.concurrency.max(1),
        opts.registry_cap
    );
    server
        .run_unix(std::path::Path::new(socket))
        .map_err(|e| CliError::Io(format!("serve `{socket}`: {e}")))
}

/// Raw-FFI SIGTERM/SIGINT hook — the workspace has no libc crate, so
/// `signal(2)` is declared directly. The handler only flips an atomic
/// (async-signal-safe); the serve accept/read loops poll it.
mod sigterm {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, OnceLock};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    static DRAIN: OnceLock<Arc<AtomicBool>> = OnceLock::new();

    extern "C" fn on_term(_signum: i32) {
        if let Some(flag) = DRAIN.get() {
            flag.store(true, Ordering::Relaxed);
        }
    }

    /// Route SIGTERM and SIGINT to a store into `flag`. Idempotent; a
    /// second call keeps the first flag (one server per process).
    pub fn install(flag: Arc<AtomicBool>) {
        let _ = DRAIN.set(flag);
        unsafe {
            signal(SIGTERM, on_term);
            signal(SIGINT, on_term);
        }
    }
}

/// Render the `op:"run"` request line `omc MODEL request` sends, from
/// the same `--grid`/`--params` vectors and envelope flags sweep uses.
fn render_request_line(id: &str, source: &str, opts: &Flags) -> Result<String, CliError> {
    let mut vectors = Vec::new();
    if let Some(path) = &opts.params {
        vectors.extend(params_scenarios(path)?);
    }
    if !opts.grid.is_empty() {
        vectors.extend(grid_scenarios(&opts.grid)?);
    }
    if vectors.is_empty() {
        return Err(CliError::Usage(
            "request needs scenarios: --params FILE and/or --grid state=a:b:n".into(),
        ));
    }
    let scenarios: Vec<String> = vectors
        .iter()
        .map(|overrides| {
            let fields: Vec<String> = overrides
                .iter()
                .map(|(name, v)| format!("\"{}\":{}", json::escape(name), fmt_f64(*v)))
                .collect();
            format!("{{{}}}", fields.join(","))
        })
        .collect();
    let h = if opts.h > 0.0 {
        opts.h
    } else {
        opts.tend / 1000.0
    };
    Ok(format!(
        "{{\"id\":\"{id}\",\"op\":\"run\",\"model\":{{\"source\":\"{}\"}},\
         \"scenarios\":[{}],\"tend\":{},\"h\":{},\"deadline_ms\":{},\"max_rhs\":{},\
         \"retries\":{},\"workers\":{},\"executor\":\"{}\",\"batch\":{}}}",
        json::escape(source),
        scenarios.join(","),
        fmt_f64(opts.tend),
        fmt_f64(h),
        opts.deadline_ms,
        opts.max_rhs,
        opts.retries,
        opts.workers.max(1),
        opts.executor.as_str(),
        opts.batch.max(1),
    ))
}

/// A float rendered so the service's JSON parser round-trips it (always
/// with a decimal point or exponent — never bare `1`, which is fine for
/// JSON but keeps the line self-describing).
fn fmt_f64(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}

/// `omc [MODEL] request`: a thin JSONL client for `omc serve`. Prints
/// every response line to stdout (the transcript IS the output) and maps
/// the terminal line to an exit code: `done` with all scenarios
/// completed → 0, partial → 8, `overloaded` → 9, `error` → 1.
fn request_cmd(source: Option<&str>, opts: &Flags) -> Result<(), CliError> {
    use std::io::{BufRead, BufReader, Write};

    let socket = opts
        .socket
        .as_deref()
        .ok_or_else(|| CliError::Usage("request needs --socket PATH".into()))?;
    let stream = std::os::unix::net::UnixStream::connect(socket)
        .map_err(|e| CliError::Io(format!("cannot connect to `{socket}`: {e}")))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| CliError::Io(format!("socket clone: {e}")))?;
    let mut reader = BufReader::new(stream);
    let io = |e: std::io::Error| CliError::Io(format!("request `{socket}`: {e}"));

    let mut shed: Option<String> = None;
    let mut failed: Option<String> = None;
    let mut incomplete = 0usize;
    let mut scenarios_sent = 0usize;

    if let Some(source) = source {
        for rep in 0..opts.repeat.max(1) {
            let line = render_request_line(&format!("r{rep}"), source, opts)?;
            writer.write_all(line.as_bytes()).map_err(io)?;
            writer.write_all(b"\n").map_err(io)?;
            // Read this request's response stream to its terminal line.
            let mut reply = String::new();
            loop {
                reply.clear();
                if reader.read_line(&mut reply).map_err(io)? == 0 {
                    return Err(CliError::Io(format!(
                        "service closed `{socket}` mid-response"
                    )));
                }
                let trimmed = reply.trim_end();
                println!("{trimmed}");
                let doc = json::parse(trimmed)
                    .map_err(|e| CliError::Io(format!("unparseable response: {e}")))?;
                match doc.get("type").and_then(json::Json::as_str) {
                    Some("accepted") => {
                        scenarios_sent += doc
                            .get("scenarios")
                            .and_then(json::Json::as_usize)
                            .unwrap_or(0);
                    }
                    Some("scenario") => {}
                    Some("done") => {
                        let completed = doc
                            .get("completed")
                            .and_then(json::Json::as_usize)
                            .unwrap_or(0);
                        incomplete += scenarios_sent.saturating_sub(completed);
                        scenarios_sent = 0;
                        break;
                    }
                    Some("overloaded") => {
                        let reason = doc
                            .get("reason")
                            .and_then(json::Json::as_str)
                            .unwrap_or("unknown")
                            .to_string();
                        shed.get_or_insert(reason);
                        break;
                    }
                    Some("error") => {
                        let message = doc
                            .get("message")
                            .and_then(json::Json::as_str)
                            .unwrap_or("unknown error")
                            .to_string();
                        failed.get_or_insert(message);
                        break;
                    }
                    other => {
                        return Err(CliError::Io(format!("unexpected response type {other:?}")));
                    }
                }
            }
        }
    }

    if opts.stats {
        writer
            .write_all(b"{\"id\":\"stats\",\"op\":\"stats\"}\n")
            .map_err(io)?;
        let mut reply = String::new();
        if reader.read_line(&mut reply).map_err(io)? == 0 {
            return Err(CliError::Io(format!(
                "service closed `{socket}` before stats reply"
            )));
        }
        println!("{}", reply.trim_end());
    }

    if let Some(message) = failed {
        return Err(CliError::Io(format!("service error: {message}")));
    }
    if let Some(reason) = shed {
        return Err(CliError::Overloaded { reason });
    }
    if incomplete > 0 {
        return Err(CliError::SweepPartial {
            summary: format!("{incomplete} scenario(s) did not complete"),
        });
    }
    Ok(())
}

fn simulate(ir: &mut OdeIr, opts: &Flags) -> Result<(), CliError> {
    for (name, value) in &opts.sets {
        if !ir.set_start(name, *value) {
            return Err(CliError::Usage(format!("--set: no state named `{name}`")));
        }
    }
    let tol = Tolerances {
        rtol: opts.rtol,
        atol: opts.atol,
        ..Tolerances::default()
    };
    let y0 = ir.initial_state();
    let tend = opts.tend;
    let h = if opts.h > 0.0 { opts.h } else { tend / 1000.0 };

    // Serial (tree-walking) or parallel (bytecode worker pool) RHS.
    let solve = |sys: &mut dyn OdeSystem| -> Result<objectmath::solver::Solution, CliError> {
        match opts.solver.as_str() {
            "dopri5" => dopri5(sys, 0.0, &y0, tend, &tol).map_err(CliError::Solve),
            "rk4" => rk4(sys, 0.0, &y0, tend, h).map_err(CliError::Solve),
            "abm" => abm4(sys, 0.0, &y0, tend, &tol).map_err(CliError::Solve),
            "bdf" => bdf(
                sys,
                0.0,
                &y0,
                tend,
                &BdfOptions {
                    tol,
                    ..BdfOptions::default()
                },
            )
            .map_err(CliError::Solve),
            "lsoda" => lsoda(
                sys,
                0.0,
                &y0,
                tend,
                &LsodaOptions {
                    tol,
                    ..LsodaOptions::default()
                },
            )
            .map(|s| s.solution)
            .map_err(CliError::Solve),
            other => Err(CliError::Usage(format!("unknown --solver `{other}`"))),
        }
    };

    let sol = if opts.workers <= 1 {
        let evaluator =
            objectmath::ir::IrEvaluator::new(ir).map_err(|e| CliError::Compile(e.to_string()))?;
        let mut sys =
            objectmath::solver::FnSystem::new(ir.dim(), move |t, y: &[f64], d: &mut [f64]| {
                evaluator.rhs(t, y, d);
            });
        solve(&mut sys)?
    } else {
        let program = CodeGenerator::default().generate(ir);
        let sched = program.schedule(opts.workers);
        let plan = match opts.fault_seed {
            Some(seed) => FaultPlan::from_seed(seed, opts.workers, opts.workers),
            None => FaultPlan::none(),
        };
        let (pool, fell_back) = ExecutorPool::with_faults_reported(
            program.graph,
            opts.workers,
            sched.assignment,
            plan,
            FaultConfig::default(),
            opts.executor,
        )
        .map_err(CliError::Runtime)?;
        let strategy = pool.strategy();
        if fell_back {
            eprintln!(
                "warning: --executor ws has no fault-recovery ladder; an active fault \
                 plan falls back to the barrier executor (effective strategy: {strategy})"
            );
        }
        // Record the *effective* strategy where `--metrics` can see it,
        // so scripts need not parse stderr to learn about the fallback.
        if om_obs::is_enabled() {
            om_obs::metrics()
                .counter(&format!("runtime.strategy.{strategy}"))
                .inc();
        }
        let mut rhs = ParallelRhs::new(pool, 16);
        let sol = match solve(&mut rhs) {
            Ok(sol) => sol,
            Err(e) => {
                // A solver failure caused by the pool dying is more usefully
                // reported as the underlying runtime fault.
                if let Some(runtime_error) = rhs.last_error.take() {
                    return Err(CliError::Runtime(runtime_error));
                }
                return Err(e);
            }
        };
        eprintln!(
            "[parallel RHS ({strategy}): {} calls, {:.0} calls/s, scheduler overhead {:.3}%]",
            rhs.calls,
            rhs.rhs_calls_per_sec(),
            100.0 * rhs.scheduler.overhead_fraction(rhs.rhs_time)
        );
        sol
    };

    println!(
        "t = {:.6}: {} steps, {} RHS calls{}",
        sol.t_end(),
        sol.stats.steps,
        sol.stats.rhs_calls,
        if sol.stats.newton_iters > 0 {
            format!(", {} Newton iterations", sol.stats.newton_iters)
        } else {
            String::new()
        }
    );
    for (i, state) in ir.states.iter().enumerate() {
        println!("  {:<24} = {:+.9e}", state.sym.name(), sol.y_end()[i]);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_flags_executor() {
        let f = parse_flags(&args(&["--executor", "ws"])).expect("ws executor");
        assert_eq!(f.executor, Strategy::WorkStealing);
        let f = parse_flags(&args(&["--executor", "barrier"])).expect("barrier executor");
        assert_eq!(f.executor, Strategy::Barrier);
        assert!(matches!(
            parse_flags(&args(&["--executor", "hybrid"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parse_flags_defaults() {
        let f = parse_flags(&[]).expect("empty flags");
        assert_eq!(f.lang, "f90");
        assert_eq!(f.solver, "dopri5");
        assert_eq!(f.workers, 0);
        assert_eq!(f.executor, Strategy::Barrier);
        assert_eq!(f.batch, 1);
        assert!(f.trace.is_none());
        assert!(!f.metrics);
    }

    #[test]
    fn parse_flags_batch_width() {
        let f = parse_flags(&args(&["--batch", "8"])).expect("parse");
        assert_eq!(f.batch, 8);
        assert!(matches!(
            parse_flags(&args(&["--batch", "wide"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_flags(&args(&["--batch"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parse_flags_observability() {
        let f = parse_flags(&args(&["--trace", "out.json", "--metrics"])).expect("parse");
        assert_eq!(f.trace.as_deref(), Some("out.json"));
        assert!(f.metrics);
    }

    #[test]
    fn parse_flags_simulate_options() {
        let f = parse_flags(&args(&[
            "--workers",
            "4",
            "--tend",
            "2.5",
            "--set",
            "x=1.5",
            "--set",
            "y=-2",
        ]))
        .expect("parse");
        assert_eq!(f.workers, 4);
        assert_eq!(f.tend, 2.5);
        assert_eq!(f.sets, vec![("x".to_owned(), 1.5), ("y".to_owned(), -2.0)]);
    }

    #[test]
    fn parse_flags_lint_options() {
        let f = parse_flags(&args(&["--json", "--deny", "warnings"])).expect("parse");
        assert!(f.json);
        assert_eq!(f.deny.as_deref(), Some("warnings"));
        assert!(matches!(
            parse_flags(&args(&["--deny"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parse_flags_rejects_bad_input() {
        assert!(matches!(
            parse_flags(&args(&["--trace"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_flags(&args(&["--workers", "no"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_flags(&args(&["--set", "novalue"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_flags(&args(&["--bogus"])),
            Err(CliError::Usage(_))
        ));
    }
}
